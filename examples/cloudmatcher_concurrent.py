"""Multi-tenant CloudMatcher: the metamanager interleaving workflows.

CloudMatcher 0.1 "can execute only one EM workflow at a time"; 1.0 breaks
each workflow into DAG fragments and interleaves fragments from concurrent
workflows across the user-interaction, crowd, and batch engines.  This
example submits three scientists' EM tasks and compares the simulated
makespan of serial vs interleaved execution, then shows the CloudMatcher
2.0 flexibility: invoking a single basic service ("just label these
pairs") without running the whole workflow.

Run:  python examples/cloudmatcher_concurrent.py
"""

import tempfile
from pathlib import Path

from repro.cloud import CloudMatcher10, CloudMatcher20, WorkflowContext
from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession, OracleLabeler
from repro.runtime import NODE_FINISH

TASKS = ("restaurants", "books", "papers")


def build(interleave: bool) -> CloudMatcher10:
    matcher = CloudMatcher10(interleave=interleave)
    for key in TASKS:
        dataset = build_cloudmatcher_dataset(cloudmatcher_scenario(key))
        matcher.submit(
            dataset,
            LabelingSession(OracleLabeler(dataset.gold_pairs), budget=500),
            FalconConfig(sample_size=600, blocking_budget=120, matching_budget=220,
                         random_state=0),
        )
    return matcher


def concurrency_demo() -> None:
    serial_makespan, _ = build(interleave=False).run()
    interleaved = build(interleave=True)
    interleaved_makespan, results = interleaved.run()
    print(f"{len(TASKS)} concurrent EM tasks")
    print(f"  serial (CloudMatcher 0.1 style): {serial_makespan / 60:.1f} simulated minutes")
    print(f"  interleaved (metamanager):       {interleaved_makespan / 60:.1f} simulated minutes")
    print(f"  speedup: {serial_makespan / interleaved_makespan:.2f}x")
    for result in results:
        print(f"  {result.task_name:>12}: precision={result.accuracy['precision']:.3f} "
              f"recall={result.accuracy['recall']:.3f} "
              f"questions={result.cost.questions}")

    # Every service invocation of every tenant landed on the metamanager's
    # structured event stream; export it for a monitoring stack.
    with tempfile.TemporaryDirectory() as tmp:
        log_path = interleaved.metamanager.write_event_log(
            Path(tmp) / "cloud_events.jsonl"
        )
        events = interleaved.metamanager.events
        finishes = events.of(NODE_FINISH)
        slowest = max(finishes, key=lambda e: e.wall_seconds)
        print(f"\nEvent log: {len(events)} events exported to {log_path.name}")
        print(f"  per-node finishes: {len(finishes)} "
              f"across {len({e.graph for e in finishes})} workflows")
        print(f"  slowest service: {slowest.node} ({slowest.graph}) "
              f"at {slowest.wall_seconds * 1000:.0f}ms machine time")


def single_service_demo() -> None:
    """CloudMatcher 2.0: use one basic service in isolation."""
    dataset = build_cloudmatcher_dataset(cloudmatcher_scenario("restaurants"))
    matcher = CloudMatcher20()
    context = WorkflowContext(
        dataset=dataset,
        session=LabelingSession(OracleLabeler(dataset.gold_pairs)),
        task_name="label-only",
    )
    context.put("pairs_to_label", sorted(dataset.gold_pairs)[:10])
    matcher.invoke_service("label_pairs", context)
    print(f"\nLabel-only service: labeled {len(context.get('labels'))} pairs "
          f"without running any other step")
    print(f"Available services: {len(matcher.available_services())} "
          f"({', '.join(matcher.registry.names(composite=True))} are composite)")


if __name__ == "__main__":
    concurrency_demo()
    single_service_demo()
