"""Smurf: self-service string matching with label-free blocking (§5.3).

Matches two sets of person-name strings.  Falcon would spend labels to
learn blocking rules; Smurf generates candidates with an auto-tuned
similarity join and spends labels only on the matcher, which the paper
reports cuts labeling effort by 43-76% at the same accuracy.  This example
runs both on the same task and prints the head-to-head.

Run:  python examples/smurf_strings.py
"""

import random

from repro.datasets import DirtinessConfig, make_string_dataset
from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.falcon import FalconConfig, run_falcon
from repro.labeling import LabelingSession, OracleLabeler
from repro.smurf import SmurfConfig, run_smurf


def build_dataset():
    rng = random.Random(42)
    strings = sorted(
        {
            f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"
            for _ in range(600)
        }
    )
    return make_string_dataset(
        strings, match_fraction=0.6, dirtiness=DirtinessConfig.light(),
        seed=42, name="person-strings",
    )


def score(pairs, gold):
    tp = len(pairs & gold)
    precision = tp / len(pairs) if pairs else 0.0
    recall = tp / len(gold)
    return precision, recall


def main() -> None:
    dataset = build_dataset()
    print(f"Matching two sets of strings: {dataset}")

    falcon_session = LabelingSession(OracleLabeler(dataset.gold_pairs))
    falcon = run_falcon(
        dataset, falcon_session,
        FalconConfig(sample_size=2500, blocking_budget=350, matching_budget=250,
                     max_iterations=25, random_state=0),
    )
    falcon_precision, falcon_recall = score(falcon.match_pairs, dataset.gold_pairs)

    smurf_session = LabelingSession(OracleLabeler(dataset.gold_pairs))
    smurf = run_smurf(dataset, smurf_session, config=SmurfConfig(random_state=0))
    smurf_precision, smurf_recall = score(smurf.match_pairs, dataset.gold_pairs)

    print(f"\nSmurf candidates via jaccard(3gram) >= {smurf.join_threshold} "
          f"(auto-tuned, zero labels)")
    print("\n            labels   precision   recall")
    print(f"  falcon  {falcon.questions:>7} {falcon_precision:>10.3f} {falcon_recall:>8.3f}")
    print(f"  smurf   {smurf.questions:>7} {smurf_precision:>10.3f} {smurf_recall:>8.3f}")
    reduction = 1.0 - smurf.questions / falcon.questions
    print(f"\nLabeling-effort reduction: {reduction:.0%} "
          f"(the paper reports 43-76%)")


if __name__ == "__main__":
    main()
