"""Quickstart: the PyMatcher how-to guide on the paper's Figure 1 example.

Matches two small person tables end to end — block, label, generate
features, select a matcher by cross-validation, predict — exactly the
development-stage guide of Figure 2, scaled down to a dozen tuples plus a
synthetic extension so the learner has something to chew on.

Run:  python examples/quickstart.py
"""

from repro.blocking import AttrEquivalenceBlocker, blocking_recall
from repro.catalog import get_catalog
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import person
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import DTMatcher, RFMatcher, eval_matches, select_matcher
from repro.sampling import weighted_sample_candset
from repro.table import Table


def figure1_demo() -> None:
    """The literal Figure 1 example: 3 x 2 person tables, 2 matches."""
    table_a = Table(
        {
            "id": ["a1", "a2", "a3"],
            "name": ["Dave Smith", "Joe Wilson", "Dan Smith"],
            "city": ["Madison", "San Jose", "Middleton"],
            "state": ["WI", "CA", "WI"],
        }
    )
    table_b = Table(
        {
            "id": ["b1", "b2"],
            "name": ["David D. Smith", "Daniel W. Smith"],
            "city": ["Madison", "Middleton"],
            "state": ["WI", "WI"],
        }
    )
    print("Table A:")
    for row in table_a.rows():
        print("  ", row)
    print("Table B:")
    for row in table_b.rows():
        print("  ", row)

    blocker = AttrEquivalenceBlocker("state")
    candset = blocker.block_tables(table_a, table_b, "id", "id")
    print(f"\nBlocking on state keeps {candset.num_rows} of "
          f"{table_a.num_rows * table_b.num_rows} pairs:")
    for l_id, r_id in zip(candset["ltable_id"], candset["rtable_id"]):
        print(f"   ({l_id}, {r_id})")


def guide_workflow_demo() -> None:
    """The full guide on a 300 x 300 synthetic person-matching task."""
    dataset = make_em_dataset(
        person, 300, 300, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=1, name="quickstart",
    )
    print(f"\nGenerated {dataset}")

    # Step: blocking (state equivalence, as in Figure 1).
    candset = AttrEquivalenceBlocker("state").block_tables(
        dataset.ltable, dataset.rtable, "id", "id"
    )
    recall = blocking_recall(candset, dataset.gold_pairs)
    print(f"Blocking: {candset.num_rows} candidate pairs, recall {recall:.3f}")

    # Step: sample and label (the oracle plays the user).
    sample = weighted_sample_candset(candset, 500, seed=0)
    session = LabelingSession(OracleLabeler(dataset.gold_pairs))
    session.label_candset(sample)
    print(f"Labeled {session.questions_asked} pairs "
          f"({sum(sample['label'])} matches in the sample)")

    # Step: features + cross-validated matcher selection.
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    fv = extract_feature_vecs(sample, features, label_column="label")
    selection = select_matcher(
        [DTMatcher(), RFMatcher(n_estimators=10, random_state=0)],
        fv, features.names(), n_splits=5,
    )
    print(f"Matcher selection (CV): best = {selection.best_matcher.name}, "
          f"F1 = {selection.best_score:.3f}")
    for row in selection.scores.rows():
        print(f"   {row['matcher']:>14}: P={row['precision']:.3f} "
              f"R={row['recall']:.3f} F1={row['f1']:.3f}")

    # Step: predict on the full candidate set and score against gold.
    fv_all = extract_feature_vecs(candset, features)
    predictions = selection.best_matcher.predict(fv_all)
    meta = get_catalog().get_candset_metadata(candset)
    gold = [
        1 if pair in dataset.gold_pairs else 0
        for pair in zip(candset[meta.fk_ltable], candset[meta.fk_rtable])
    ]
    predictions.add_column("label", gold)
    report = eval_matches(predictions)
    print(f"Final matches: precision={report['precision']:.3f} "
          f"recall={report['recall']:.3f} f1={report['f1']:.3f}")


if __name__ == "__main__":
    figure1_demo()
    guide_workflow_demo()
