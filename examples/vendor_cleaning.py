"""The Brazilian-vendors story: dirty data, detected and fixed (§5.2-5.3).

At "Company E", CloudMatcher's accuracy on the vendor master was poor
because Brazilian vendors had "entered some generic addresses instead of
their real addresses. As a result, even users cannot match such vendors.
Once we removed such vendors from the data, the accuracy significantly
improved."

This example replays that story end to end, but with the manual fix
replaced by the cleaning toolkit: profile the data, *detect* the generic
address automatically, quarantine the affected rows, re-run matching, and
compare accuracies — then post-process the matches into merged entities.

Run:  python examples/vendor_cleaning.py
"""

from repro.blocking import OverlapBlocker
from repro.catalog import get_catalog
from repro.cleaning import clean_em_dataset, detect_generic_values, profile_missingness
from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import RFMatcher
from repro.postprocess import enforce_one_to_one, merge_matches
from repro.sampling import weighted_sample_candset


def run_matching(dataset):
    """A compact PyMatcher workflow; returns (scored match pairs, P, R)."""
    candset = OverlapBlocker("name", overlap_size=2).block_tables(
        dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key
    )
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    sample = weighted_sample_candset(candset, 600, seed=0)
    LabelingSession(OracleLabeler(dataset.gold_pairs)).label_candset(sample)
    fv_sample = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=15, random_state=0).fit(fv_sample, features.names())
    fv_all = extract_feature_vecs(candset, features)
    proba = matcher.predict_proba(fv_all)
    meta = get_catalog().get_candset_metadata(candset)
    scored = [
        (l_id, r_id, float(p))
        for l_id, r_id, p in zip(fv_all[meta.fk_ltable], fv_all[meta.fk_rtable], proba)
        if p >= 0.5
    ]
    predicted = enforce_one_to_one(scored)
    tp = len(predicted & dataset.gold_pairs)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(dataset.gold_pairs) if dataset.gold_pairs else 1.0
    return predicted, precision, recall


def main() -> None:
    dataset = build_cloudmatcher_dataset(cloudmatcher_scenario("vendors"))
    print(f"Loaded {dataset}")

    print("\nProfiling (missing-value rates):")
    for column, rate in profile_missingness(dataset.rtable).items():
        print(f"   {column:>8}: {rate:.1%}")

    report = detect_generic_values(dataset.rtable, "address", distinctiveness=0.01)
    print("\nGeneric-value detection on 'address':")
    for value in report.generic_values:
        print(f"   {value!r} appears {report.counts[value]} times "
              f"(threshold {report.expected_max_count:.0f})")

    _, dirty_precision, dirty_recall = run_matching(dataset)
    cleaned, _ = clean_em_dataset(dataset, "address", distinctiveness=0.01)
    print(f"\nQuarantined {dataset.rtable.num_rows - cleaned.rtable.num_rows} "
          f"right rows, {dataset.ltable.num_rows - cleaned.ltable.num_rows} left rows")
    matches, clean_precision, clean_recall = run_matching(cleaned)

    print("\n             precision   recall")
    print(f"  as-is       {dirty_precision:>8.3f} {dirty_recall:>8.3f}")
    print(f"  cleaned     {clean_precision:>8.3f} {clean_recall:>8.3f}")
    print("(paper: 'Once we removed such vendors ... accuracy significantly improved')")

    merged = merge_matches(matches, cleaned.ltable, cleaned.rtable,
                           cleaned.l_key, cleaned.r_key)
    print(f"\nPost-processing: {len(matches)} matched pairs merged into "
          f"{merged.num_rows} canonical vendor records; first record:")
    if merged.num_rows:
        for key, value in merged.row(0).items():
            print(f"   {key}: {value}")


if __name__ == "__main__":
    main()
