"""Self-service EM for a lay user: CloudMatcher running Falcon (Figure 3).

A domain scientist who knows no programming, ML, or EM uploads two tables
and just answers match/no-match questions.  This example runs the full
Falcon workflow, prints the learned blocking rules (Figure 4), and renders
a Table 2-style cost row — once with a single user and once with a
simulated Mechanical Turk crowd.

Run:  python examples/self_service_falcon.py
"""

from repro.cloud import CloudMatcher01
from repro.crowd import CrowdLabeler
from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession, OracleLabeler


def run_task(label_source: str) -> None:
    dataset = build_cloudmatcher_dataset(cloudmatcher_scenario("restaurants"))
    print(f"\n=== {dataset.name} with {label_source} labeling ===")
    if label_source == "crowd":
        labeler = CrowdLabeler(dataset.gold_pairs, replication=3, seed=0)
    else:
        labeler = OracleLabeler(dataset.gold_pairs, seconds_per_label=6.0)
    session = LabelingSession(labeler, budget=600)

    cloudmatcher = CloudMatcher01(on_cloud=(label_source == "crowd"))
    result = cloudmatcher.match(
        dataset,
        session,
        FalconConfig(sample_size=700, blocking_budget=150, matching_budget=300,
                     random_state=0),
    )

    context = result.context
    print("Learned blocking rules:")
    for rule in context.get("rules"):
        print(f"   {rule}")
    print(f"Candidate set: {context.get('candset').num_rows} pairs "
          f"(from {dataset.ltable.num_rows * dataset.rtable.num_rows} possible)")
    print(f"Accuracy: precision={result.accuracy['precision']:.3f} "
          f"recall={result.accuracy['recall']:.3f}")
    print("Cost row (Table 2 format):")
    for key, value in result.cost.as_row().items():
        print(f"   {key:>10}: {value}")


if __name__ == "__main__":
    run_task("single-user")
    run_task("crowd")
