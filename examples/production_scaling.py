"""The production stage: captured workflow, multicore scaling, recovery.

After development, the EM workflow is a captured script executed on the
full data.  This example (1) captures the workflow as a
:class:`MagellanWorkflow`, (2) scales the expensive prediction step with
partition parallelism (the Dask substitute), and (3) demonstrates crash
recovery: the run is killed halfway, then resumed from its checkpoints.

Run:  python examples/production_scaling.py
"""

import logging
import tempfile
import time

from repro.blocking import OverlapBlocker
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import product
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import RFMatcher
from repro.pipeline import (
    CheckpointedRun,
    MagellanWorkflow,
    parallel_map_partitions,
    partition_table,
)
from repro.sampling import weighted_sample_candset

logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")

DATASET = make_em_dataset(
    product, 800, 800, match_fraction=0.5,
    dirtiness=DirtinessConfig.light(), seed=5, name="production",
)
FEATURES = get_features_for_matching(DATASET.ltable, DATASET.rtable)
MATCHER = RFMatcher(n_estimators=10, random_state=0)


def develop_workflow() -> MagellanWorkflow:
    """The development stage output: a runnable captured script."""
    workflow = MagellanWorkflow("products-em")

    def block(art):
        art["candset"] = OverlapBlocker("title", overlap_size=2).block_tables(
            DATASET.ltable, DATASET.rtable, "id", "id"
        )

    def label_and_train(art):
        sample = weighted_sample_candset(art["candset"], 500, seed=0)
        LabelingSession(OracleLabeler(DATASET.gold_pairs)).label_candset(sample)
        fv = extract_feature_vecs(sample, FEATURES, label_column="label")
        MATCHER.fit(fv, FEATURES.names())

    workflow.add_step("block", block, "overlap blocking on title")
    workflow.add_step("train", label_and_train, "label a sample, train the forest")
    return workflow


def predict_partition(candset_part):
    """Module-level (picklable) prediction step for the process pool."""
    fv = extract_feature_vecs_unchecked(candset_part)
    return MATCHER.predict(fv, append=False).project(
        ["ltable_id", "rtable_id", "predicted"]
    )


def extract_feature_vecs_unchecked(candset_part):
    # Partitions lose their catalog registration when crossing process
    # boundaries; re-register against the module-level base tables.
    from repro.catalog import get_catalog

    catalog = get_catalog()
    catalog.set_candset_metadata(
        candset_part, "_id", "ltable_id", "rtable_id", DATASET.ltable, DATASET.rtable
    )
    return extract_feature_vecs(candset_part, FEATURES, catalog)


def main() -> None:
    workflow = develop_workflow()
    artifacts = workflow.run()
    candset = artifacts["candset"]
    print(f"\nCandidate set: {candset.num_rows} pairs; per-step timing:")
    for record in workflow.records:
        print(f"   {record.name}: {record.seconds:.2f}s")
    # The captured script ran as a runtime chain graph: its structured
    # event stream is available for export to a monitoring stack.
    print(f"   run events recorded: {len(workflow.events)} "
          f"(workflow.events.write_jsonl(path) exports them)")

    # ---- multicore scaling ------------------------------------------
    for workers in (1, 2, 4):
        started = time.perf_counter()
        result = parallel_map_partitions(
            candset, predict_partition, n_workers=workers, n_partitions=8
        )
        elapsed = time.perf_counter() - started
        print(f"   predict with {workers} worker(s): {elapsed:.2f}s "
              f"({result.num_rows} pairs, {sum(result['predicted'])} matches)")

    # ---- crash recovery ---------------------------------------------
    print("\nCrash-recovery demo:")
    with tempfile.TemporaryDirectory() as tmp:
        crash_after = {"count": 0}

        def flaky(part):
            crash_after["count"] += 1
            if crash_after["count"] == 3:
                raise RuntimeError("simulated machine crash")
            return predict_partition(part)

        run = CheckpointedRun("nightly", tmp)
        try:
            run.execute(candset, flaky, n_partitions=6)
        except RuntimeError:
            done = sorted(run.completed_partitions())
            print(f"   crashed; partitions {done} checkpointed")
        # Resume on a fork pool: only the pending partitions are computed,
        # and files/manifest/concat order stay byte-identical to serial.
        result = run.execute(candset, predict_partition, n_partitions=6, n_jobs=2)
        print(f"   resumed on 2 jobs and finished: {result.num_rows} pairs "
              f"(partitions {sorted(run.completed_partitions())})")
    print(f"   partitions of the candset: "
          f"{[p.num_rows for p in partition_table(candset, 6)]}")


if __name__ == "__main__":
    main()
