"""Saving the Amazon forest: the Land Use deployment (Appendix B).

Professor Gibbs' team tracks cattle supply chains in Brazil: a
slaughterhouse must not (indirectly) buy from ranches with deforestation.
The EM step matches ranch records across data sources (government,
foundations, slaughterhouse records); this example reproduces that
workflow on synthetic ranch data:

1. match ranch records with a PyMatcher workflow (vs. the incumbent
   "company solution", a single-feature threshold matcher — the paper
   reports PyMatcher achieved much higher recall at slightly lower
   precision, and we print the same comparison);
2. use the matches to unify a cattle-transaction graph across sources and
   trace which slaughterhouses are reachable from deforested ranches
   (networkx), the end goal of the deployment.

Run:  python examples/land_use_ranches.py
"""

import random

import networkx as nx

from repro.blocking import OverlapBlocker, candset_union
from repro.catalog import get_catalog
from repro.datasets import build_pymatcher_dataset, pymatcher_scenario
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import RFMatcher, ThresholdMatcher, eval_matches
from repro.sampling import weighted_sample_candset


def match_ranches():
    """Run both the company baseline and the PyMatcher workflow."""
    dataset = build_pymatcher_dataset(pymatcher_scenario("land_use_uw"))
    print(f"Loaded {dataset}")

    # Ranch names share common prefixes (Fazenda, Rancho, ...), so a
    # 1-token overlap would keep most of A x B; require 2 shared tokens.
    blocked_by_name = OverlapBlocker("ranch_name", overlap_size=2).block_tables(
        dataset.ltable, dataset.rtable, "id", "id"
    )
    blocked_by_owner = OverlapBlocker("owner", overlap_size=2).block_tables(
        dataset.ltable, dataset.rtable, "id", "id"
    )
    candset = candset_union(blocked_by_name, blocked_by_owner)
    print(f"Blocking: {candset.num_rows} candidate pairs")

    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    meta = get_catalog().get_candset_metadata(candset)
    gold = [
        1 if pair in dataset.gold_pairs else 0
        for pair in zip(candset[meta.fk_ltable], candset[meta.fk_rtable])
    ]

    # --- the incumbent "company solution": one similarity, one cutoff ---
    fv_all = extract_feature_vecs(candset, features)
    baseline = ThresholdMatcher("ranch_name_jaccard_ws", 0.75)
    baseline.predict(fv_all, output_column="baseline")
    fv_all.add_column("label", gold)
    baseline_report = eval_matches(fv_all, predicted_column="baseline")

    # --- the PyMatcher workflow: label a sample, train a forest ---------
    sample = weighted_sample_candset(candset, 700, seed=0)
    session = LabelingSession(OracleLabeler(dataset.gold_pairs))
    session.label_candset(sample)
    fv_sample = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=15, random_state=0).fit(fv_sample, features.names())
    matcher.predict(fv_all, output_column="predicted")
    pymatcher_report = eval_matches(fv_all)

    print("\n              precision   recall     f1")
    print(f"  company     {baseline_report['precision']:>8.3f} {baseline_report['recall']:>8.3f} "
          f"{baseline_report['f1']:>7.3f}")
    print(f"  pymatcher   {pymatcher_report['precision']:>8.3f} {pymatcher_report['recall']:>8.3f} "
          f"{pymatcher_report['f1']:>7.3f}")
    print(f"  (labels spent: {session.questions_asked})")

    matched_pairs = {
        pair
        for pair, predicted in zip(
            zip(fv_all[meta.fk_ltable], fv_all[meta.fk_rtable]),
            fv_all["predicted"],
        )
        if predicted == 1
    }
    return dataset, matched_pairs


def trace_supply_chains(dataset, matched_pairs):
    """Appendix B's end goal: is a 'bad' ranch in a supply chain?

    The government source (table A) knows which ranches have deforestation;
    the slaughterhouse records (table B) know who sells to whom.  Only by
    matching A-ranches to B-ranches can the two graphs be joined.
    """
    rng = random.Random(0)
    # Transactions among B-side ranches, ending at slaughterhouses.
    b_ids = dataset.rtable.column("id")
    graph = nx.DiGraph()
    slaughterhouses = [f"sh{i}" for i in range(5)]
    for b_id in b_ids:
        target = rng.choice(b_ids + slaughterhouses)
        if target != b_id:
            graph.add_edge(b_id, target)
    # Deforestation flags live on the A side.
    bad_a_ranches = set(rng.sample(dataset.ltable.column("id"), 60))

    # EM bridges the sources: bad A-ranches -> their B-side identities.
    a_to_b = dict(matched_pairs)
    bad_b_ranches = {a_to_b[a] for a in bad_a_ranches if a in a_to_b}

    tainted = set()
    for bad in bad_b_ranches:
        if bad in graph:
            for sink in nx.descendants(graph, bad) | {bad}:
                if sink in slaughterhouses:
                    tainted.add(sink)
    print(f"\nSupply-chain tracing: {len(bad_a_ranches)} flagged ranches in "
          f"source A, {len(bad_b_ranches)} linked into transaction data via EM")
    print(f"Slaughterhouses reachable from deforested ranches: "
          f"{sorted(tainted) or 'none'}")


if __name__ == "__main__":
    dataset, matched = match_ranches()
    trace_supply_chains(dataset, matched)
