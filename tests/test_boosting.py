"""Tests for the regression tree and gradient boosting (XGBoost substitute)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.ml import DecisionTreeRegressor, GradientBoostingClassifier
from repro.ml.model_selection import cross_validate, mean_cv_score


def nonlinear_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] * X[:, 1] > 0).astype(int)  # XOR-like: linear models fail
    return X, y


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        predictions = tree.predict(X)
        assert np.allclose(predictions[:50], 0.0)
        assert np.allclose(predictions[50:], 10.0)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        tree = DecisionTreeRegressor().fit(X, np.full(20, 3.5))
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 3.5)

    def test_max_depth_limits_leaves(self):
        X, y = nonlinear_data()
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y.astype(float))
        assert tree.n_leaves_ <= 4

    def test_apply_ids_dense_and_consistent(self):
        X, y = nonlinear_data(n=100)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y.astype(float))
        leaves = tree.apply(X)
        assert leaves.min() >= 0
        assert leaves.max() < tree.n_leaves_
        # rows in the same leaf get the same prediction
        predictions = tree.predict(X)
        for leaf in np.unique(leaves):
            assert len(set(predictions[leaves == leaf].tolist())) == 1

    def test_set_leaf_values(self):
        X = np.array([[0.0], [1.0]])
        tree = DecisionTreeRegressor(max_depth=1).fit(X, np.array([0.0, 1.0]))
        leaves = tree.apply(X)
        tree.set_leaf_values({int(leaves[0]): -7.0})
        assert tree.predict(X)[0] == -7.0

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_mse_decreases_with_depth(self):
        X, _ = nonlinear_data(n=200)
        target = X[:, 0] ** 2 + X[:, 1]
        errors = []
        for depth in (1, 3, 6):
            tree = DecisionTreeRegressor(max_depth=depth).fit(X, target)
            errors.append(float(np.mean((tree.predict(X) - target) ** 2)))
        assert errors[0] > errors[1] > errors[2]


class TestGradientBoosting:
    def test_learns_nonlinear_boundary(self):
        X, y = nonlinear_data()
        model = GradientBoostingClassifier(n_estimators=60, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_beats_single_round(self):
        X, y = nonlinear_data(seed=1)
        weak = GradientBoostingClassifier(n_estimators=1, random_state=0).fit(X, y)
        strong = GradientBoostingClassifier(n_estimators=50, random_state=0).fit(X, y)
        assert strong.score(X, y) > weak.score(X, y)

    def test_proba_valid(self):
        X, y = nonlinear_data(n=100)
        proba = GradientBoostingClassifier(n_estimators=10).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_staged_scores_shape(self):
        X, y = nonlinear_data(n=80)
        model = GradientBoostingClassifier(n_estimators=7).fit(X, y)
        stages = model.staged_scores(X)
        assert stages.shape == (7, 80)

    def test_training_loss_decreases_over_stages(self):
        X, y = nonlinear_data(n=150, seed=2)
        model = GradientBoostingClassifier(n_estimators=30, random_state=0).fit(X, y)
        stages = model.staged_scores(X)
        proba_first = 1 / (1 + np.exp(-stages[0]))
        proba_last = 1 / (1 + np.exp(-stages[-1]))

        def loss(p):
            p = np.clip(p, 1e-9, 1 - 1e-9)
            return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))

        assert loss(proba_last) < loss(proba_first)

    def test_subsample(self):
        X, y = nonlinear_data(n=120)
        model = GradientBoostingClassifier(
            n_estimators=30, subsample=0.5, random_state=0
        ).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_binary_only(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.array([0, 1, 2] * 10)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier().fit(X, y)

    def test_nonstandard_labels(self):
        X, y01 = nonlinear_data(n=100)
        y = np.where(y01 == 1, 9, 4)
        model = GradientBoostingClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert set(model.predict(X).tolist()) <= {4, 9}

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingClassifier(subsample=1.5)

    def test_cross_validates_competitively(self):
        X, y = nonlinear_data(n=200, seed=3)
        scores = cross_validate(
            GradientBoostingClassifier(n_estimators=40, random_state=0),
            X, y, n_splits=3, random_state=0,
        )
        assert mean_cv_score(scores, "f1") > 0.85


class TestXGMatcher:
    def test_in_selection(self, small_person_dataset):
        from repro.blocking import OverlapBlocker
        from repro.features import extract_feature_vecs, get_features_for_matching
        from repro.matchers import DTMatcher, XGMatcher, select_matcher

        ds = small_person_dataset
        candset = OverlapBlocker("name", overlap_size=1).block_tables(
            ds.ltable, ds.rtable, "id", "id"
        )
        labels = [
            1 if pair in ds.gold_pairs else 0
            for pair in zip(candset["ltable_id"], candset["rtable_id"])
        ]
        candset.add_column("label", labels)
        features = get_features_for_matching(ds.ltable, ds.rtable)
        fv = extract_feature_vecs(candset, features, label_column="label")
        result = select_matcher(
            [DTMatcher(), XGMatcher(n_estimators=25, random_state=0)],
            fv, features.names(), n_splits=3,
        )
        assert result.best_score > 0.8
