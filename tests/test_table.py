"""Unit tests for the Table substrate."""

import pytest

from repro.exceptions import KeyConstraintError, SchemaError
from repro.table import Table


def make_table():
    return Table({"id": [1, 2, 3], "name": ["a", "b", "c"], "age": [30, None, 25]})


class TestConstruction:
    def test_empty(self):
        table = Table()
        assert table.num_rows == 0
        assert table.columns == []

    def test_basic(self):
        table = make_table()
        assert table.num_rows == 3
        assert len(table) == 3
        assert table.columns == ["id", "name", "age"]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(SchemaError, match="unequal lengths"):
            Table({"a": [1, 2], "b": [1]})

    def test_from_rows(self):
        table = Table.from_rows([{"x": 1, "y": 2}, {"x": 3}])
        assert table.column("x") == [1, 3]
        assert table.column("y") == [2, None]

    def test_from_rows_empty(self):
        assert Table.from_rows([]).num_rows == 0

    def test_from_rows_explicit_columns(self):
        table = Table.from_rows([{"x": 1, "y": 2}], columns=["y"])
        assert table.columns == ["y"]

    def test_copy_is_independent(self):
        table = make_table()
        clone = table.copy()
        clone.add_column("id", [9, 9, 9])
        assert table.column("id") == [1, 2, 3]

    def test_equality(self):
        assert make_table() == make_table()
        assert make_table() != Table({"id": [1]})
        assert (make_table() == 42) is False

    def test_hash_is_identity(self):
        a, b = make_table(), make_table()
        assert a == b
        assert hash(a) != hash(b) or a is b  # identity hash, not value hash


class TestAccess:
    def test_column_missing_raises(self):
        with pytest.raises(SchemaError, match="no such column"):
            make_table().column("nope")

    def test_getitem(self):
        assert make_table()["name"] == ["a", "b", "c"]

    def test_contains(self):
        table = make_table()
        assert "name" in table
        assert "nope" not in table

    def test_row(self):
        assert make_table().row(1) == {"id": 2, "name": "b", "age": None}

    def test_row_negative_index(self):
        assert make_table().row(-1)["id"] == 3

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make_table().row(3)

    def test_rows_iteration(self):
        assert [row["id"] for row in make_table()] == [1, 2, 3]

    def test_require_columns(self):
        with pytest.raises(SchemaError, match="missing columns"):
            make_table().require_columns(["id", "zzz"])


class TestMutation:
    def test_add_column(self):
        table = make_table().add_column("flag", [True, False, True])
        assert table.column("flag") == [True, False, True]

    def test_add_column_wrong_length(self):
        with pytest.raises(SchemaError):
            make_table().add_column("flag", [1])

    def test_add_column_replaces(self):
        table = make_table().add_column("id", [7, 8, 9])
        assert table.column("id") == [7, 8, 9]

    def test_append_row(self):
        table = make_table().append_row({"id": 4, "name": "d"})
        assert table.num_rows == 4
        assert table.row(3) == {"id": 4, "name": "d", "age": None}

    def test_append_row_to_empty(self):
        table = Table().append_row({"x": 1})
        assert table.num_rows == 1

    def test_drop_columns(self):
        table = make_table().drop_columns(["age"])
        assert table.columns == ["id", "name"]

    def test_rename_columns(self):
        table = make_table().rename_columns({"name": "title"})
        assert "title" in table.columns
        assert "name" not in table.columns


class TestRelationalOps:
    def test_project(self):
        table = make_table().project(["name", "id"])
        assert table.columns == ["name", "id"]

    def test_select(self):
        table = make_table().select(lambda row: row["id"] > 1)
        assert table.column("id") == [2, 3]

    def test_take(self):
        assert make_table().take([2, 0]).column("id") == [3, 1]

    def test_head(self):
        assert make_table().head(2).num_rows == 2
        assert make_table().head(99).num_rows == 3

    def test_sample_deterministic(self):
        table = make_table()
        assert table.sample(2, seed=1) == table.sample(2, seed=1)
        assert table.sample(2, seed=1).num_rows == 2

    def test_sample_larger_than_table(self):
        assert make_table().sample(50, seed=0).num_rows == 3

    def test_sort_by(self):
        table = make_table().sort_by("age")
        # None sorts first
        assert table.column("age") == [None, 25, 30]

    def test_sort_by_reverse(self):
        table = Table({"v": [1, 3, 2]}).sort_by("v", reverse=True)
        assert table.column("v") == [3, 2, 1]

    def test_concat(self):
        combined = make_table().concat(make_table())
        assert combined.num_rows == 6

    def test_concat_schema_mismatch(self):
        with pytest.raises(SchemaError):
            make_table().concat(Table({"x": [1]}))

    def test_unique_values(self):
        assert Table({"v": [1, 1, 2]}).unique_values("v") == {1, 2}


class TestKeys:
    def test_validate_key_ok(self):
        make_table().validate_key("id")

    def test_validate_key_duplicates(self):
        with pytest.raises(KeyConstraintError, match="duplicates"):
            Table({"id": [1, 1]}).validate_key("id")

    def test_validate_key_missing_values(self):
        with pytest.raises(KeyConstraintError, match="missing"):
            Table({"id": [1, None]}).validate_key("id")

    def test_index_by(self):
        index = make_table().index_by("id")
        assert index[2]["name"] == "b"
