"""Tests for repro.runtime: the shared operator-DAG execution core.

Covers the IR, both executors, the structured event stream, memoization,
DAG-level checkpointing, and the two issue-mandated scenarios: crash-resume
via fault injection at every node of a Figure-2-style workflow, and
per-node event-multiset equivalence between serial and interleaved
metamanager schedules.
"""

import json

import pytest

from repro.exceptions import ConfigurationError, WorkflowError
from repro.runtime import (
    CACHE_HIT,
    CHECKPOINT_SAVED,
    NODE_FAIL,
    NODE_FINISH,
    NODE_RETRY,
    NODE_START,
    RUN_FINISH,
    RUN_START,
    EventStream,
    GraphCheckpoint,
    NodeMemo,
    Operator,
    OperatorGraph,
    ParallelExecutor,
    SerialExecutor,
    chain_graph,
    fingerprint,
    node_fingerprints,
    read_jsonl,
    run_graph,
)


def diamond_graph():
    """a -> (b, c) -> d over simple integer artifacts."""
    graph = OperatorGraph("diamond")
    graph.add("a", lambda s: s.__setitem__("x", 2), outputs=("x",))
    graph.add("b", lambda s: {"left": s["x"] * 10}, deps=("a",), outputs=("left",))
    graph.add("c", lambda s: {"right": s["x"] + 1}, deps=("a",), outputs=("right",))
    graph.add(
        "d",
        lambda s: {"total": s["left"] + s["right"]},
        deps=("b", "c"),
        outputs=("total",),
    )
    return graph


class TestGraph:
    def test_duplicate_name_rejected(self):
        graph = OperatorGraph("g")
        graph.add("a", lambda s: None)
        with pytest.raises(WorkflowError, match="duplicate"):
            graph.add("a", lambda s: None)

    def test_unknown_dep_rejected(self):
        graph = OperatorGraph("g")
        with pytest.raises(WorkflowError, match="unknown operator"):
            graph.add("a", lambda s: None, deps=("zzz",))

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowError):
            Operator("", lambda s: None)

    def test_topological_order_deterministic(self):
        graph = diamond_graph()
        assert graph.topological_order() == ["a", "b", "c", "d"]

    def test_successors_predecessors(self):
        graph = diamond_graph()
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("d") == ("b", "c")

    def test_unknown_node_lookup(self):
        with pytest.raises(WorkflowError, match="no operator"):
            diamond_graph().node("zzz")

    def test_chain_graph_is_linear(self):
        graph = chain_graph("chain", [("s1", lambda s: None), ("s2", lambda s: None)])
        assert graph.predecessors("s2") == ("s1",)
        assert graph.topological_order() == ["s1", "s2"]

    def test_subgraph_drops_external_deps(self):
        sub = diamond_graph().subgraph(["b", "d"])
        assert sub.predecessors("b") == ()  # "a" is outside
        assert sub.predecessors("d") == ("b",)  # "c" is outside

    def test_contains_len_repr(self):
        graph = diamond_graph()
        assert "a" in graph and "zzz" not in graph
        assert len(graph) == 4
        assert "diamond" in repr(graph)


def permuted_diamonds():
    """The diamond DAG built under every valid insertion order."""
    specs = {
        "a": (),
        "b": ("a",),
        "c": ("a",),
        "d": ("b", "c"),
    }
    orders = [
        ["a", "b", "c", "d"],
        ["a", "c", "b", "d"],
    ]
    graphs = []
    for order in orders:
        graph = OperatorGraph("diamond")
        for name in order:
            graph.add(name, lambda s: None, deps=specs[name])
        graphs.append((order, graph))
    return graphs


class TestOrderDeterminism:
    """topological_order/subgraph are pure functions of the built graph."""

    def test_topological_order_is_stable_across_calls(self):
        for _, graph in permuted_diamonds():
            first = graph.topological_order()
            assert all(graph.topological_order() == first for _ in range(5))

    def test_topological_order_respects_deps_under_any_insertion(self):
        for _, graph in permuted_diamonds():
            order = graph.topological_order()
            position = {name: i for i, name in enumerate(order)}
            for name, operator in graph.nodes.items():
                assert all(position[dep] < position[name] for dep in operator.deps)

    def test_ties_break_by_insertion_order(self):
        for insertion, graph in permuted_diamonds():
            # b and c are unordered by deps; insertion decides, nothing else.
            assert graph.topological_order() == insertion

    def test_identical_builds_identical_order(self):
        built = [
            graph.topological_order()
            for _, graph in [permuted_diamonds()[0], permuted_diamonds()[0]]
        ]
        assert built[0] == built[1]

    def test_subgraph_preserves_relative_order(self):
        for _, graph in permuted_diamonds():
            parent_order = graph.topological_order()
            for keep in (["a", "d"], ["b", "d"], ["a", "b", "c"], ["c", "d"]):
                sub_order = graph.subgraph(keep).topological_order()
                assert sub_order == [n for n in parent_order if n in set(keep)]

    def test_subgraph_is_deterministic_across_calls(self):
        graph = permuted_diamonds()[1][1]
        first = graph.subgraph(["a", "b", "d"]).topological_order()
        for _ in range(5):
            assert graph.subgraph(["a", "b", "d"]).topological_order() == first


class TestRowCountEvents:
    """NODE_FINISH events carry sized input/output rows for the planner."""

    def graph(self):
        graph = OperatorGraph("rows")
        graph.add("make", lambda s: {"items": list(range(10))}, outputs=("items",))
        graph.add(
            "shrink",
            lambda s: {"items": s["items"][:3]},
            deps=("make",),
            outputs=("items",),
        )
        return graph

    def finish_events(self, result):
        return {e.node: e for e in result.events.of(NODE_FINISH)}

    def test_rows_measured_before_and_after(self):
        finishes = self.finish_events(run_graph(self.graph()))
        assert finishes["make"].rows_in == 0
        assert finishes["make"].rows_out == 10
        # "shrink" overwrites the slot it reads: rows_in must still be the
        # pre-execution size, not the post-execution one.
        assert finishes["shrink"].rows_in == 10
        assert finishes["shrink"].rows_out == 3

    def test_rows_match_under_parallel_executor(self):
        serial = self.finish_events(run_graph(self.graph()))
        parallel = self.finish_events(
            run_graph(self.graph(), executor=ParallelExecutor(n_jobs=2))
        )
        for node in serial:
            assert (serial[node].rows_in, serial[node].rows_out) == (
                parallel[node].rows_in,
                parallel[node].rows_out,
            )

    def test_unsized_artifacts_count_zero(self):
        graph = OperatorGraph("scalar")
        graph.add("a", lambda s: {"x": 42}, outputs=("x",))
        graph.add("b", lambda s: {"y": "a string"}, deps=("a",), outputs=("y",))
        finishes = self.finish_events(run_graph(graph))
        assert finishes["a"].rows_out == 0  # int has no rows
        assert finishes["b"].rows_in == 0
        assert finishes["b"].rows_out == 0  # strings deliberately uncounted

    def test_rows_in_event_dict_roundtrip(self):
        result = run_graph(self.graph())
        payload = self.finish_events(result)["shrink"].to_dict()
        assert payload["rows_in"] == 10 and payload["rows_out"] == 3


class TestRunGraph:
    def test_serial_executes_all(self):
        result = run_graph(diamond_graph())
        assert result.ok
        assert result.store["total"] == 23
        assert [r.name for r in result.records.values()] == ["a", "b", "c", "d"]

    def test_parallel_matches_serial(self):
        serial = run_graph(diamond_graph(), executor=SerialExecutor())
        parallel = run_graph(diamond_graph(), executor=ParallelExecutor(n_jobs=2))
        assert dict(serial.store) == dict(parallel.store)
        assert serial.events.node_multiset() == parallel.events.node_multiset()

    def test_isolated_nodes_run_in_workers(self):
        graph = OperatorGraph("iso")
        graph.add("src", lambda s: {"n": 5}, outputs=("n",))
        for i in range(3):
            graph.add(
                f"sq{i}",
                (lambda k: lambda s: {f"out{k}": s["n"] ** 2 + k})(i),
                deps=("src",),
                outputs=(f"out{i}",),
                isolated=True,
            )
        result = run_graph(graph, executor=ParallelExecutor(n_jobs=3))
        assert [result.store[f"out{i}"] for i in range(3)] == [25, 26, 27]

    def test_sim_seconds_recorded(self):
        graph = OperatorGraph("sim")
        graph.add("human", lambda s: 42.5)
        result = run_graph(graph)
        assert result.sim_seconds() == pytest.approx(42.5)
        assert result.records["human"].sim_seconds == pytest.approx(42.5)

    def test_bool_return_is_not_sim_seconds(self):
        # bool is an int subclass: a predicate-style operator returning
        # True must not be billed as 1.0 simulated seconds.
        graph = OperatorGraph("pred")
        graph.add("check", lambda s: True)
        graph.add("deny", lambda s: False, deps=("check",))
        result = run_graph(graph)
        assert result.sim_seconds() == 0.0
        assert result.records["check"].sim_seconds == 0.0
        assert result.records["deny"].sim_seconds == 0.0
        # Real int/float returns are still simulated seconds.
        graph2 = OperatorGraph("sim2")
        graph2.add("crowd", lambda s: 3)
        assert run_graph(graph2).sim_seconds() == pytest.approx(3.0)

    def test_store_mutated_in_place(self):
        store = {"seed": 1}
        result = run_graph(
            chain_graph("c", [("double", lambda s: {"seed": s["seed"] * 2})]), store
        )
        assert result.store is store
        assert store["seed"] == 2

    def test_retries(self):
        calls = {"n": 0}

        def flaky(store):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            store["done"] = True

        graph = OperatorGraph("r")
        graph.add("flaky", flaky, retries=2)
        result = run_graph(graph)
        assert result.ok and result.store["done"]
        assert result.records["flaky"].attempts == 3
        assert len(result.events.of(NODE_RETRY)) == 2

    def test_on_error_raise(self):
        graph = chain_graph("f", [("boom", lambda s: 1 / 0), ("after", lambda s: None)])
        with pytest.raises(ZeroDivisionError):
            run_graph(graph)

    def test_on_error_continue_runs_dependents(self):
        graph = chain_graph(
            "f", [("boom", lambda s: 1 / 0), ("after", lambda s: {"ran": True})]
        )
        result = run_graph(graph, on_error="continue")
        assert not result.ok
        assert result.failed_nodes() == ["boom"]
        assert result.store["ran"] is True

    def test_on_error_halt_returns_error(self):
        graph = chain_graph(
            "f", [("boom", lambda s: 1 / 0), ("after", lambda s: {"ran": True})]
        )
        result = run_graph(graph, on_error="halt")
        assert isinstance(result.first_error, ZeroDivisionError)
        assert "ran" not in result.store  # scheduling stopped
        assert len(result.events.of(RUN_FINISH)) == 1

    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            run_graph(diamond_graph(), on_error="ignore")

    def test_undeclared_output_rejected(self):
        graph = OperatorGraph("g")
        graph.add("liar", lambda s: None, outputs=("never_written",))
        with pytest.raises(WorkflowError, match="did not write"):
            run_graph(graph)


class TestEvents:
    def test_event_sequence(self):
        result = run_graph(diamond_graph())
        kinds = [e.event for e in result.events]
        assert kinds[0] == RUN_START and kinds[-1] == RUN_FINISH
        assert kinds.count(NODE_START) == kinds.count(NODE_FINISH) == 4

    def test_subscriber_sees_events(self):
        seen = []
        events = EventStream()
        events.subscribe(seen.append)
        run_graph(diamond_graph(), events=events)
        assert len(seen) == len(events.events)

    def test_unsubscribe(self):
        seen = []
        events = EventStream()
        sink = events.subscribe(seen.append)
        events.unsubscribe(sink)
        run_graph(diamond_graph(), events=events)
        assert seen == []

    def test_jsonl_roundtrip(self, tmp_path):
        result = run_graph(diamond_graph())
        path = result.events.write_jsonl(tmp_path / "events.jsonl")
        rows = read_jsonl(path)
        assert len(rows) == len(result.events.events)
        assert all(json.dumps(row) for row in rows)
        finish = [r for r in rows if r["event"] == NODE_FINISH]
        assert {r["node"] for r in finish} == {"a", "b", "c", "d"}
        assert all("wall_seconds" in r and "cached" in r for r in finish)

    def test_node_timings(self):
        result = run_graph(diamond_graph())
        timings = result.events.node_timings()
        assert set(timings) == {("diamond", n) for n in "abcd"}

    def test_node_timings_separate_cached_from_real(self):
        # A cache restore must not masquerade as execution time: real
        # timings come from NODE_FINISH, cached ones from CACHE_HIT.
        memo = NodeMemo()
        events = EventStream()
        run_graph(diamond_graph(), memo=memo)
        run_graph(diamond_graph(), memo=memo, events=events)
        assert events.node_timings() == {}
        cached = events.node_timings(cached=True)
        assert set(cached) == {("diamond", n) for n in "abcd"}


class TestMemoAndCheckpoint:
    def test_fingerprints_depend_on_structure(self):
        g1, g2 = diamond_graph(), diamond_graph()
        assert node_fingerprints(g1) == node_fingerprints(g2)
        g3 = diamond_graph()
        g3.add("e", lambda s: None, deps=("d",), key="v2")
        fps = node_fingerprints(g3)
        assert fps["d"] == node_fingerprints(g1)["d"]

    def test_key_salts_fingerprint(self):
        g = OperatorGraph("g")
        g.add("a", lambda s: None, key="v1")
        h = OperatorGraph("g")
        h.add("a", lambda s: None, key="v2")
        assert node_fingerprints(g)["a"] != node_fingerprints(h)["a"]

    def test_fingerprint_is_hex(self):
        assert len(fingerprint("x", 1)) == 32
        assert fingerprint("x") != fingerprint("y")

    def test_memo_hits_on_rerun(self):
        memo = NodeMemo()
        counter = {"runs": 0}

        def expensive(store):
            counter["runs"] += 1
            return {"value": 7}

        def make():
            graph = OperatorGraph("memo")
            graph.add("expensive", expensive, outputs=("value",))
            return graph

        run_graph(make(), memo=memo)
        second = run_graph(make(), memo=memo)
        assert counter["runs"] == 1
        assert second.store["value"] == 7
        assert second.records["expensive"].cached
        hits = second.events.of(CACHE_HIT)
        assert len(hits) == 1 and hits[0].extra["source"] == "memo"

    def test_checkpoint_saves_and_restores(self, tmp_path):
        checkpoint = GraphCheckpoint("run1", tmp_path)
        first = run_graph(diamond_graph(), checkpoint=checkpoint)
        assert len(first.events.of(CHECKPOINT_SAVED)) == 4
        assert checkpoint.completed_nodes() == {"a", "b", "c", "d"}
        # A fresh process (new GraphCheckpoint object) serves all nodes.
        second = run_graph(
            diamond_graph(), checkpoint=GraphCheckpoint("run1", tmp_path)
        )
        assert dict(second.store) == dict(first.store)
        assert all(record.cached for record in second.records.values())

    def test_invalidate_forces_recompute(self, tmp_path):
        checkpoint = GraphCheckpoint("run1", tmp_path)
        run_graph(diamond_graph(), checkpoint=checkpoint)
        checkpoint.invalidate("d")
        result = run_graph(diamond_graph(), checkpoint=checkpoint)
        assert not result.records["d"].cached
        assert result.records["a"].cached


def figure2_graph(log=None):
    """A Figure-2-style guide workflow: sample, block, label, train, apply.

    Deterministic pure-store operators with declared outputs, so the graph
    is fully checkpointable.  ``log`` collects executed node names.
    """
    def step(name, fn):
        def op(store):
            if log is not None:
                log.append(name)
            return fn(store)
        return op

    graph = OperatorGraph("figure2")
    graph.add("sample", step("sample", lambda s: {"sample": list(range(10))}),
              outputs=("sample",))
    graph.add("block", step("block", lambda s: {"candset": [x for x in s["sample"] if x % 2 == 0]}),
              deps=("sample",), outputs=("candset",))
    graph.add("label", step("label", lambda s: {"labels": [x > 4 for x in s["candset"]]}),
              deps=("block",), outputs=("labels",))
    graph.add("train", step("train", lambda s: {"threshold": 4}),
              deps=("label",), outputs=("threshold",))
    graph.add("apply", step("apply", lambda s: {"matches": [x for x in s["candset"] if x > s["threshold"]]}),
              deps=("train",), outputs=("matches",))
    return graph


class TestCrashResume:
    """Fault injection at every node: resume completes only the remainder."""

    @pytest.mark.parametrize("crash_at", ["sample", "block", "label", "train", "apply"])
    def test_resume_from_checkpoint(self, tmp_path, crash_at):
        baseline = run_graph(figure2_graph())

        def crash(name):
            if name == crash_at:
                raise KeyboardInterrupt(f"simulated crash before {name}")

        checkpoint = GraphCheckpoint("prod", tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_graph(figure2_graph(), checkpoint=checkpoint, before_node=crash)

        order = ["sample", "block", "label", "train", "apply"]
        completed_before = set(order[: order.index(crash_at)])
        assert checkpoint.completed_nodes() == completed_before

        # Restart in a "new process": fresh checkpoint handle, fresh graph.
        executed = []
        result = run_graph(
            figure2_graph(log=executed),
            checkpoint=GraphCheckpoint("prod", tmp_path),
        )
        # Only nodes after the last checkpoint re-execute ...
        assert executed == order[order.index(crash_at):]
        # ... and the final artifacts equal the uninterrupted run's.
        assert dict(result.store) == dict(baseline.store)

    def test_crash_leaves_valid_manifest(self, tmp_path):
        checkpoint = GraphCheckpoint("prod", tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_graph(
                figure2_graph(),
                checkpoint=checkpoint,
                before_node=lambda n: (_ for _ in ()).throw(KeyboardInterrupt())
                if n == "train" else None,
            )
        manifest = json.loads(
            (tmp_path / "prod" / "manifest.json").read_text(encoding="utf-8")
        )
        assert set(manifest["nodes"]) == {"sample", "block", "label"}


class TestMetaManagerEvents:
    """Serial and interleaved schedules emit the same per-node multiset."""

    def _run(self, interleave):
        from repro.cloud import (
            DEFAULT_REGISTRY,
            MetaManager,
            build_falcon_workflow,
        )
        from tests.test_cloud import make_context, small_dataset

        manager = MetaManager(interleave=interleave)
        for seed in (1, 2):
            dataset = small_dataset(seed=seed)
            manager.submit(
                build_falcon_workflow(dataset.name, DEFAULT_REGISTRY),
                make_context(dataset),
            )
        manager.run_all()
        return manager

    def test_event_multiset_schedule_invariant(self):
        serial = self._run(False)
        interleaved = self._run(True)
        multiset = serial.events.node_multiset()
        assert multiset == interleaved.events.node_multiset()
        # 2 workflows x 16 services, each started and finished exactly once.
        assert sum(multiset.values()) == 2 * 16 * 2
        assert all(count == 1 for count in multiset.values())

    def test_event_log_export(self, tmp_path):
        manager = self._run(True)
        path = manager.write_event_log(tmp_path / "cloud.jsonl")
        rows = read_jsonl(path)
        assert {r["event"] for r in rows} >= {RUN_START, NODE_START, NODE_FINISH}
        finish = [r for r in rows if r["event"] == NODE_FINISH]
        # Simulated timestamps propagate from the metamanager's clock.
        assert any(r["sim_at"] > 0 for r in finish)
