"""Tests for labelers, sessions (budget/undo), and the crowd simulation."""

import pytest

from repro.blocking import make_candset
from repro.crowd import CrowdLabeler
from repro.exceptions import BudgetExhaustedError, LabelingError
from repro.labeling import (
    MATCH,
    NO_MATCH,
    LabelingSession,
    OracleLabeler,
    UncertainOracleLabeler,
)

GOLD = {("a1", "b1"), ("a3", "b2")}


class TestOracle:
    def test_perfect_oracle(self):
        oracle = OracleLabeler(GOLD)
        assert oracle.label(("a1", "b1")) == MATCH
        assert oracle.label(("a2", "b1")) == NO_MATCH
        assert oracle.questions_asked == 2

    def test_labeling_time(self):
        oracle = OracleLabeler(GOLD, seconds_per_label=10)
        oracle.label(("a1", "b1"))
        oracle.label(("a2", "b1"))
        assert oracle.labeling_seconds == 20.0

    def test_noisy_oracle_flips_some(self):
        oracle = OracleLabeler(GOLD, noise_rate=1.0, seed=0)
        assert oracle.label(("a1", "b1")) == NO_MATCH  # always flipped

    def test_noise_rate_validation(self):
        with pytest.raises(ValueError):
            OracleLabeler(GOLD, noise_rate=2.0)

    def test_uncertain_oracle_on_hard_pairs(self):
        hard = {("a1", "b1")}
        labeler = UncertainOracleLabeler(GOLD, hard, hard_match_bias=0.0, seed=1)
        # hard pair: always answered no-match under bias 0
        assert labeler.label(("a1", "b1")) == NO_MATCH
        # easy pair: truthful
        assert labeler.label(("a3", "b2")) == MATCH


class TestSession:
    def test_caching_no_double_charge(self):
        session = LabelingSession(OracleLabeler(GOLD))
        session.ask(("a1", "b1"))
        session.ask(("a1", "b1"))
        assert session.questions_asked == 1

    def test_budget_enforced(self):
        session = LabelingSession(OracleLabeler(GOLD), budget=2)
        session.ask(("a1", "b1"))
        session.ask(("a2", "b1"))
        assert not session.has_budget()
        with pytest.raises(BudgetExhaustedError):
            session.ask(("a3", "b2"))

    def test_remaining_budget(self):
        session = LabelingSession(OracleLabeler(GOLD), budget=5)
        session.ask(("a1", "b1"))
        assert session.remaining_budget == 4
        assert LabelingSession(OracleLabeler(GOLD)).remaining_budget is None

    def test_invalid_budget(self):
        with pytest.raises(LabelingError):
            LabelingSession(OracleLabeler(GOLD), budget=0)

    def test_undo_refunds_budget(self):
        """The AmFam lesson: labels must be retractable."""
        session = LabelingSession(OracleLabeler(GOLD), budget=2)
        session.ask(("a1", "b1"))
        session.ask(("a2", "b1"))
        retracted = session.undo(1)
        assert retracted[0].pair == ("a2", "b1")
        assert session.questions_asked == 1
        assert session.has_budget()
        # The retracted pair can be re-asked.
        session.ask(("a3", "b2"))

    def test_undo_too_many(self):
        session = LabelingSession(OracleLabeler(GOLD))
        with pytest.raises(LabelingError):
            session.undo(1)
        session.ask(("a1", "b1"))
        with pytest.raises(LabelingError):
            session.undo(2)
        with pytest.raises(LabelingError):
            session.undo(0)

    def test_relabel(self):
        session = LabelingSession(OracleLabeler(GOLD, noise_rate=1.0, seed=0))
        session.ask(("a1", "b1"))  # noisy answer: NO_MATCH
        session.relabel(("a1", "b1"), MATCH)
        assert session.labels[("a1", "b1")] == MATCH

    def test_relabel_unknown_pair(self):
        session = LabelingSession(OracleLabeler(GOLD))
        with pytest.raises(LabelingError):
            session.relabel(("a1", "b1"), MATCH)

    def test_label_candset(self, figure1_tables):
        table_a, table_b, gold = figure1_tables
        candset = make_candset(
            [("a1", "b1"), ("a2", "b1"), ("a3", "b2")], table_a, table_b, "id", "id"
        )
        session = LabelingSession(OracleLabeler(gold))
        session.label_candset(candset)
        assert candset.column("label") == [1, 0, 1]


class TestCrowd:
    def test_majority_vote_beats_single_worker(self):
        gold = {(f"a{i}", f"b{i}") for i in range(100)}
        questions = [(f"a{i}", f"b{i}") for i in range(100)] + [
            (f"a{i}", f"b{i + 1}") for i in range(99)
        ]
        replicated = CrowdLabeler(gold, worker_accuracy=0.8, replication=5, seed=0)
        single = CrowdLabeler(gold, worker_accuracy=0.8, replication=1, seed=0)
        correct_replicated = sum(
            replicated.label(q) == (1 if q in gold else 0) for q in questions
        )
        correct_single = sum(
            single.label(q) == (1 if q in gold else 0) for q in questions
        )
        assert correct_replicated > correct_single

    def test_cost_accounting(self):
        crowd = CrowdLabeler(GOLD, replication=3, price_per_assignment=0.02, seed=0)
        for _ in range(10):
            crowd.label(("a1", "b1"))
        assert crowd.assignments == 30
        assert crowd.dollar_cost == pytest.approx(0.6)

    def test_elapsed_time_grows(self):
        crowd = CrowdLabeler(GOLD, seed=0)
        crowd.label(("a1", "b1"))
        first = crowd.elapsed_seconds
        crowd.label(("a2", "b1"))
        assert crowd.elapsed_seconds > first

    def test_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CrowdLabeler(GOLD, replication=0)
        with pytest.raises(ConfigurationError):
            CrowdLabeler(GOLD, n_workers=2, replication=3)

    def test_crowd_in_session(self):
        session = LabelingSession(CrowdLabeler(GOLD, seed=1), budget=10)
        assert session.ask(("a1", "b1")) in (0, 1)
        assert session.questions_asked == 1
