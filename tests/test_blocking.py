"""Tests for blockers, candidate sets, set operations, and the debugger."""

import pytest

from repro.blocking import (
    AttrEquivalenceBlocker,
    BlackBoxBlocker,
    HashBlocker,
    OverlapBlocker,
    SortedNeighborhoodBlocker,
    blocking_recall,
    candset_difference,
    candset_intersection,
    candset_pairs,
    candset_union,
    debug_blocker,
    make_candset,
)
from repro.catalog import get_catalog
from repro.exceptions import SchemaError
from repro.table import Table


def pairs_of(candset):
    return set(candset_pairs(candset))


class TestAttrEquivalence:
    def test_figure1_state_blocking(self, figure1_tables):
        """Figure 1: blocking on state drops the CA person."""
        table_a, table_b, gold = figure1_tables
        blocker = AttrEquivalenceBlocker("state")
        candset = blocker.block_tables(table_a, table_b, "id", "id")
        result = pairs_of(candset)
        assert ("a2", "b1") not in result  # CA vs WI dropped
        assert gold <= result  # all true matches survive

    def test_matches_pairwise_semantics(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        blocker = AttrEquivalenceBlocker("state")
        expected = {
            (l_row["id"], r_row["id"])
            for l_row in table_a.rows()
            for r_row in table_b.rows()
            if not blocker.block_tuples(l_row, r_row)
        }
        assert pairs_of(blocker.block_tables(table_a, table_b, "id", "id")) == expected

    def test_missing_values_never_match(self):
        table_a = Table({"id": [1], "state": [None]})
        table_b = Table({"id": [2], "state": [None]})
        blocker = AttrEquivalenceBlocker("state")
        assert blocker.block_tables(table_a, table_b, "id", "id").num_rows == 0

    def test_different_attr_names(self):
        table_a = Table({"id": [1], "st": ["WI"]})
        table_b = Table({"id": [2], "state": ["WI"]})
        blocker = AttrEquivalenceBlocker("st", "state")
        assert blocker.block_tables(table_a, table_b, "id", "id").num_rows == 1

    def test_output_attrs_copied(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        blocker = AttrEquivalenceBlocker("state")
        candset = blocker.block_tables(
            table_a, table_b, "id", "id",
            l_output_attrs=["name"], r_output_attrs=["name", "city"],
        )
        assert "ltable_name" in candset.columns
        assert "rtable_city" in candset.columns

    def test_candset_metadata_registered(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        candset = AttrEquivalenceBlocker("state").block_tables(table_a, table_b, "id", "id")
        meta = get_catalog().get_candset_metadata(candset)
        assert meta.fk_ltable == "ltable_id"
        assert meta.ltable is table_a


class TestHashBlocker:
    def test_computed_key(self, figure1_tables):
        table_a, table_b, gold = figure1_tables
        blocker = HashBlocker(lambda row: row["name"].split()[-1].lower())
        candset = blocker.block_tables(table_a, table_b, "id", "id")
        assert gold <= pairs_of(candset)
        assert ("a2", "b1") not in pairs_of(candset)

    def test_none_bucket_drops(self):
        table = Table({"id": [1], "v": ["x"]})
        blocker = HashBlocker(lambda row: None)
        assert blocker.block_tables(table, table, "id", "id").num_rows == 0


class TestOverlapBlocker:
    def test_word_level(self, figure1_tables):
        table_a, table_b, gold = figure1_tables
        blocker = OverlapBlocker("name", overlap_size=1)
        candset = blocker.block_tables(table_a, table_b, "id", "id")
        assert gold <= pairs_of(candset)

    def test_equivalent_to_pairwise(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        blocker = OverlapBlocker("name", overlap_size=1)
        expected = {
            (l_row["id"], r_row["id"])
            for l_row in table_a.rows()
            for r_row in table_b.rows()
            if not blocker.block_tuples(l_row, r_row)
        }
        assert pairs_of(blocker.block_tables(table_a, table_b, "id", "id")) == expected

    def test_qgram_level(self):
        table_a = Table({"id": [1], "v": ["wisconsin"]})
        table_b = Table({"id": [2, 3], "v": ["wisconsim", "zzzzz"]})
        blocker = OverlapBlocker("v", word_level=False, q=3, overlap_size=3)
        assert pairs_of(blocker.block_tables(table_a, table_b, "id", "id")) == {(1, 2)}

    def test_case_insensitive(self):
        table_a = Table({"id": [1], "v": ["Dave Smith"]})
        table_b = Table({"id": [2], "v": ["dave SMITH"]})
        blocker = OverlapBlocker("v", overlap_size=2)
        assert blocker.block_tables(table_a, table_b, "id", "id").num_rows == 1

    def test_overlap_size_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            OverlapBlocker("v", overlap_size=0)

    def test_block_candset_refines(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        loose = OverlapBlocker("name", overlap_size=1).block_tables(table_a, table_b, "id", "id")
        tight = OverlapBlocker("name", overlap_size=2).block_candset(loose)
        assert pairs_of(tight) <= pairs_of(loose)


class TestSortedNeighborhood:
    def test_window_pairs(self):
        table_a = Table({"id": ["a1", "a2"], "v": ["apple", "zebra"]})
        table_b = Table({"id": ["b1", "b2"], "v": ["appls", "zebre"]})
        blocker = SortedNeighborhoodBlocker("v", window=2)
        result = pairs_of(blocker.block_tables(table_a, table_b, "id", "id"))
        assert ("a1", "b1") in result
        assert ("a2", "b2") in result
        assert ("a1", "b2") not in result

    def test_block_tuples_undefined(self):
        blocker = SortedNeighborhoodBlocker("v")
        with pytest.raises(NotImplementedError):
            blocker.block_tuples({}, {})

    def test_window_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            SortedNeighborhoodBlocker("v", window=1)

    def test_larger_window_superset(self, small_person_dataset):
        ds = small_person_dataset
        small = SortedNeighborhoodBlocker("name", window=2).block_tables(ds.ltable, ds.rtable)
        large = SortedNeighborhoodBlocker("name", window=5).block_tables(ds.ltable, ds.rtable)
        assert pairs_of(small) <= pairs_of(large)

    def test_oversized_window_is_full_cross_product(self):
        table_a = Table({"id": ["a1", "a2"], "v": ["apple", "zebra"]})
        table_b = Table({"id": ["b1", "b2"], "v": ["appls", None]})
        blocker = SortedNeighborhoodBlocker("v", window=50)
        result = pairs_of(blocker.block_tables(table_a, table_b, "id", "id"))
        # The missing-value row is dropped; everything else cross-pairs.
        assert result == {("a1", "b1"), ("a2", "b1")}

    def test_all_missing_sort_values_empty_candset(self):
        table_a = Table({"id": ["a1", "a2"], "v": [None, None]})
        table_b = Table({"id": ["b1"], "v": [None]})
        candset = SortedNeighborhoodBlocker("v", window=3).block_tables(
            table_a, table_b, "id", "id"
        )
        assert candset.num_rows == 0
        # Still a well-formed, catalog-registered candset.
        assert get_catalog().get_candset_metadata(candset).ltable is table_a


class TestBlackBox:
    def test_arbitrary_predicate(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        blocker = BlackBoxBlocker(lambda l, r: l["city"] != r["city"])
        result = pairs_of(blocker.block_tables(table_a, table_b, "id", "id"))
        assert result == {("a1", "b1"), ("a3", "b2")}


class TestCandsetOps:
    def _two_candsets(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        by_state = AttrEquivalenceBlocker("state").block_tables(table_a, table_b, "id", "id")
        by_city = AttrEquivalenceBlocker("city").block_tables(table_a, table_b, "id", "id")
        return by_state, by_city

    def test_union(self, figure1_tables):
        a, b = self._two_candsets(figure1_tables)
        union = candset_union(a, b)
        assert pairs_of(union) == pairs_of(a) | pairs_of(b)

    def test_intersection(self, figure1_tables):
        a, b = self._two_candsets(figure1_tables)
        inter = candset_intersection(a, b)
        assert pairs_of(inter) == pairs_of(a) & pairs_of(b)

    def test_difference(self, figure1_tables):
        a, b = self._two_candsets(figure1_tables)
        diff = candset_difference(a, b)
        assert pairs_of(diff) == pairs_of(a) - pairs_of(b)

    def test_result_has_metadata(self, figure1_tables):
        a, b = self._two_candsets(figure1_tables)
        union = candset_union(a, b)
        assert get_catalog().get_candset_metadata(union).is_candset()

    def test_different_bases_rejected(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        a = AttrEquivalenceBlocker("state").block_tables(table_a, table_b, "id", "id")
        other = Table({"id": ["x1"], "state": ["WI"], "name": ["n"], "city": ["c"]})
        b = AttrEquivalenceBlocker("state").block_tables(other, table_b, "id", "id")
        with pytest.raises(SchemaError, match="different base tables"):
            candset_union(a, b)


class TestDebugger:
    def test_debug_blocker_surfaces_dropped_match(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        # A terrible blocker that keeps only the CA pair, dropping both
        # true matches.
        candset = make_candset([("a2", "b1")], table_a, table_b, "id", "id")
        report = debug_blocker(candset, output_size=5)
        suggested = set(zip(report.column("l_id"), report.column("r_id")))
        assert ("a1", "b1") in suggested or ("a3", "b2") in suggested
        # sorted by similarity descending
        scores = report.column("similarity")
        assert scores == sorted(scores, reverse=True)

    def test_debug_blocker_excludes_existing_pairs(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        candset = make_candset(
            [("a1", "b1"), ("a3", "b2")], table_a, table_b, "id", "id"
        )
        report = debug_blocker(candset, output_size=50)
        suggested = set(zip(report.column("l_id"), report.column("r_id")))
        assert ("a1", "b1") not in suggested
        assert ("a3", "b2") not in suggested

    def test_blocking_recall(self, figure1_tables):
        table_a, table_b, gold = figure1_tables
        full = make_candset(sorted(gold), table_a, table_b, "id", "id")
        assert blocking_recall(full, gold) == 1.0
        half = make_candset([("a1", "b1")], table_a, table_b, "id", "id")
        assert blocking_recall(half, gold) == 0.5
        assert blocking_recall(half, set()) == 1.0
