"""Tests for the exception hierarchy and top-level package API."""

import pytest

import repro
from repro.exceptions import (
    BudgetExhaustedError,
    CatalogError,
    ConfigurationError,
    ForeignKeyConstraintError,
    KeyConstraintError,
    LabelingError,
    NotFittedError,
    ReproError,
    SchemaError,
    ServiceError,
    WorkflowError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CatalogError,
            ConfigurationError,
            ForeignKeyConstraintError,
            KeyConstraintError,
            LabelingError,
            NotFittedError,
            SchemaError,
            ServiceError,
            WorkflowError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_budget_is_labeling_error(self):
        assert issubclass(BudgetExhaustedError, LabelingError)

    def test_catchable_as_base(self):
        from repro.table import Table

        with pytest.raises(ReproError):
            Table({"id": [1, 1]}).validate_key("id")


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_table_exported(self):
        assert repro.Table is not None

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_every_subpackage_importable(self):
        import importlib

        for package in (
            "repro.table", "repro.catalog", "repro.text", "repro.simjoin",
            "repro.ml", "repro.sampling", "repro.blocking", "repro.features",
            "repro.matchers", "repro.labeling", "repro.crowd", "repro.falcon",
            "repro.smurf", "repro.cloud", "repro.pipeline", "repro.datasets",
            "repro.cleaning", "repro.postprocess", "repro.schema_matching",
            "repro.reporting",
        ):
            module = importlib.import_module(package)
            assert hasattr(module, "__all__"), package

    def test_subpackage_all_entries_exist(self):
        import importlib

        for package in (
            "repro.table", "repro.catalog", "repro.text", "repro.simjoin",
            "repro.ml", "repro.sampling", "repro.blocking", "repro.features",
            "repro.matchers", "repro.labeling", "repro.crowd", "repro.falcon",
            "repro.smurf", "repro.cloud", "repro.pipeline", "repro.datasets",
            "repro.cleaning", "repro.postprocess", "repro.schema_matching",
            "repro.reporting",
        ):
            module = importlib.import_module(package)
            for name in module.__all__:
                assert getattr(module, name, None) is not None, f"{package}.{name}"
