"""Tests for the metadata catalog and self-containment checks."""

import warnings

import pytest

from repro.catalog import (
    StaleMetadataWarning,
    check_fk_constraint,
    get_catalog,
    reset_catalog,
    validate_candset,
)
from repro.catalog.catalog import Catalog
from repro.exceptions import (
    CatalogError,
    ForeignKeyConstraintError,
    KeyConstraintError,
)
from repro.table import Table


def make_tables():
    ltable = Table({"id": ["a1", "a2"], "v": ["x", "y"]})
    rtable = Table({"id": ["b1", "b2"], "v": ["x", "z"]})
    candset = Table(
        {"_id": [0, 1], "ltable_id": ["a1", "a2"], "rtable_id": ["b1", "b2"]}
    )
    return ltable, rtable, candset


class TestKeys:
    def test_set_get_key(self):
        catalog = Catalog()
        table = Table({"id": [1, 2]})
        catalog.set_key(table, "id")
        assert catalog.get_key(table) == "id"

    def test_set_key_validates(self):
        catalog = Catalog()
        with pytest.raises(KeyConstraintError):
            catalog.set_key(Table({"id": [1, 1]}), "id")

    def test_get_key_missing_raises(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.get_key(Table({"id": [1]}))

    def test_get_key_default(self):
        catalog = Catalog()
        assert catalog.get_key(Table({"id": [1]}), default=None) is None

    def test_global_catalog_reset(self):
        table = Table({"id": [1]})
        get_catalog().set_key(table, "id")
        assert len(get_catalog()) == 1
        reset_catalog()
        assert len(get_catalog()) == 0

    def test_weak_references(self):
        catalog = Catalog()
        table = Table({"id": [1]})
        catalog.set_key(table, "id")
        assert len(catalog) == 1
        del table
        import gc

        gc.collect()
        assert len(catalog) == 0


class TestProperties:
    def test_set_get_property(self):
        catalog = Catalog()
        table = Table({"id": [1]})
        catalog.set_property(table, "source", "walmart")
        assert catalog.get_property(table, "source") == "walmart"

    def test_get_property_missing(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.get_property(Table({"id": [1]}), "nope")
        assert catalog.get_property(Table({"id": [1]}), "nope", default=3) == 3


class TestCandsetMetadata:
    def test_round_trip(self):
        catalog = Catalog()
        ltable, rtable, candset = make_tables()
        catalog.set_key(ltable, "id")
        catalog.set_key(rtable, "id")
        catalog.set_candset_metadata(candset, "_id", "ltable_id", "rtable_id", ltable, rtable)
        meta = catalog.get_candset_metadata(candset)
        assert meta.is_candset()
        assert meta.ltable is ltable

    def test_incomplete_metadata_raises(self):
        catalog = Catalog()
        table = Table({"_id": [0]})
        catalog.set_key(table, "_id")
        with pytest.raises(CatalogError, match="candidate-set"):
            catalog.get_candset_metadata(table)

    def test_copy_metadata(self):
        catalog = Catalog()
        ltable, rtable, candset = make_tables()
        catalog.set_key(ltable, "id")
        catalog.set_key(rtable, "id")
        catalog.set_candset_metadata(candset, "_id", "ltable_id", "rtable_id", ltable, rtable)
        clone = candset.copy()
        catalog.copy_metadata(candset, clone)
        assert catalog.get_candset_metadata(clone).fk_ltable == "ltable_id"

    def test_copy_metadata_requires_source(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.copy_metadata(Table({"id": [1]}), Table({"id": [1]}))


class TestSelfContainment:
    """The paper's scenario: a tool checks FK constraints before trusting them."""

    def test_fk_constraint_holds(self):
        ltable, _, candset = make_tables()
        check_fk_constraint(candset, "ltable_id", ltable, "id")

    def test_fk_constraint_dangling(self):
        ltable, _, candset = make_tables()
        # Another tool removed a tuple from A without telling the catalog.
        shrunk = ltable.select(lambda row: row["id"] != "a2")
        with pytest.raises(ForeignKeyConstraintError, match="no matching"):
            check_fk_constraint(candset, "ltable_id", shrunk, "id")

    def test_validate_candset_ok(self):
        catalog = get_catalog()
        ltable, rtable, candset = make_tables()
        catalog.set_key(ltable, "id")
        catalog.set_key(rtable, "id")
        catalog.set_candset_metadata(candset, "_id", "ltable_id", "rtable_id", ltable, rtable)
        meta = validate_candset(candset)
        assert meta.fk_rtable == "rtable_id"

    def test_validate_candset_strict_raises_on_stale(self):
        catalog = get_catalog()
        ltable, rtable, candset = make_tables()
        catalog.set_key(ltable, "id")
        catalog.set_key(rtable, "id")
        catalog.set_candset_metadata(candset, "_id", "ltable_id", "rtable_id", ltable, rtable)
        # Mutate A in place: drop a referenced row (stale metadata now).
        ltable.add_column("id", ["a1", "zzz"])
        with pytest.raises(ForeignKeyConstraintError):
            validate_candset(candset, strict=True)

    def test_validate_candset_lenient_warns(self):
        catalog = get_catalog()
        ltable, rtable, candset = make_tables()
        catalog.set_key(ltable, "id")
        catalog.set_key(rtable, "id")
        catalog.set_candset_metadata(candset, "_id", "ltable_id", "rtable_id", ltable, rtable)
        ltable.add_column("id", ["a1", "zzz"])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            validate_candset(candset, strict=False)
        assert any(issubclass(w.category, StaleMetadataWarning) for w in caught)
