"""Focused tests for Falcon's rule-selection policy knobs."""

import numpy as np

from repro.blocking.rules import BlockingRule, Predicate
from repro.falcon import evaluate_rules, select_precise_rules
from repro.features import FeatureTable, make_exact_feature, make_string_feature
from repro.text.sim.edit_based import Levenshtein


def make_rules():
    """One executable rule and one inherently non-executable rule."""
    exact = make_exact_feature("isbn_exact", "isbn", "isbn")
    edit = make_string_feature("title_lev", "title", "title", Levenshtein(), "lev_sim")
    executable = BlockingRule((Predicate(exact, "<=", 0.5),), name="exe")
    not_executable = BlockingRule((Predicate(edit, "<=", 0.5),), name="noexe")
    return FeatureTable([exact, edit]), [executable, not_executable]


def labeled_data():
    # columns: isbn_exact, title_lev; rows crafted so both rules fire on
    # exactly the non-matches.
    X = np.array(
        [
            [0.0, 0.2],  # non-match: both rules fire
            [0.0, 0.3],  # non-match
            [0.0, 0.1],  # non-match
            [1.0, 0.9],  # match: neither fires
            [1.0, 0.95],  # match
        ]
    )
    y = np.array([0, 0, 0, 1, 1])
    return X, y


class TestSelectPreciseRules:
    def test_executable_filter_on(self):
        features, rules = make_rules()
        X, y = labeled_data()
        evaluations = evaluate_rules(rules, X, y, ["isbn_exact", "title_lev"])
        kept = select_precise_rules(
            evaluations, min_precision=0.9, min_coverage=2, require_executable=True
        )
        assert [rule.name for rule in kept] == ["exe"]

    def test_executable_filter_off(self):
        features, rules = make_rules()
        X, y = labeled_data()
        evaluations = evaluate_rules(rules, X, y, ["isbn_exact", "title_lev"])
        kept = select_precise_rules(
            evaluations, min_precision=0.9, min_coverage=2, require_executable=False
        )
        assert {rule.name for rule in kept} == {"exe", "noexe"}

    def test_precision_threshold(self):
        features, rules = make_rules()
        X, y = labeled_data()
        # Mislabel a fired row as a match: rule precision drops to 2/3.
        y = y.copy()
        y[0] = 1
        evaluations = evaluate_rules(rules, X, y, ["isbn_exact", "title_lev"])
        kept = select_precise_rules(
            evaluations, min_precision=0.9, min_coverage=1, require_executable=False
        )
        assert kept == []
        kept_loose = select_precise_rules(
            evaluations, min_precision=0.5, min_coverage=1, require_executable=False
        )
        assert kept_loose

    def test_coverage_threshold(self):
        features, rules = make_rules()
        X, y = labeled_data()
        evaluations = evaluate_rules(rules, X, y, ["isbn_exact", "title_lev"])
        assert select_precise_rules(
            evaluations, min_precision=0.9, min_coverage=99
        ) == []

    def test_ranked_by_precision_then_coverage(self):
        features, rules = make_rules()
        X, y = labeled_data()
        evaluations = evaluate_rules(rules, X, y, ["isbn_exact", "title_lev"])
        kept = select_precise_rules(
            evaluations, min_precision=0.0, min_coverage=0,
            require_executable=False, max_rules=None,
        )
        precisions = []
        for rule in kept:
            evaluation = next(e for e in evaluations if e.rule is rule)
            precisions.append(evaluation.precision)
        assert precisions == sorted(precisions, reverse=True)
