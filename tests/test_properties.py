"""Property-based tests (hypothesis) on core data structures and invariants."""


import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import SimpleImputer, precision_recall_f1
from repro.simjoin import overlap_lower_bound, prefix_length, similarity, size_bounds
from repro.table import Table
from repro.text.sim import (
    Cosine,
    Dice,
    Jaccard,
    Jaro,
    JaroWinkler,
    Levenshtein,
    OverlapCoefficient,
)
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

text = st.text(alphabet="abcdef ", max_size=20)
token_sets = st.sets(st.text(alphabet="abc", min_size=1, max_size=3), max_size=8)


class TestLevenshteinProperties:
    @given(text, text)
    def test_symmetry(self, a, b):
        measure = Levenshtein()
        assert measure.get_raw_score(a, b) == measure.get_raw_score(b, a)

    @given(text, text, text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        measure = Levenshtein()
        assert measure.get_raw_score(a, c) <= (
            measure.get_raw_score(a, b) + measure.get_raw_score(b, c)
        )

    @given(text)
    def test_identity(self, a):
        assert Levenshtein().get_raw_score(a, a) == 0

    @given(text, text)
    def test_bounded_by_max_length(self, a, b):
        assert Levenshtein().get_raw_score(a, b) <= max(len(a), len(b))

    @given(text, text)
    def test_sim_score_in_unit_interval(self, a, b):
        score = Levenshtein().get_sim_score(a, b)
        assert 0.0 <= score <= 1.0


class TestJaroProperties:
    @given(text, text)
    def test_range_and_symmetry(self, a, b):
        measure = Jaro()
        score = measure.get_raw_score(a, b)
        assert 0.0 <= score <= 1.0
        assert score == measure.get_raw_score(b, a)

    @given(text, text)
    def test_winkler_at_least_jaro(self, a, b):
        assert JaroWinkler().get_raw_score(a, b) >= Jaro().get_raw_score(a, b) - 1e-12

    @given(text)
    def test_identity(self, a):
        assert Jaro().get_raw_score(a, a) == 1.0


class TestTokenMeasureProperties:
    @given(token_sets, token_sets)
    def test_unit_interval(self, a, b):
        for measure in (Jaccard(), Dice(), Cosine(), OverlapCoefficient()):
            score = measure.get_raw_score(a, b)
            assert 0.0 <= score <= 1.0

    @given(token_sets, token_sets)
    def test_symmetry(self, a, b):
        for measure in (Jaccard(), Dice(), Cosine()):
            assert measure.get_raw_score(a, b) == measure.get_raw_score(b, a)

    @given(token_sets)
    def test_identity(self, a):
        for measure in (Jaccard(), Dice(), Cosine(), OverlapCoefficient()):
            assert measure.get_raw_score(a, a) == 1.0

    @given(token_sets, token_sets)
    def test_jaccard_le_dice(self, a, b):
        assert Jaccard().get_raw_score(a, b) <= Dice().get_raw_score(a, b) + 1e-12


class TestTokenizerProperties:
    @given(st.text(max_size=30), st.integers(min_value=1, max_value=5))
    def test_qgram_padded_count(self, value, q):
        tokens = QgramTokenizer(q=q).tokenize(value)
        assert len(tokens) == max(len(value) + q - 1, 0)

    @given(st.text(max_size=30))
    def test_whitespace_roundtrip(self, value):
        tokens = WhitespaceTokenizer().tokenize(value)
        assert " ".join(tokens).split() == value.split()

    @given(st.text(max_size=30), st.integers(min_value=1, max_value=4))
    def test_return_set_is_deduped_subset(self, value, q):
        bag = QgramTokenizer(q=q).tokenize(value)
        deduped = QgramTokenizer(q=q, return_set=True).tokenize(value)
        assert len(deduped) == len(set(bag))
        assert set(deduped) == set(bag)


class TestSimjoinFilterProperties:
    measures = st.sampled_from(["jaccard", "cosine", "dice"])
    thresholds = st.floats(min_value=0.05, max_value=1.0)
    sizes = st.integers(min_value=1, max_value=50)

    @given(measures, thresholds, sizes)
    def test_size_bounds_bracket_self(self, measure, threshold, size):
        lower, upper = size_bounds(measure, threshold, size)
        assert lower <= size <= upper + 1e-9

    @given(measures, thresholds, sizes)
    def test_prefix_length_in_range(self, measure, threshold, size):
        assert 0 <= prefix_length(measure, threshold, size) <= size

    @given(measures, thresholds, token_sets, token_sets)
    @settings(max_examples=150)
    def test_overlap_bound_is_necessary(self, measure, threshold, a, b):
        """If sim(a,b) >= t then |a & b| >= overlap_lower_bound."""
        if not a or not b:
            return
        if similarity(measure, a, b) >= threshold:
            assert len(a & b) >= overlap_lower_bound(measure, threshold, len(a), len(b))


class TestMetricsProperties:
    labels = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40)

    @given(labels)
    def test_perfect_predictions(self, y):
        precision, recall, f1 = precision_recall_f1(y, y)
        if any(v == 1 for v in y):
            assert precision == recall == f1 == 1.0

    @given(labels, labels)
    @settings(max_examples=80)
    def test_f1_between_precision_and_recall(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        precision, recall, f1 = precision_recall_f1(y_true[:n], y_pred[:n])
        assert min(precision, recall) - 1e-9 <= f1 <= max(precision, recall) + 1e-9


class TestTableProperties:
    rows = st.lists(
        st.fixed_dictionaries({"a": st.integers(), "b": st.text(max_size=5)}),
        max_size=20,
    )

    @given(rows)
    def test_from_rows_roundtrip(self, rows):
        table = Table.from_rows(rows, columns=["a", "b"])
        assert table.to_rows() == [{"a": r["a"], "b": r["b"]} for r in rows]

    @given(rows, st.integers(min_value=0, max_value=25))
    def test_head_size(self, rows, n):
        table = Table.from_rows(rows, columns=["a", "b"])
        assert table.head(n).num_rows == min(n, len(rows))

    @given(rows)
    def test_select_partition(self, rows):
        table = Table.from_rows(rows, columns=["a", "b"])
        kept = table.select(lambda row: row["a"] >= 0)
        dropped = table.select(lambda row: row["a"] < 0)
        assert kept.num_rows + dropped.num_rows == table.num_rows


class TestImputerProperties:
    matrices = st.lists(
        st.lists(
            st.one_of(st.floats(allow_nan=False, allow_infinity=False,
                                min_value=-1e6, max_value=1e6),
                      st.just(float("nan"))),
            min_size=2, max_size=4,
        ).map(tuple),
        min_size=1, max_size=15,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)

    @given(matrices)
    @settings(max_examples=60)
    def test_output_has_no_nans(self, rows):
        X = np.array(rows, dtype=float)
        imputed = SimpleImputer().fit_transform(X)
        assert not np.any(np.isnan(imputed))

    @given(matrices)
    @settings(max_examples=60)
    def test_non_missing_values_unchanged(self, rows):
        X = np.array(rows, dtype=float)
        imputed = SimpleImputer().fit_transform(X)
        mask = ~np.isnan(X)
        assert np.allclose(imputed[mask], X[mask])
