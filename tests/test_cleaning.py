"""Tests for dirty-data detection and isolation."""

import pytest

from repro.cleaning import (
    clean_em_dataset,
    detect_generic_values,
    isolate_rows,
    profile_missingness,
)
from repro.datasets import build_cloudmatcher_dataset, cloudmatcher_scenario
from repro.datasets.vocab import GENERIC_ADDRESS
from repro.exceptions import ConfigurationError
from repro.table import Table


class TestProfileMissingness:
    def test_rates(self):
        table = Table({"a": [1, None, 3, None], "b": ["x", "", "y", "z"]})
        rates = profile_missingness(table)
        assert rates["a"] == 0.5
        assert rates["b"] == 0.25

    def test_empty_table(self):
        assert profile_missingness(Table({"a": []})) == {"a": 0.0}


class TestGenericValueDetection:
    def test_detects_placeholder(self):
        values = [f"unique street {i}" for i in range(90)] + ["PLACEHOLDER"] * 10
        table = Table({"addr": values})
        result = detect_generic_values(table, "addr", distinctiveness=0.02)
        assert result.generic_values == ["PLACEHOLDER"]
        assert result.affected_rows == 10

    def test_clean_column_passes(self):
        table = Table({"addr": [f"street {i}" for i in range(50)]})
        result = detect_generic_values(table, "addr")
        assert result.generic_values == []

    def test_missing_values_ignored(self):
        table = Table({"addr": [None] * 50 + ["x"]})
        result = detect_generic_values(table, "addr", distinctiveness=0.02)
        assert result.generic_values == []

    def test_multiple_generics_ranked_by_count(self):
        values = ["A"] * 30 + ["B"] * 20 + [f"u{i}" for i in range(50)]
        result = detect_generic_values(Table({"c": values}), "c", distinctiveness=0.05)
        assert result.generic_values == ["A", "B"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            detect_generic_values(Table({"c": ["x"]}), "c", distinctiveness=0.0)


class TestIsolation:
    def test_split(self):
        table = Table({"id": [1, 2, 3], "v": ["bad", "ok", "bad"]})
        clean, dirty = isolate_rows(table, "v", ["bad"])
        assert clean.column("id") == [2]
        assert dirty.column("id") == [1, 3]


class TestCleanEmDataset:
    def test_vendors_story(self):
        """The Brazilian-vendors fix, automated: detect the generic
        address, quarantine its rows, gold shrinks but survives."""
        dataset = build_cloudmatcher_dataset(cloudmatcher_scenario("vendors"))
        cleaned, reports = clean_em_dataset(dataset, "address", distinctiveness=0.01)
        assert any(GENERIC_ADDRESS in r.generic_values for r in reports)
        assert cleaned.ltable.num_rows < dataset.ltable.num_rows
        assert cleaned.gold_pairs < dataset.gold_pairs
        assert len(cleaned.gold_pairs) > 0
        assert GENERIC_ADDRESS not in cleaned.ltable.unique_values("address")
