"""Tests for blocking rules: predicates, parsing, and join execution."""

import math

import pytest

from repro.blocking import (
    BlockingRule,
    Predicate,
    RuleBasedBlocker,
    execute_rule_survivors,
    execute_rules,
    parse_predicate,
    parse_rule,
)
from repro.exceptions import ConfigurationError, WorkflowError
from repro.features import get_features_for_blocking, get_features_for_matching
from repro.table import Table


@pytest.fixture
def name_tables():
    table_a = Table(
        {
            "id": ["a1", "a2", "a3"],
            "name": ["dave smith", "joe wilson", "dan smith"],
            "age": [40, 30, 35],
        }
    )
    table_b = Table(
        {
            "id": ["b1", "b2"],
            "name": ["dave smith", "daniel smith"],
            "age": [40, 36],
        }
    )
    return table_a, table_b


class TestPredicate:
    def test_ops(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        feature = features.get("name_jaccard_ws")
        assert Predicate(feature, ">=", 0.5).holds_value(0.5)
        assert not Predicate(feature, ">", 0.5).holds_value(0.5)
        assert Predicate(feature, "<=", 0.5).holds_value(0.5)
        assert not Predicate(feature, "<", 0.5).holds_value(0.5)

    def test_nan_satisfies_nothing(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        feature = features.get("name_jaccard_ws")
        for op in ("<=", "<", ">=", ">"):
            assert not Predicate(feature, op, 0.5).holds_value(math.nan)

    def test_invalid_op(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        with pytest.raises(ConfigurationError):
            Predicate(features.get("name_jaccard_ws"), "==", 0.5)

    def test_complement_flips(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        predicate = Predicate(features.get("name_jaccard_ws"), "<=", 0.4)
        assert predicate.complement().op == ">"
        assert predicate.complement().complement().op == "<="

    def test_join_executability(self, name_tables):
        table_a, table_b = name_tables
        blocking = get_features_for_blocking(table_a, table_b)
        matching = get_features_for_matching(table_a, table_b)
        token = Predicate(blocking.get("name_jaccard_ws"), ">=", 0.4)
        assert token.is_join_executable
        below = Predicate(blocking.get("name_jaccard_ws"), "<=", 0.4)
        assert not below.is_join_executable
        edit = Predicate(matching.get("name_lev_sim"), ">=", 0.4)
        assert not edit.is_join_executable  # edit-based feature


class TestRuleParsing:
    def test_parse_predicate(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        predicate = parse_predicate("name_jaccard_ws < 0.4", features)
        assert predicate.op == "<"
        assert predicate.threshold == 0.4

    def test_parse_rule_conjunction(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        rule = parse_rule(
            ["name_jaccard_ws <= 0.4", "name_exact <= 0.5"], features, name="r1"
        )
        assert len(rule.predicates) == 2
        assert "r1" in str(rule)

    def test_parse_errors(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        with pytest.raises(ConfigurationError):
            parse_predicate("name_jaccard_ws <", features)
        with pytest.raises(ConfigurationError):
            parse_predicate("no_such_feature < 0.4", features)
        with pytest.raises(ConfigurationError):
            parse_predicate("name_jaccard_ws < abc", features)

    def test_empty_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockingRule(())


class TestRuleSemantics:
    def test_drops_low_similarity(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        rule = parse_rule("name_jaccard_ws <= 0.3", features)
        a_rows = {row["id"]: row for row in table_a.rows()}
        b_rows = {row["id"]: row for row in table_b.rows()}
        assert rule.drops(a_rows["a2"], b_rows["b1"])  # joe wilson vs dave smith
        assert not rule.drops(a_rows["a1"], b_rows["b1"])  # identical names

    def test_executable_flag(self, name_tables):
        features = get_features_for_blocking(*name_tables)
        executable = parse_rule("name_jaccard_ws <= 0.4", features)
        assert executable.is_executable
        not_executable = parse_rule("name_jaccard_ws > 0.4", features)
        assert not not_executable.is_executable


class TestRuleExecution:
    def test_survivors_match_pairwise(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        rule = parse_rule("name_jaccard_ws <= 0.3", features)
        survivors = execute_rule_survivors(rule, table_a, table_b, "id", "id")
        expected = {
            (l_row["id"], r_row["id"])
            for l_row in table_a.rows()
            for r_row in table_b.rows()
            if not rule.drops(l_row, r_row)
        }
        assert survivors == expected

    def test_conjunction_survivors_are_union_of_complements(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        rule = parse_rule(
            ["name_jaccard_ws <= 0.3", "name_exact <= 0.5"], features
        )
        survivors = execute_rule_survivors(rule, table_a, table_b, "id", "id")
        expected = {
            (l_row["id"], r_row["id"])
            for l_row in table_a.rows()
            for r_row in table_b.rows()
            if not rule.drops(l_row, r_row)
        }
        assert survivors == expected

    def test_multiple_rules_intersect(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        rule1 = parse_rule("name_jaccard_ws <= 0.3", features)
        rule2 = parse_rule("name_jaccard_qgm3 <= 0.2", features)
        combined = execute_rules([rule1, rule2], table_a, table_b, "id", "id")
        s1 = execute_rule_survivors(rule1, table_a, table_b, "id", "id")
        s2 = execute_rule_survivors(rule2, table_a, table_b, "id", "id")
        assert combined == s1 & s2

    def test_exact_predicate_execution(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        rule = parse_rule("name_exact <= 0.5", features)
        survivors = execute_rule_survivors(rule, table_a, table_b, "id", "id")
        assert survivors == {("a1", "b1")}  # only exactly-equal names survive

    def test_non_executable_rule_raises(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        rule = parse_rule("name_jaccard_ws > 0.4", features)
        with pytest.raises(WorkflowError):
            execute_rule_survivors(rule, table_a, table_b, "id", "id")

    def test_no_rules_raises(self, name_tables):
        with pytest.raises(WorkflowError):
            execute_rules([], *name_tables, "id", "id")


class TestRuleBasedBlocker:
    def test_join_path_used_when_executable(self, name_tables):
        table_a, table_b = name_tables
        features = get_features_for_blocking(table_a, table_b)
        blocker = RuleBasedBlocker()
        blocker.add_rule("name_jaccard_ws <= 0.3", features)
        assert blocker.is_join_executable
        candset = blocker.block_tables(table_a, table_b, "id", "id")
        expected = {
            (l_row["id"], r_row["id"])
            for l_row in table_a.rows()
            for r_row in table_b.rows()
            if not blocker.block_tuples(l_row, r_row)
        }
        assert set(zip(candset["ltable_id"], candset["rtable_id"])) == expected

    def test_pairwise_fallback(self, name_tables):
        table_a, table_b = name_tables
        matching = get_features_for_matching(table_a, table_b)
        blocker = RuleBasedBlocker()
        blocker.add_rule("name_lev_sim <= 0.3", matching)  # edit-based: no join
        assert not blocker.is_join_executable
        candset = blocker.block_tables(table_a, table_b, "id", "id")
        assert candset.num_rows > 0

    def test_no_rules_raises(self, name_tables):
        with pytest.raises(ConfigurationError):
            RuleBasedBlocker().block_tables(*name_tables, "id", "id")
