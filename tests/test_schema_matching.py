"""Tests for the schema-matching extension."""

import pytest

from repro.exceptions import ConfigurationError
from repro.features import get_features_for_matching
from repro.schema_matching import (
    match_schemas,
    name_similarity,
    suggest_attr_corres,
    types_compatible,
    value_similarity,
)
from repro.table import Table
from repro.table.schema import ColumnType


@pytest.fixture
def renamed_tables():
    ltable = Table(
        {
            "id": [1, 2, 3],
            "full_name": ["Dave Smith", "Ann Lee", "Bob Ray"],
            "home_city": ["Madison", "Austin", "Tampa"],
            "age": [40, 31, 25],
        }
    )
    rtable = Table(
        {
            "id": [10, 20],
            "name": ["Dave Smith", "Ann Lee"],
            "city": ["Madison", "Austin"],
            "years": [40, 31],
        }
    )
    return ltable, rtable


class TestSimilarities:
    def test_name_similarity_normalizes(self):
        assert name_similarity("home_city", "HomeCity") == pytest.approx(1.0)
        assert name_similarity("full_name", "name") > 0.5

    def test_value_similarity(self, renamed_tables):
        ltable, rtable = renamed_tables
        high = value_similarity(ltable, "home_city", rtable, "city")
        low = value_similarity(ltable, "home_city", rtable, "name")
        assert high > low

    def test_value_similarity_empty(self):
        t = Table({"c": [None, None]})
        assert value_similarity(t, "c", t, "c") == 0.0

    def test_types_compatible(self):
        assert types_compatible(ColumnType.NUMERIC, ColumnType.BOOLEAN)
        assert not types_compatible(ColumnType.NUMERIC, ColumnType.MEDIUM_STRING)
        assert types_compatible(ColumnType.UNKNOWN, ColumnType.NUMERIC)
        assert types_compatible(ColumnType.SHORT_STRING, ColumnType.LONG_STRING)


class TestMatchSchemas:
    def test_finds_renamed_correspondences(self, renamed_tables):
        corres = suggest_attr_corres(*renamed_tables, threshold=0.4)
        as_dict = dict(corres)
        assert as_dict["full_name"] == "name"
        assert as_dict["home_city"] == "city"

    def test_one_to_one(self, renamed_tables):
        result = match_schemas(*renamed_tables, threshold=0.1)
        lefts = [c.l_column for c in result]
        rights = [c.r_column for c in result]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_type_conflicts_blocked(self, renamed_tables):
        result = match_schemas(*renamed_tables, threshold=0.0)
        for c in result:
            assert not (c.l_column == "age" and c.r_column in ("name", "city"))

    def test_scores_sorted(self, renamed_tables):
        result = match_schemas(*renamed_tables, threshold=0.1)
        scores = [c.score for c in result]
        assert scores == sorted(scores, reverse=True)

    def test_weight_validation(self, renamed_tables):
        with pytest.raises(ConfigurationError):
            match_schemas(*renamed_tables, name_weight=1.5)

    def test_feeds_feature_generation(self, renamed_tables):
        """The integration the extension exists for."""
        ltable, rtable = renamed_tables
        corres = suggest_attr_corres(ltable, rtable, threshold=0.4)
        features = get_features_for_matching(ltable, rtable, attr_corres=corres)
        assert len(features) > 0
        assert any("full_name" in name for name in features.names())
