"""Test the generate_report cloud service end to end."""

from repro.cloud import DEFAULT_REGISTRY, WorkflowContext
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession, OracleLabeler


def test_generate_report_after_falcon():
    dataset = make_em_dataset(
        restaurant, 120, 120, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=71, name="report-task",
    )
    context = WorkflowContext(
        dataset=dataset,
        session=LabelingSession(OracleLabeler(dataset.gold_pairs), budget=400),
        config=FalconConfig(sample_size=300, blocking_budget=80,
                            matching_budget=120, random_state=0),
        task_name="report-task",
    )
    DEFAULT_REGISTRY.get("falcon").run(context)
    DEFAULT_REGISTRY.get("compute_accuracy").run(context)
    DEFAULT_REGISTRY.get("generate_report").run(context)
    report = context.get("report")
    assert report.startswith("# EM run report: report-task")
    assert "## Blocking" in report
    assert "## Accuracy" in report
    assert "questions asked:" in report


def test_generate_report_profile_only():
    dataset = make_em_dataset(restaurant, 50, 50, seed=72, name="profile-only")
    context = WorkflowContext(
        dataset=dataset,
        session=LabelingSession(OracleLabeler(dataset.gold_pairs)),
        task_name="profile-only",
    )
    DEFAULT_REGISTRY.get("generate_report").run(context)
    report = context.get("report")
    assert "## Profile: table A" in report
    assert "## Blocking" not in report
    assert "## Accuracy" not in report
