"""Shared fixtures: catalog isolation and small canonical datasets."""

from __future__ import annotations

import os

import pytest

from repro.catalog import reset_catalog
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import person, restaurant
from repro.table import Table


@pytest.fixture(autouse=True)
def _clean_catalog():
    """Every test starts and ends with an empty global catalog."""
    reset_catalog()
    yield
    reset_catalog()


def pytest_sessionfinish(session, exitstatus):
    """Archive the run's accumulated metrics when asked to.

    With ``REPRO_METRICS_PATH`` set, the process-default registry — which
    every instrumented code path under test wrote to — is exported there
    as JSONL (plus Prometheus text at ``<path>.prom``); CI uploads it as
    a build artifact.
    """
    path = os.environ.get("REPRO_METRICS_PATH")
    if not path:
        return
    from repro.obs import get_registry, write_metrics_jsonl, write_prometheus_text

    registry = get_registry()
    write_metrics_jsonl(registry, path)
    write_prometheus_text(registry, f"{path}.prom")


@pytest.fixture
def figure1_tables():
    """The paper's Figure 1 example: two person tables, two matches."""
    table_a = Table(
        {
            "id": ["a1", "a2", "a3"],
            "name": ["Dave Smith", "Joe Wilson", "Dan Smith"],
            "city": ["Madison", "San Jose", "Middleton"],
            "state": ["WI", "CA", "WI"],
        }
    )
    table_b = Table(
        {
            "id": ["b1", "b2"],
            "name": ["David D. Smith", "Daniel W. Smith"],
            "city": ["Madison", "Middleton"],
            "state": ["WI", "WI"],
        }
    )
    gold = {("a1", "b1"), ("a3", "b2")}
    return table_a, table_b, gold


@pytest.fixture
def small_person_dataset():
    """A 120x120 clean-ish person dataset with gold matches."""
    return make_em_dataset(
        person, 120, 120, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=42, name="people-small",
    )


@pytest.fixture
def restaurant_dataset():
    """A 200x200 moderately dirty restaurant dataset."""
    return make_em_dataset(
        restaurant, 200, 200, match_fraction=0.5,
        dirtiness=DirtinessConfig.moderate(), seed=7, name="restaurants-small",
    )
