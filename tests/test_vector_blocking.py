"""Tests for the vector blocking backend: embeddings, ANN index, blocker."""

import pickle

import pytest

from repro.blocking import OverlapBlocker, VectorBlocker, candset_pairs
from repro.catalog import get_catalog
from repro.exceptions import ConfigurationError
from repro.index import AnnIndex, IndexStore, set_index_store, use_index_store
from repro.table import Table
from repro.text.vectorize import (
    HashedNgramVectorizer,
    apply_idf,
    cosine,
    idf_weights,
    l2_normalize,
    sparse_dot,
    stable_bucket,
)


def pairs_of(candset):
    return set(candset_pairs(candset))


@pytest.fixture
def dirty_tables():
    """Small tables whose matches share few surface tokens (typos)."""
    ltable = Table(
        {
            "id": [1, 2, 3, 4],
            "name": ["dave smith", "john doe", "wisconsin madison", None],
        }
    )
    rtable = Table(
        {
            "id": [10, 20, 30, 40],
            "name": ["dvae smith", "jon doe", "texas austin", None],
        }
    )
    return ltable, rtable


class TestVectorize:
    def test_stable_bucket_deterministic_and_bounded(self):
        assert stable_bucket("abc", 128) == stable_bucket("abc", 128)
        assert all(0 <= stable_bucket(t, 7) < 7 for t in ("a", "bc", "def"))

    def test_embed_counts_grams(self):
        vectorizer = HashedNgramVectorizer(q=2, dim=1024, padding=False)
        vector = vectorizer.embed("aaa")  # grams: aa, aa
        assert list(vector.values()) == [2.0]

    def test_lowercase(self):
        vectorizer = HashedNgramVectorizer(q=3, dim=1024)
        assert vectorizer.embed("ABC") == vectorizer.embed("abc")

    def test_normalized_unit_norm(self):
        vectorizer = HashedNgramVectorizer(q=3, dim=1024)
        vector = vectorizer.embed_normalized("wisconsin")
        assert sum(w * w for w in vector.values()) == pytest.approx(1.0)
        assert vectorizer.embed_normalized("") == {}

    def test_cosine_kernels(self):
        a = l2_normalize({1: 1.0, 2: 1.0})
        b = l2_normalize({2: 1.0, 3: 1.0})
        assert cosine(a, a) == pytest.approx(1.0)
        assert cosine(a, b) == pytest.approx(0.5)
        assert sparse_dot(a, {}) == 0.0

    def test_idf_downweights_common_buckets(self):
        corpus = [{1: 1.0, 2: 1.0}, {1: 1.0}, {1: 1.0, 3: 1.0}]
        idf = idf_weights(corpus)
        assert idf[1] < idf[2] == idf[3]
        weighted = apply_idf({1: 2.0, 9: 1.0}, idf)
        assert weighted[9] == 1.0  # unknown buckets keep weight 1.0
        assert weighted[1] == pytest.approx(2.0 * idf[1])

    def test_spec_identity(self):
        a = HashedNgramVectorizer(q=3, dim=64)
        b = HashedNgramVectorizer(q=3, dim=64)
        c = HashedNgramVectorizer(q=4, dim=64)
        assert a.spec() == b.spec()
        assert a.spec() != c.spec()

    def test_pickle_roundtrip(self):
        vectorizer = HashedNgramVectorizer(q=2, dim=512)
        clone = pickle.loads(pickle.dumps(vectorizer))
        assert clone.embed("dave") == vectorizer.embed("dave")
        assert clone.spec() == vectorizer.spec()

    def test_bad_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            HashedNgramVectorizer(dim=0)


class TestAnnIndex:
    def _records(self, values, vectorizer=None):
        vectorizer = vectorizer or HashedNgramVectorizer(q=3, dim=4096)
        return [
            (i, vectorizer.embed_normalized(value))
            for i, value in enumerate(values)
        ]

    def test_self_probe_finds_self(self):
        records = self._records(["dave smith", "john doe", "madison"])
        index = AnnIndex("k", records, n_bands=8, band_bits=4)
        for position, (_, vector) in enumerate(records):
            assert position in index.probe(vector)

    def test_empty_vectors_never_candidates(self):
        records = self._records(["dave", ""])
        index = AnnIndex("k", records, n_bands=8, band_bits=4)
        assert index.probe({}) == []
        assert 1 not in index.probe(records[0][1])

    def test_search_scores_and_truncates(self):
        records = self._records(["dave smith", "dave smyth", "zzzz qqqq"])
        index = AnnIndex("k", records, n_bands=16, band_bits=2)
        results = index.search(records[0][1], threshold=0.1, top_k=2)
        assert [position for position, _ in results][0] == 0
        assert len(results) <= 2
        assert all(score >= 0.1 for _, score in results)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_pickle_roundtrip_probe_identical(self):
        records = self._records(["dave smith", "dave smyth", "john doe"])
        index = AnnIndex("k", records, n_bands=16, band_bits=4, seed=3)
        clone = pickle.loads(pickle.dumps(index))
        for _, vector in records:
            assert clone.probe(vector) == index.probe(vector)
            assert clone.signature(vector) == index.signature(vector)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AnnIndex("k", [], n_bands=0, band_bits=4)


class TestVectorBlockerConfig:
    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            VectorBlocker("name", threshold=0.0)
        with pytest.raises(ConfigurationError):
            VectorBlocker("name", threshold=1.5)

    def test_top_k_validated(self):
        with pytest.raises(ConfigurationError):
            VectorBlocker("name", top_k=0)

    def test_band_config_validated(self):
        with pytest.raises(ConfigurationError):
            VectorBlocker("name", n_bands=0)

    def test_commutative_iff_no_top_k(self):
        assert VectorBlocker("name").commutative is True
        assert VectorBlocker("name", top_k=5).commutative is False

    def test_filter_operator_honours_instance_commutativity(self):
        assert VectorBlocker("name").as_filter_operator().commutes
        assert not VectorBlocker("name", top_k=5).as_filter_operator().commutes


class TestVectorBlockerBlocking:
    def test_finds_typo_matches(self, dirty_tables):
        ltable, rtable = dirty_tables
        with use_index_store():
            candset = VectorBlocker("name", threshold=0.2).block_tables(
                ltable, rtable, "id", "id"
            )
        result = pairs_of(candset)
        assert {(1, 10), (2, 20)} <= result
        assert (3, 30) not in result  # dissimilar strings stay blocked

    def test_missing_values_never_match(self, dirty_tables):
        ltable, rtable = dirty_tables
        with use_index_store():
            candset = VectorBlocker("name", threshold=0.1).block_tables(
                ltable, rtable, "id", "id"
            )
        for l_id, r_id in pairs_of(candset):
            assert l_id != 4 and r_id != 40

    def test_subset_of_exact_threshold_join(self, dirty_tables):
        """ANN retrieval is approximate: a subset of the exact join."""
        ltable, rtable = dirty_tables
        blocker = VectorBlocker("name", threshold=0.2, idf=False)
        with use_index_store():
            candset = blocker.block_tables(ltable, rtable, "id", "id")
        exact = {
            (l_row["id"], r_row["id"])
            for l_row in ltable.rows()
            for r_row in rtable.rows()
            if not l_row["name"] is None and not r_row["name"] is None
            and not blocker.block_tuples(l_row, r_row)
        }
        assert pairs_of(candset) <= exact

    def test_top_k_budget_respected(self, dirty_tables):
        ltable, rtable = dirty_tables
        with use_index_store():
            candset = VectorBlocker(
                "name", threshold=0.01, top_k=1, n_bands=32, band_bits=2
            ).block_tables(ltable, rtable, "id", "id")
        counts: dict = {}
        for l_id, _ in candset_pairs(candset):
            counts[l_id] = counts.get(l_id, 0) + 1
        assert counts and all(count <= 1 for count in counts.values())

    def test_block_tuples_requires_idf_free(self, dirty_tables):
        ltable, rtable = dirty_tables
        blocker = VectorBlocker("name")  # idf=True default
        with pytest.raises(NotImplementedError):
            blocker.block_tuples(
                next(ltable.rows()), next(rtable.rows())
            )

    def test_block_candset_filters_exactly(self, dirty_tables):
        ltable, rtable = dirty_tables
        with use_index_store():
            base = OverlapBlocker("name", overlap_size=1).block_tables(
                ltable, rtable, "id", "id"
            )
            filtered = VectorBlocker("name", threshold=0.2).block_candset(base)
        assert pairs_of(filtered) <= pairs_of(base)
        assert (2, 20) in pairs_of(filtered)
        meta = get_catalog().get_candset_metadata(filtered)
        assert meta.ltable is ltable

    def test_block_candset_top_k(self, dirty_tables):
        ltable, rtable = dirty_tables
        with use_index_store():
            base = OverlapBlocker("name", overlap_size=1).block_tables(
                ltable, rtable, "id", "id"
            )
            filtered = VectorBlocker(
                "name", threshold=0.01, top_k=1
            ).block_candset(base)
        counts: dict = {}
        for l_id, _ in candset_pairs(filtered):
            counts[l_id] = counts.get(l_id, 0) + 1
        assert all(count <= 1 for count in counts.values())

    def test_output_attrs_copied(self, dirty_tables):
        ltable, rtable = dirty_tables
        with use_index_store():
            candset = VectorBlocker("name", threshold=0.2).block_tables(
                ltable, rtable, "id", "id",
                l_output_attrs=["name"], r_output_attrs=["name"],
            )
        assert "ltable_name" in candset.columns
        assert "rtable_name" in candset.columns


class TestVectorArtifacts:
    def test_artifact_chain_cached(self, dirty_tables):
        ltable, rtable = dirty_tables
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as registry:
            with use_index_store():
                blocker = VectorBlocker("name", threshold=0.2)
                blocker.block_tables(ltable, rtable, "id", "id")
                blocker.block_tables(ltable, rtable, "id", "id")
            builds = {
                dict(labels)["kind"]: value
                for (name, labels), value in registry.counters().items()
                if name == "index_builds_total"
            }
        assert builds.get("vectors") == 2  # one per side, built once each
        assert builds.get("vecpair") == 1
        assert builds.get("ann") == 1

    def test_warm_reload_byte_identity(self, dirty_tables, tmp_path):
        """Cold build == disk-tier reload, pair-for-pair and probe-for-probe."""
        ltable, rtable = dirty_tables
        blocker = VectorBlocker("name", threshold=0.2, n_bands=32)

        def run(store):
            previous = set_index_store(store)
            try:
                candset = blocker.block_tables(ltable, rtable, "id", "id")
                left = store.hashed_column(ltable, "id", "name", blocker._vectorizer)
                right = store.hashed_column(rtable, "id", "name", blocker._vectorizer)
                pair = store.vector_pair(left, right, idf=True)
                ann = store.ann_index(pair, n_bands=32)
                probes = [ann.probe(vector) for _, vector in pair.left]
                return candset_pairs(candset), probes, ann
            finally:
                set_index_store(previous)

        cold_pairs, cold_probes, cold_ann = run(IndexStore(cache_dir=tmp_path))
        warm_store = IndexStore(cache_dir=tmp_path)
        warm_pairs, warm_probes, warm_ann = run(warm_store)
        assert warm_pairs == cold_pairs
        assert warm_probes == cold_probes
        assert warm_ann.buckets == cold_ann.buckets
        assert warm_ann.keys == cold_ann.keys
        # The warm run reused the persisted artifacts instead of rebuilding.
        kinds = {row["kind"] for row in warm_store.disk_artifacts()}
        assert {"vectors", "vecpair", "ann"} <= kinds

    def test_vector_blocker_probe_metrics(self, dirty_tables):
        ltable, rtable = dirty_tables
        from repro.obs import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as registry:
            with use_index_store():
                VectorBlocker("name", threshold=0.2).block_tables(
                    ltable, rtable, "id", "id"
                )
            totals = {
                name: value
                for (name, _), value in registry.counters().items()
            }
            # Only rows with a non-missing blocking value are probed.
            assert totals.get("index_ann_probes_total") == 3
            assert totals.get("index_ann_candidates_total", 0) >= 2
            assert registry.histogram("index_ann_probe_seconds").count == 1
