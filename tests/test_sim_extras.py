"""Tests for the additional similarity measures (BagDistance, Editex,
Ratcliff-Obershelp)."""

import difflib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.sim import BagDistance, Editex, Levenshtein, RatcliffObershelp

text = st.text(alphabet="abcde ", max_size=15)


class TestBagDistance:
    @pytest.mark.parametrize(
        "left,right,distance",
        [
            ("cesar", "caesar", 1),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("aabb", "ab", 2),
        ],
    )
    def test_known_values(self, left, right, distance):
        assert BagDistance().get_raw_score(left, right) == distance

    @given(text, text)
    @settings(max_examples=100)
    def test_lower_bounds_levenshtein(self, left, right):
        """The defining property: bag distance <= edit distance."""
        assert BagDistance().get_raw_score(left, right) <= Levenshtein().get_raw_score(
            left, right
        )

    @given(text, text)
    def test_symmetry_and_range(self, left, right):
        measure = BagDistance()
        assert measure.get_raw_score(left, right) == measure.get_raw_score(right, left)
        assert 0.0 <= measure.get_sim_score(left, right) <= 1.0

    def test_sim_empty(self):
        assert BagDistance().get_sim_score("", "") == 1.0


class TestEditex:
    def test_identity(self):
        assert Editex().get_raw_score("cat", "cat") == 0

    def test_phonetic_substitution_cheaper(self):
        # c and k share a phonetic group; c and d do not.
        editex = Editex()
        assert editex.get_raw_score("cat", "kat") < editex.get_raw_score("cat", "dat")

    def test_case_insensitive(self):
        assert Editex().get_raw_score("CAT", "cat") == 0

    def test_empty(self):
        assert Editex().get_raw_score("", "abc") == 6
        assert Editex().get_raw_score("abc", "") == 6
        assert Editex().get_raw_score("", "") == 0

    def test_sim_score_range(self):
        assert Editex().get_sim_score("", "") == 1.0
        assert 0.0 <= Editex().get_sim_score("cat", "dog") <= 1.0

    @given(text, text)
    @settings(max_examples=60)
    def test_symmetric(self, left, right):
        assert Editex().get_raw_score(left, right) == Editex().get_raw_score(
            right, left
        )

    def test_phonetically_close_names(self):
        editex = Editex()
        assert editex.get_sim_score("nikolas", "nicolas") > editex.get_sim_score(
            "nikolas", "norbert"
        )


class TestRatcliffObershelp:
    @given(text, text)
    @settings(max_examples=100)
    def test_agrees_with_difflib(self, left, right):
        ours = RatcliffObershelp().get_raw_score(left, right)
        reference = difflib.SequenceMatcher(None, left, right).ratio()
        # difflib uses junk heuristics only for long inputs; on short
        # strings the two implementations agree to float precision.
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_identity_and_disjoint(self):
        measure = RatcliffObershelp()
        assert measure.get_raw_score("abc", "abc") == 1.0
        assert measure.get_raw_score("abc", "xyz") == 0.0
        assert measure.get_raw_score("", "") == 1.0
