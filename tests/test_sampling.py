"""Tests for down-sampling and candidate-set sampling."""

import pytest

from repro.blocking import OverlapBlocker
from repro.exceptions import ConfigurationError
from repro.sampling import (
    down_sample,
    naive_down_sample,
    sample_candset,
    weighted_sample_candset,
)


def surviving_matches(dataset, l_sample, r_sample):
    l_ids = set(l_sample.column("id"))
    r_ids = set(r_sample.column("id"))
    return {(a, b) for a, b in dataset.gold_pairs if a in l_ids and b in r_ids}


class TestDownSample:
    def test_sizes(self, small_person_dataset):
        ds = small_person_dataset
        l_sample, r_sample = down_sample(ds.ltable, ds.rtable, 40, seed=0)
        assert r_sample.num_rows == 40
        assert l_sample.num_rows <= ds.ltable.num_rows

    def test_preserves_more_matches_than_naive(self, small_person_dataset):
        """The headline claim: intelligent sampling keeps matching pairs."""
        ds = small_person_dataset
        size = 40
        smart_l, smart_r = down_sample(ds.ltable, ds.rtable, size, seed=1)
        naive_l, naive_r = naive_down_sample(ds.ltable, ds.rtable, size, seed=1)
        smart = len(surviving_matches(ds, smart_l, smart_r))
        naive = len(surviving_matches(ds, naive_l, naive_r))
        assert smart > naive

    def test_deterministic(self, small_person_dataset):
        ds = small_person_dataset
        a = down_sample(ds.ltable, ds.rtable, 30, seed=5)
        b = down_sample(ds.ltable, ds.rtable, 30, seed=5)
        assert a[0] == b[0]
        assert a[1] == b[1]

    def test_size_larger_than_table(self, small_person_dataset):
        ds = small_person_dataset
        l_sample, r_sample = down_sample(ds.ltable, ds.rtable, 10_000, seed=0)
        assert r_sample.num_rows == ds.rtable.num_rows

    def test_invalid_params(self, small_person_dataset):
        ds = small_person_dataset
        with pytest.raises(ConfigurationError):
            down_sample(ds.ltable, ds.rtable, 0)
        with pytest.raises(ConfigurationError):
            down_sample(ds.ltable, ds.rtable, 10, y_param=0)

    def test_y_param_pulls_more_left_rows(self, small_person_dataset):
        ds = small_person_dataset
        few_l, _ = down_sample(ds.ltable, ds.rtable, 15, y_param=1, seed=2)
        # y_param only probes more; sample size still caps the result
        many_l, _ = down_sample(ds.ltable, ds.rtable, 15, y_param=3, seed=2)
        assert many_l.num_rows <= ds.ltable.num_rows
        assert few_l.num_rows <= ds.ltable.num_rows


class TestCandsetSampling:
    def _candset(self, dataset):
        blocker = OverlapBlocker("name", overlap_size=1)
        return blocker.block_tables(dataset.ltable, dataset.rtable, "id", "id")

    def test_sample_candset(self, small_person_dataset):
        candset = self._candset(small_person_dataset)
        sample = sample_candset(candset, 20, seed=0)
        assert sample.num_rows == 20

    def test_weighted_sample_finds_matches(self, small_person_dataset):
        ds = small_person_dataset
        candset = self._candset(ds)
        n = min(100, candset.num_rows - 1)
        weighted = weighted_sample_candset(candset, n, seed=0)
        uniform = sample_candset(candset, n, seed=0)

        def matches_in(sample):
            pairs = set(zip(sample.column("ltable_id"), sample.column("rtable_id")))
            return len(pairs & ds.gold_pairs)

        assert matches_in(weighted) >= matches_in(uniform)
        assert matches_in(weighted) > 0

    def test_weighted_sample_returns_all_when_small(self, small_person_dataset):
        candset = self._candset(small_person_dataset)
        sample = weighted_sample_candset(candset, candset.num_rows + 10, seed=0)
        assert sample.num_rows == candset.num_rows

    def test_weighted_sample_registered_in_catalog(self, small_person_dataset):
        from repro.catalog import get_catalog

        candset = self._candset(small_person_dataset)
        sample = weighted_sample_candset(candset, 10, seed=0)
        meta = get_catalog().get_candset_metadata(sample)
        assert meta.ltable is small_person_dataset.ltable
