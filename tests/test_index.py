"""Tests for the IndexStore: fingerprints, invalidation, reuse, persistence."""

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import OverlapBlocker, make_candset
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.index import (
    IndexStore,
    column_fingerprint,
    combine,
    get_index_store,
    set_index_store,
    tokenizer_fingerprint,
    use_index_store,
)
from repro.obs import use_registry
from repro.simjoin import edit_distance_join, set_sim_join
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer


def make_tables(n: int = 60, seed: int = 0) -> tuple[Table, Table]:
    rng = random.Random(seed)
    first = ["dave", "dan", "joe", "mary", "ann", "sue"]
    last = ["smith", "wilson", "jones", "miller"]

    def name() -> str:
        return f"{rng.choice(first)} {rng.choice(last)}"

    ltable = Table({"id": [f"a{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    rtable = Table({"id": [f"b{i}" for i in range(n)], "v": [name() for _ in range(n)]})
    return ltable, rtable


def columns_of(table: Table) -> list[list]:
    return [table.column(name) for name in table.columns]


def counter_total(registry, name: str, **labels) -> float:
    want = tuple(sorted(labels.items()))
    return sum(
        value
        for (metric, label_set), value in registry.counters().items()
        if metric == name and all(item in label_set for item in want)
    )


def jaccard_join(ltable: Table, rtable: Table, n_jobs: int = 1) -> Table:
    return set_sim_join(
        ltable, rtable, "id", "id", "v", "v",
        WhitespaceTokenizer(return_set=True), "jaccard", 0.4, n_jobs=n_jobs,
    )


class TestFingerprints:
    def test_content_only_identity(self):
        # Same content under different column names -> same fingerprint:
        # this is what lets blockers' projected views hit join artifacts.
        a = Table({"id": [1, 2], "name": ["x", "y"]})
        b = Table({"pk": [1, 2], "name_blk": ["x", "y"]})
        assert column_fingerprint(a, "id", "name") == column_fingerprint(b, "pk", "name_blk")

    def test_value_change_changes_fingerprint(self):
        a = Table({"id": [1, 2], "v": ["x", "y"]})
        b = Table({"id": [1, 2], "v": ["x", "z"]})
        assert column_fingerprint(a, "id", "v") != column_fingerprint(b, "id", "v")

    def test_key_change_changes_fingerprint(self):
        a = Table({"id": [1, 2], "v": ["x", "y"]})
        b = Table({"id": [1, 3], "v": ["x", "y"]})
        assert column_fingerprint(a, "id", "v") != column_fingerprint(b, "id", "v")

    def test_type_sensitive(self):
        a = Table({"id": [1], "v": ["1"]})
        b = Table({"id": [1], "v": [1]})
        assert column_fingerprint(a, "id", "v") != column_fingerprint(b, "id", "v")

    def test_tokenizer_fingerprint_captures_params(self):
        assert tokenizer_fingerprint(QgramTokenizer(q=2)) != tokenizer_fingerprint(
            QgramTokenizer(q=3)
        )
        assert tokenizer_fingerprint(QgramTokenizer(q=3)) != tokenizer_fingerprint(
            QgramTokenizer(q=3, return_set=True)
        )
        assert tokenizer_fingerprint(WhitespaceTokenizer()) != tokenizer_fingerprint(
            QgramTokenizer()
        )
        # Two instances configured alike are the same artifact key.
        assert tokenizer_fingerprint(QgramTokenizer(q=3, return_set=True)) == (
            tokenizer_fingerprint(QgramTokenizer(q=3, return_set=True))
        )

    def test_combine_is_order_sensitive(self):
        assert combine("a", "b") != combine("b", "a")
        assert combine("a", "b") == combine("a", "b")


class TestInvalidation:
    def test_same_content_is_a_reuse(self):
        table = Table({"id": [1, 2], "v": ["dave smith", "joe wilson"]})
        store = IndexStore()
        with use_registry() as registry:
            first = store.tokenized_column(table, "id", "v", WhitespaceTokenizer())
            again = store.tokenized_column(table, "id", "v", WhitespaceTokenizer())
            assert again is first
            assert counter_total(registry, "index_reuses_total", kind="tokens") == 1
            assert counter_total(registry, "index_builds_total", kind="tokens") == 1

    def test_mutated_table_rebuilds(self):
        table = Table({"id": [1, 2], "v": ["dave smith", "joe wilson"]})
        mutated = Table({"id": [1, 2], "v": ["dave smith", "joe wilsom"]})
        store = IndexStore()
        with use_registry() as registry:
            first = store.tokenized_column(table, "id", "v", WhitespaceTokenizer())
            second = store.tokenized_column(mutated, "id", "v", WhitespaceTokenizer())
            assert second is not first
            assert second.token_sets != first.token_sets
            assert counter_total(registry, "index_builds_total", kind="tokens") == 2
            assert counter_total(registry, "index_reuses_total", kind="tokens") == 0

    def test_changed_tokenizer_rebuilds(self):
        table = Table({"id": [1, 2], "v": ["dave smith", "joe wilson"]})
        store = IndexStore()
        with use_registry() as registry:
            first = store.tokenized_column(table, "id", "v", QgramTokenizer(q=2))
            second = store.tokenized_column(table, "id", "v", QgramTokenizer(q=3))
            assert second is not first
            assert second.token_sets != first.token_sets
            assert counter_total(registry, "index_builds_total", kind="tokens") == 2

    def test_lru_eviction_bounds_memory(self):
        store = IndexStore(max_entries=4)
        for i in range(10):
            table = Table({"id": [1], "v": [f"value {i}"]})
            store.string_records(table, "id", "v")
        assert len(store) == 4


class TestWarmColdEquivalence:
    def test_set_sim_join_warm_and_parallel_identical(self):
        ltable, rtable = make_tables()
        with use_index_store():
            cold = jaccard_join(ltable, rtable)
            warm = jaccard_join(ltable, rtable)
            warm_parallel = jaccard_join(ltable, rtable, n_jobs=2)
        assert cold.num_rows > 0
        assert columns_of(warm) == columns_of(cold)
        assert columns_of(warm_parallel) == columns_of(cold)

    def test_edit_distance_join_warm_identical(self):
        ltable, rtable = make_tables(40)
        with use_index_store():
            cold = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=2)
            warm = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=2)
            warm_parallel = edit_distance_join(
                ltable, rtable, "id", "id", "v", "v", threshold=2, n_jobs=2
            )
        assert cold.num_rows > 0
        assert columns_of(warm) == columns_of(cold)
        assert columns_of(warm_parallel) == columns_of(cold)

    def test_overlap_blocker_warm_identical(self):
        ltable, rtable = make_tables()
        blocker = OverlapBlocker("v", overlap_size=1)
        with use_index_store():
            cold = blocker.block_tables(ltable, rtable, "id", "id")
            warm = blocker.block_tables(ltable, rtable, "id", "id")
            warm_parallel = blocker.block_tables(ltable, rtable, "id", "id", n_jobs=2)
        assert cold.num_rows > 0
        assert columns_of(warm) == columns_of(cold)
        assert columns_of(warm_parallel) == columns_of(cold)

    def test_join_and_blocker_share_record_artifacts(self):
        # The blocker's projected working view has different column names
        # but the same content; content fingerprints make it a reuse.
        ltable, rtable = make_tables()
        with use_index_store(), use_registry() as registry:
            jaccard_join(ltable, rtable)
            OverlapBlocker("v", overlap_size=1).block_tables(ltable, rtable, "id", "id")
            assert counter_total(registry, "index_reuses_total", kind="tokens") > 0


class TestPersistence:
    def test_round_trip_from_disk(self, tmp_path):
        ltable, rtable = make_tables()
        with use_index_store(IndexStore(cache_dir=tmp_path)):
            cold = jaccard_join(ltable, rtable)
        # A fresh store on the same directory models a fresh process.
        with use_registry() as registry:
            with use_index_store(IndexStore(cache_dir=tmp_path)):
                warm = jaccard_join(ltable, rtable)
            assert counter_total(registry, "index_reuses_total", tier="disk") > 0
            assert counter_total(registry, "index_builds_total") == 0
        assert columns_of(warm) == columns_of(cold)

    def test_corrupt_cache_file_falls_back_to_rebuild(self, tmp_path):
        ltable, rtable = make_tables()
        with use_index_store(IndexStore(cache_dir=tmp_path)):
            cold = jaccard_join(ltable, rtable)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"\x80\x04 this is not a pickle")
        with use_registry() as registry:
            with use_index_store(IndexStore(cache_dir=tmp_path)):
                warm = jaccard_join(ltable, rtable)
            assert counter_total(registry, "index_disk_errors_total") > 0
            assert counter_total(registry, "index_builds_total") > 0
        assert columns_of(warm) == columns_of(cold)
        # Every corrupt file was rewritten by its fallback rebuild: a
        # third run starts fully warm from disk, building nothing.
        for path in tmp_path.glob("*.pkl"):
            with path.open("rb") as handle:
                pickle.load(handle)
        with use_registry() as registry:
            with use_index_store(IndexStore(cache_dir=tmp_path)):
                jaccard_join(ltable, rtable)
            assert counter_total(registry, "index_builds_total") == 0
            assert counter_total(registry, "index_disk_errors_total") == 0

    def test_truncated_cache_file_falls_back_to_rebuild(self, tmp_path):
        table = Table({"id": [1, 2], "v": ["dave smith", "joe wilson"]})
        store = IndexStore(cache_dir=tmp_path)
        records = store.string_records(table, "id", "v")
        [path] = tmp_path.glob("records-*.pkl")
        path.write_bytes(path.read_bytes()[:-5])
        fresh = IndexStore(cache_dir=tmp_path)
        with use_registry() as registry:
            rebuilt = fresh.string_records(table, "id", "v")
            assert counter_total(registry, "index_disk_errors_total", kind="records") == 1
        assert rebuilt == records
        # The rebuild repaired the cache file in place.
        with path.open("rb") as handle:
            assert pickle.load(handle) == records

    def test_unexpected_cache_read_error_propagates(self, tmp_path, monkeypatch):
        """Only CACHE_READ_ERRORS are swallowed as cache misses; a logic
        bug raising out of the read path must surface, uncounted."""
        import repro.index.store as store_module

        table = Table({"id": [1, 2], "v": ["dave smith", "joe wilson"]})
        store = IndexStore(cache_dir=tmp_path)
        store.string_records(table, "id", "v")

        def explode(handle):
            raise RuntimeError("not a cache-read failure")

        monkeypatch.setattr(store_module.pickle, "load", explode)
        fresh = IndexStore(cache_dir=tmp_path)
        with use_registry() as registry:
            try:
                fresh.string_records(table, "id", "v")
            except RuntimeError as error:
                assert "not a cache-read failure" in str(error)
            else:  # pragma: no cover - defends the assertion above
                raise AssertionError("RuntimeError should have propagated")
            assert counter_total(registry, "index_disk_errors_total") == 0

    def test_disk_artifacts_and_clear(self, tmp_path):
        table = Table({"id": [1, 2], "v": ["dave smith", "joe wilson"]})
        store = IndexStore(cache_dir=tmp_path)
        store.tokenized_column(table, "id", "v", WhitespaceTokenizer(return_set=True))
        rows = store.disk_artifacts()
        assert {row["kind"] for row in rows} == {"records", "tokens"}
        assert all(row["bytes"] > 0 for row in rows)
        store.clear(disk=True)
        assert len(store) == 0
        assert store.disk_artifacts() == []


class TestDefaultStore:
    def test_use_index_store_scopes_the_default(self):
        outer = get_index_store()
        with use_index_store() as scoped:
            assert get_index_store() is scoped
            assert scoped is not outer
        assert get_index_store() is outer

    def test_env_var_sets_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_CACHE", str(tmp_path))
        previous = set_index_store(None)
        try:
            assert get_index_store().cache_dir == tmp_path
        finally:
            set_index_store(previous)


VALUE_POOL = ["dave smith", "dan smith", "joe wilson", "", None, "madison wi"]


class TestExtractionDedupProperty:
    @given(
        l_choices=st.lists(st.integers(0, len(VALUE_POOL) - 1), min_size=1, max_size=8),
        r_choices=st.lists(st.integers(0, len(VALUE_POOL) - 1), min_size=1, max_size=8),
        pair_seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_global_dedup_equals_naive(self, l_choices, r_choices, pair_seed):
        ltable = Table(
            {
                "id": [f"a{i}" for i in range(len(l_choices))],
                "v": [VALUE_POOL[i] for i in l_choices],
            }
        )
        rtable = Table(
            {
                "id": [f"b{i}" for i in range(len(r_choices))],
                "v": [VALUE_POOL[i] for i in r_choices],
            }
        )
        rng = random.Random(pair_seed)
        pairs = [
            (l_id, r_id)
            for l_id in ltable.column("id")
            for r_id in rtable.column("id")
            if rng.random() < 0.7
        ]
        from repro.catalog import Catalog

        catalog = Catalog()
        candset = make_candset(pairs, ltable, rtable, "id", "id", catalog=catalog)
        features = get_features_for_matching(ltable, rtable, "id", "id")
        fv = extract_feature_vecs(candset, features, catalog=catalog)

        l_index = ltable.index_by("id")
        r_index = rtable.index_by("id")
        for feature in features:
            expected = [
                feature(l_index[l_id][feature.l_attr], r_index[r_id][feature.r_attr])
                for l_id, r_id in pairs
            ]
            got = fv.column(feature.name)
            assert len(got) == len(expected)
            for got_value, expected_value in zip(got, expected):
                # NaN != NaN, so compare via repr (distinguishes nan/None/floats).
                assert repr(got_value) == repr(expected_value)

    def test_unhashable_values_fall_back_to_per_occurrence(self):
        from repro.catalog import Catalog
        from repro.features import make_blackbox_feature

        ltable = Table({"id": ["a1", "a2"], "v": [["x", "y"], ["x", "y"]]})
        rtable = Table({"id": ["b1"], "v": [["x"]]})
        catalog = Catalog()
        pairs = [("a1", "b1"), ("a2", "b1")]
        candset = make_candset(pairs, ltable, rtable, "id", "id", catalog=catalog)
        feature = make_blackbox_feature(
            "overlap", "v", "v", lambda a, b: float(len(set(a) & set(b)))
        )
        from repro.features import FeatureTable

        table = FeatureTable()
        table.add(feature)
        fv = extract_feature_vecs(candset, table, catalog=catalog)
        assert fv.column("overlap") == [1.0, 1.0]

    def test_dedup_counters(self):
        from repro.catalog import Catalog

        ltable = Table({"id": ["a1", "a2"], "v": ["dave smith", "dave smith"]})
        rtable = Table({"id": ["b1"], "v": ["dave smith"]})
        catalog = Catalog()
        candset = make_candset(
            [("a1", "b1"), ("a2", "b1")], ltable, rtable, "id", "id", catalog=catalog
        )
        features = get_features_for_matching(ltable, rtable, "id", "id")
        with use_registry() as registry:
            fv = extract_feature_vecs(candset, features, catalog=catalog)
            # Both rows carry identical (l_value, r_value) pairs: each
            # feature evaluates once and the second occurrence is a hit.
            assert counter_total(registry, "feature_cache_misses_total") == len(features)
            assert counter_total(registry, "feature_cache_hits_total") == len(features)
        assert fv.num_rows == 2


class TestThreadSafety:
    def test_memory_tier_concurrent_probes(self):
        """8 threads hammering one store: no lost artifacts, bounded LRU.

        Before the memory tier was locked, concurrent ``_get``/
        ``_remember`` calls could corrupt the ``OrderedDict`` eviction
        order or crash in ``move_to_end``/``popitem``.
        """
        import threading

        store = IndexStore(max_entries=8)
        digests = [f"digest-{i}" for i in range(32)]
        expected = {digest: [("row", digest)] for digest in digests}
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(400):
                    digest = rng.choice(digests)
                    artifact = store._get(
                        "records", digest, lambda d=digest: [("row", d)],
                        persist=False,
                    )
                    # A lost update would serve another digest's artifact.
                    assert artifact == expected[digest]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with use_registry():
            threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors
        assert len(store) <= 8

    def test_concurrent_misses_build_exactly_once(self):
        """8 threads missing the same digest: the per-digest build lock
        elects one builder; everyone else takes the result from the
        memory tier.  One build, one ``index_builds_total`` increment,
        one shared artifact object."""
        import threading

        store = IndexStore(max_entries=4)
        barrier = threading.Barrier(8)
        results: list = []
        build_calls: list[int] = []

        def build():
            build_calls.append(1)
            return ["artifact"]

        def probe() -> None:
            barrier.wait()
            results.append(store._get("records", "same-digest", build, persist=False))

        with use_registry() as registry:
            threads = [threading.Thread(target=probe) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert counter_total(registry, "index_builds_total", kind="records") == 1
            assert counter_total(registry, "index_reuses_total", kind="records") == 7
        assert len(build_calls) == 1
        assert all(result is results[0] for result in results)
        assert len(store) == 1
        # The build-lock table does not leak entries.
        assert store._building == {}

    def test_build_lock_does_not_serialize_distinct_digests(self):
        """Builds of unrelated artifacts overlap: a slow build of one
        digest must not make another digest's build wait behind it."""
        import threading

        store = IndexStore(max_entries=8)
        slow_started = threading.Event()
        release_slow = threading.Event()
        fast_done = threading.Event()

        def slow_build():
            slow_started.set()
            release_slow.wait(5)
            return ["slow"]

        def fast_build():
            fast_done.set()
            return ["fast"]

        with use_registry():
            slow_thread = threading.Thread(
                target=store._get, args=("records", "slow-digest", slow_build),
                kwargs={"persist": False},
            )
            slow_thread.start()
            assert slow_started.wait(5)
            fast_thread = threading.Thread(
                target=store._get, args=("records", "fast-digest", fast_build),
                kwargs={"persist": False},
            )
            fast_thread.start()
            # The fast build completes while the slow one is still held.
            assert fast_done.wait(5)
            release_slow.set()
            slow_thread.join(5)
            fast_thread.join(5)
        assert len(store) == 2
