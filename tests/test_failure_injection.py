"""Failure-injection tests: how the ecosystem behaves when things break.

The paper's production concerns — crash recovery, stale metadata, flaky
humans, misbehaving services — are exercised here by injecting failures
into otherwise healthy workflows and asserting the failure is loud,
precise, and recoverable.
"""

import pytest

from repro.blocking import OverlapBlocker
from repro.cloud import DEFAULT_REGISTRY, CloudMatcher10, ServiceKind, WorkflowContext
from repro.cloud.dag import EMWorkflow
from repro.cloud.services import Service
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import person
from repro.exceptions import (
    BudgetExhaustedError,
    ForeignKeyConstraintError,
    ReproError,
)
from repro.falcon import FalconConfig, run_falcon
from repro.labeling import LabelingSession, OracleLabeler
from repro.labeling.oracle import BaseLabeler
from repro.table import Table


def dataset_fixture(seed=91):
    return make_em_dataset(
        person, 80, 80, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=seed, name="failures",
    )


class FlakyLabeler(BaseLabeler):
    """Answers correctly until it crashes at a configured question."""

    def __init__(self, gold, crash_at: int):
        super().__init__(seconds_per_label=1.0)
        self._oracle = OracleLabeler(gold)
        self.crash_at = crash_at

    def label(self, pair):
        self.questions_asked += 1
        if self.questions_asked == self.crash_at:
            raise RuntimeError("labeler walked away")
        return self._oracle.label(pair)


class TestLabelingFailures:
    def test_labeler_crash_propagates_and_session_stays_consistent(self):
        ds = dataset_fixture()
        session = LabelingSession(FlakyLabeler(ds.gold_pairs, crash_at=3))
        pairs = sorted(ds.gold_pairs)[:5]
        session.ask(pairs[0])
        session.ask(pairs[1])
        with pytest.raises(RuntimeError, match="walked away"):
            session.ask(pairs[2])
        # The failed question was not recorded; the session can continue
        # once the labeler recovers.
        assert session.questions_asked == 2
        assert pairs[2] not in session.labels

    def test_budget_exhaustion_mid_workflow_is_typed(self):
        ds = dataset_fixture()
        session = LabelingSession(OracleLabeler(ds.gold_pairs), budget=5)
        with pytest.raises(BudgetExhaustedError):
            run_falcon(ds, session, FalconConfig(sample_size=200, random_state=0))
        # and it is catchable as the ecosystem base error
        session2 = LabelingSession(OracleLabeler(ds.gold_pairs), budget=5)
        with pytest.raises(ReproError):
            run_falcon(ds, session2, FalconConfig(sample_size=200, random_state=0))


class TestMetadataFailures:
    def test_mutated_base_table_detected_downstream(self):
        ds = dataset_fixture()
        candset = OverlapBlocker("name", overlap_size=1).block_tables(
            ds.ltable, ds.rtable, "id", "id"
        )
        # Another tool rewrites A's keys behind the catalog's back.
        ds.ltable.add_column("id", [f"x{i}" for i in range(ds.ltable.num_rows)])
        from repro.features import extract_feature_vecs, get_features_for_matching

        features = get_features_for_matching(ds.ltable, ds.rtable)
        with pytest.raises(ForeignKeyConstraintError):
            extract_feature_vecs(candset, features)


class TestServiceFailures:
    def _context(self, ds):
        return WorkflowContext(
            dataset=ds,
            session=LabelingSession(OracleLabeler(ds.gold_pairs), budget=300),
            config=FalconConfig(sample_size=200, blocking_budget=60,
                                matching_budget=100, random_state=0),
            task_name="flaky",
        )

    def test_failing_service_aborts_its_workflow(self):
        ds = dataset_fixture()

        def boom(ctx):
            raise RuntimeError("service crashed")

        registry_service = Service("boom", ServiceKind.BATCH, "always fails", boom)
        workflow = EMWorkflow("doomed")
        workflow.add_call("upload", DEFAULT_REGISTRY.get("upload_tables"))
        workflow.add_call("boom", registry_service, after=["upload"])
        matcher = CloudMatcher10()
        matcher.metamanager.submit(workflow, self._context(ds))
        with pytest.raises(RuntimeError, match="service crashed"):
            matcher.metamanager.run_all()

    def test_engine_state_survives_failed_fragment(self):
        ds = dataset_fixture()

        def boom(ctx):
            raise RuntimeError("down")

        workflow = EMWorkflow("doomed")
        workflow.add_call("boom", Service("boom", ServiceKind.BATCH, "fails", boom))
        matcher = CloudMatcher10()
        doomed = matcher.metamanager.submit(workflow, self._context(ds))
        with pytest.raises(RuntimeError):
            matcher.metamanager.run_all()
        # Operator removes the doomed run; the same engines then serve a
        # healthy workflow.
        matcher.metamanager.runs.remove(doomed)
        matcher._submissions.clear()
        ds2 = dataset_fixture(seed=92)
        matcher.submit(
            ds2, LabelingSession(OracleLabeler(ds2.gold_pairs), budget=300),
            FalconConfig(sample_size=200, blocking_budget=60, matching_budget=100,
                         random_state=0),
        )
        makespan, results = matcher.run(score_against_gold=False)
        assert results[-1].context.has("matches")


class TestInputFailures:
    def test_blocker_missing_column_is_schema_error(self):
        ds = dataset_fixture()
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError, match="no_such"):
            OverlapBlocker("no_such").block_tables(ds.ltable, ds.rtable, "id", "id")

    def test_candset_ops_on_unregistered_table(self):
        from repro.blocking import candset_union
        from repro.exceptions import CatalogError

        naked = Table({"_id": [0], "ltable_id": ["a"], "rtable_id": ["b"]})
        with pytest.raises(CatalogError):
            candset_union(naked, naked)

    def test_cli_survives_missing_file(self, capsys):
        from repro.cli import main

        with pytest.raises((SystemExit, FileNotFoundError)):
            main(["profile", "/nonexistent/file.csv"])
