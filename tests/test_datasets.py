"""Tests for corruptions, generators, and deployment scenarios."""

import random

import pytest

from repro.datasets import (
    CLOUDMATCHER_SCENARIOS,
    PYMATCHER_SCENARIOS,
    DirtinessConfig,
    build_cloudmatcher_dataset,
    build_pymatcher_dataset,
    cloudmatcher_scenario,
    corrupt_record,
    corrupt_value,
    make_em_dataset,
    make_string_dataset,
    pymatcher_scenario,
)
from repro.datasets import corruptions, entities
from repro.datasets.vocab import GENERIC_ADDRESS
from repro.exceptions import ConfigurationError


class TestCorruptions:
    def test_typo_changes_string(self):
        rng = random.Random(0)
        changed = sum(corruptions.typo("wisconsin", rng) != "wisconsin" for _ in range(20))
        assert changed >= 18  # a typo nearly always changes the string

    def test_typo_empty_string(self):
        assert corruptions.typo("", random.Random(0)) == ""

    def test_abbreviate(self):
        rng = random.Random(0)
        result = corruptions.abbreviate("David Smith", rng)
        assert "." in result
        assert len(result) < len("David Smith")

    def test_abbreviate_short_tokens_unchanged(self):
        assert corruptions.abbreviate("ab cd", random.Random(0)) == "ab cd"

    def test_drop_token(self):
        result = corruptions.drop_token("a b c", random.Random(0))
        assert len(result.split()) == 2

    def test_drop_token_single(self):
        assert corruptions.drop_token("solo", random.Random(0)) == "solo"

    def test_reorder(self):
        result = corruptions.reorder_tokens("a b", random.Random(0))
        assert result == "b a"

    def test_numeric_jitter_bounded(self):
        rng = random.Random(0)
        for _ in range(50):
            value = corruptions.numeric_jitter(100.0, rng, relative=0.05)
            assert 95.0 <= value <= 105.0

    def test_corrupt_value_missing(self):
        config = DirtinessConfig(missing_rate=1.0)
        assert corrupt_value("x", "col", config, random.Random(0)) is None

    def test_corrupt_value_generic(self):
        config = DirtinessConfig.clean()
        config.generic_value_rate["address"] = (1.0, GENERIC_ADDRESS)
        assert (
            corrupt_value("real street 1", "address", config, random.Random(0))
            == GENERIC_ADDRESS
        )

    def test_clean_config_is_identity(self):
        config = DirtinessConfig.clean()
        rng = random.Random(0)
        record = {"a": "some text value", "b": 42}
        assert corrupt_record(record, config, rng) == record

    def test_skip_columns(self):
        config = DirtinessConfig(missing_rate=1.0)
        record = corrupt_record({"id": "a1", "v": "x"}, config, random.Random(0), skip_columns={"id"})
        assert record["id"] == "a1"
        assert record["v"] is None


class TestEntities:
    @pytest.mark.parametrize("name", sorted(entities.FACTORIES))
    def test_factories_produce_records(self, name):
        rng = random.Random(0)
        record = entities.FACTORIES[name](rng)
        assert record
        assert all(value is not None for value in record.values())

    def test_vendor_brazilian(self):
        record = entities.vendor(random.Random(0), brazilian=True)
        assert record["country"] == "Brazil"

    def test_book_has_isbn_and_pages(self):
        record = entities.book(random.Random(0))
        assert record["isbn"].startswith("978")
        assert isinstance(record["pages"], int)


class TestGenerator:
    def test_sizes_and_gold(self):
        ds = make_em_dataset(entities.person, 50, 60, match_fraction=0.4, seed=0)
        assert ds.ltable.num_rows == 50
        assert ds.rtable.num_rows == 60
        assert len(ds.gold_pairs) == 20

    def test_gold_is_one_to_one(self):
        ds = make_em_dataset(entities.person, 80, 80, match_fraction=0.6, seed=1)
        lefts = [a for a, _ in ds.gold_pairs]
        rights = [b for _, b in ds.gold_pairs]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_gold_ids_exist(self):
        ds = make_em_dataset(entities.person, 40, 40, seed=2)
        l_ids = set(ds.ltable.column("id"))
        r_ids = set(ds.rtable.column("id"))
        assert all(a in l_ids and b in r_ids for a, b in ds.gold_pairs)

    def test_deterministic(self):
        a = make_em_dataset(entities.person, 30, 30, seed=3)
        b = make_em_dataset(entities.person, 30, 30, seed=3)
        assert a.ltable == b.ltable
        assert a.gold_pairs == b.gold_pairs

    def test_clean_matches_are_identical_records(self):
        ds = make_em_dataset(
            entities.person, 30, 30, match_fraction=1.0,
            dirtiness=DirtinessConfig.clean(), seed=4,
        )
        l_index = ds.ltable.index_by("id")
        r_index = ds.rtable.index_by("id")
        for a, b in ds.gold_pairs:
            l_row = {k: v for k, v in l_index[a].items() if k != "id"}
            r_row = {k: v for k, v in r_index[b].items() if k != "id"}
            assert l_row == r_row

    def test_match_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            make_em_dataset(entities.person, 10, 10, match_fraction=1.5)

    def test_register_sets_keys(self):
        from repro.catalog import get_catalog

        ds = make_em_dataset(entities.person, 10, 10, seed=0)
        assert get_catalog().get_key(ds.ltable) == "id"

    def test_string_dataset(self):
        strings = [f"value number {i}" for i in range(40)]
        ds = make_string_dataset(strings, match_fraction=0.5, seed=0)
        assert ds.ltable.columns == ["id", "value"]
        assert len(ds.gold_pairs) == 20


class TestScenarios:
    def test_eight_pymatcher_deployments(self):
        assert len(PYMATCHER_SCENARIOS) == 8

    def test_thirteen_cloudmatcher_tasks(self):
        assert len(CLOUDMATCHER_SCENARIOS) == 13

    def test_lookup(self):
        assert pymatcher_scenario("land_use_uw").organization == "Land Use (UW)"
        assert cloudmatcher_scenario("vehicles").domain == "vehicle"
        with pytest.raises(KeyError):
            pymatcher_scenario("nope")
        with pytest.raises(KeyError):
            cloudmatcher_scenario("nope")

    def test_build_pymatcher_dataset(self):
        ds = build_pymatcher_dataset(pymatcher_scenario("recruit"))
        assert ds.ltable.num_rows == 800
        assert len(ds.gold_pairs) > 0

    def test_vendors_have_generic_addresses(self):
        ds = build_cloudmatcher_dataset(cloudmatcher_scenario("vendors"))
        addresses = ds.rtable.column("address") + ds.ltable.column("address")
        assert addresses.count(GENERIC_ADDRESS) > 20

    def test_no_brazil_variant_removes_brazil(self):
        ds = build_cloudmatcher_dataset(cloudmatcher_scenario("vendors_no_brazil"))
        assert "Brazil" not in ds.ltable.unique_values("country")
        assert "Brazil" not in ds.rtable.unique_values("country")
        assert len(ds.gold_pairs) > 0

    def test_no_brazil_gold_is_subset(self):
        full = build_cloudmatcher_dataset(cloudmatcher_scenario("vendors"))
        cleaned = build_cloudmatcher_dataset(cloudmatcher_scenario("vendors_no_brazil"))
        assert cleaned.gold_pairs <= full.gold_pairs

    def test_vehicles_hard_pairs_recorded(self):
        ds = build_cloudmatcher_dataset(cloudmatcher_scenario("vehicles"))
        assert "hard_pairs" in ds.notes
        assert ds.notes["hard_pairs"] <= ds.gold_pairs
        assert len(ds.notes["hard_pairs"]) > 0
