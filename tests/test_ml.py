"""Tests for the from-scratch ML substrate."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.ml import (
    BernoulliNB,
    DecisionTreeClassifier,
    GaussianNB,
    KFold,
    LinearSVM,
    LogisticRegression,
    RandomForestClassifier,
    SimpleImputer,
    StratifiedKFold,
    accuracy_score,
    confusion_counts,
    cross_validate,
    f1_score,
    log_loss,
    mean_cv_score,
    precision_recall_f1,
    precision_score,
    recall_score,
    train_test_split,
)

ALL_CLASSIFIERS = [
    lambda: DecisionTreeClassifier(max_depth=6),
    lambda: RandomForestClassifier(n_estimators=8, random_state=0),
    lambda: LogisticRegression(),
    lambda: LinearSVM(),
    lambda: GaussianNB(),
    lambda: BernoulliNB(),
]


def linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 2 * X[:, 1] > 0).astype(int)
    return X, y


class TestMetrics:
    def test_confusion_counts(self):
        tp, fp, tn, fn = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert (tp, fp, tn, fn) == (1, 1, 1, 1)

    def test_precision_recall_f1(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)
        p, r, f = precision_recall_f1(y_true, y_pred)
        assert (p, r, f) == pytest.approx((2 / 3, 2 / 3, 2 / 3))

    def test_degenerate_cases(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [1, 1]) == 0.0
        assert f1_score([0], [0]) == 0.0

    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([1, 0], [1])

    def test_log_loss_perfect(self):
        assert log_loss([1, 0], [1.0, 0.0]) < 1e-10

    def test_log_loss_2d_proba(self):
        value = log_loss([1], np.array([[0.2, 0.8]]))
        assert value == pytest.approx(-np.log(0.8))


class TestDecisionTree:
    def test_fits_xor(self):
        # XOR is non-linear: trees should nail it, unlike linear models.
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=float)
        y = np.array([0, 1, 1, 0] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_depth_limits(self):
        X, y = linearly_separable()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        X, y = linearly_separable(n=50)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 10
            else:
                check(node.left)
                check(node.right)

        check(tree.root_)

    def test_single_class(self):
        X = np.ones((5, 2))
        y = np.zeros(5, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves() == 1
        assert list(tree.predict(X)) == [0] * 5

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_feature_names_used_in_export(self):
        X, y = linearly_separable(n=60)
        tree = DecisionTreeClassifier(max_depth=2).fit(
            X, y, feature_names=["alpha", "beta", "gamma", "delta"]
        )
        text = tree.export_text()
        assert any(name in text for name in ["alpha", "beta", "gamma", "delta"])

    def test_feature_names_length_checked(self):
        X, y = linearly_separable(n=30)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier().fit(X, y, feature_names=["just_one"])

    def test_entropy_criterion(self):
        X, y = linearly_separable()
        tree = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_invalid_criterion(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(criterion="mse")

    def test_proba_sums_to_one(self):
        X, y = linearly_separable()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_wrong_feature_count_at_predict(self):
        X, y = linearly_separable()
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.ones((2, 9)))


class TestRandomForest:
    def test_accuracy(self):
        X, y = linearly_separable()
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.95

    def test_deterministic_given_seed(self):
        X, y = linearly_separable()
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_vote_fraction_range(self):
        X, y = linearly_separable()
        forest = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        votes = forest.vote_fraction(X)
        assert np.all((votes >= 0) & (votes <= 1))

    def test_alpha_one_requires_unanimity(self):
        X, y = linearly_separable()
        forest = RandomForestClassifier(n_estimators=9, random_state=0).fit(X, y)
        strict = forest.predict_with_alpha(X, alpha=1.0)
        loose = forest.predict_with_alpha(X, alpha=0.1)
        assert np.sum(strict == 1) <= np.sum(loose == 1)

    def test_alpha_validation(self):
        X, y = linearly_separable(n=40)
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        with pytest.raises(ConfigurationError):
            forest.predict_with_alpha(X, alpha=0.0)

    def test_vote_entropy_zero_when_unanimous(self):
        X = np.vstack([np.zeros((20, 2)), np.ones((20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        forest = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        entropy = forest.vote_entropy(X)
        assert np.all(entropy >= 0)
        assert float(entropy.min()) == 0.0

    def test_trees_accessible(self):
        X, y = linearly_separable(n=50)
        forest = RandomForestClassifier(n_estimators=4, random_state=0).fit(X, y)
        assert len(forest.trees_) == 4
        assert all(tree.is_fitted for tree in forest.trees_)

    def test_invalid_n_estimators(self):
        with pytest.raises(ConfigurationError):
            RandomForestClassifier(n_estimators=0)


class TestLinearModels:
    @pytest.mark.parametrize("factory", [LogisticRegression, LinearSVM])
    def test_learns_linear_boundary(self, factory):
        X, y = linearly_separable()
        model = factory().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_logreg_proba_monotone_in_score(self):
        X, y = linearly_separable()
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_binary_only(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.array([0, 1, 2] * 10)
        with pytest.raises(ConfigurationError):
            LogisticRegression().fit(X, y)
        with pytest.raises(ConfigurationError):
            LinearSVM().fit(X, y)

    def test_nonstandard_labels(self):
        X, y01 = linearly_separable()
        y = np.where(y01 == 1, 7, 3)
        model = LogisticRegression().fit(X, y)
        assert set(model.predict(X)) <= {3, 7}


class TestNaiveBayes:
    def test_gaussian_separates(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(-2, 1, (50, 3)), rng.normal(2, 1, (50, 3))])
        y = np.array([0] * 50 + [1] * 50)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_bernoulli_separates(self):
        rng = np.random.default_rng(2)
        X0 = (rng.random((50, 5)) < 0.2).astype(float)
        X1 = (rng.random((50, 5)) < 0.8).astype(float)
        X = np.vstack([X0, X1])
        y = np.array([0] * 50 + [1] * 50)
        model = BernoulliNB().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_proba_normalized(self):
        X, y = linearly_separable(n=60)
        proba = GaussianNB().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestModelSelection:
    def test_train_test_split_sizes(self):
        X, y = linearly_separable(n=100)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=0)
        assert len(X_test) == 20
        assert len(X_train) == 80
        assert len(y_train) == 80

    def test_train_test_split_invalid(self):
        X, y = linearly_separable(n=10)
        with pytest.raises(ConfigurationError):
            train_test_split(X, y, test_size=1.5)

    def test_kfold_partitions(self):
        splits = list(KFold(n_splits=4, random_state=0).split(20))
        assert len(splits) == 4
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(20))

    def test_kfold_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            list(KFold(n_splits=5).split(3))

    def test_stratified_preserves_classes(self):
        y = np.array([0] * 40 + [1] * 10)
        for train, test in StratifiedKFold(n_splits=5, random_state=0).split(y):
            assert np.sum(y[test] == 1) == 2
            assert len(set(train.tolist()) & set(test.tolist())) == 0

    def test_cross_validate_scores(self):
        X, y = linearly_separable(n=150)
        scores = cross_validate(
            RandomForestClassifier(n_estimators=5, random_state=0), X, y,
            n_splits=3, random_state=0,
        )
        assert set(scores) == {"precision", "recall", "f1"}
        assert all(len(v) == 3 for v in scores.values())
        assert mean_cv_score(scores, "f1") > 0.85

    def test_cross_validate_does_not_mutate_estimator(self):
        X, y = linearly_separable(n=60)
        estimator = RandomForestClassifier(n_estimators=3, random_state=0)
        cross_validate(estimator, X, y, n_splits=3, random_state=0)
        assert not estimator.is_fitted


class TestImputer:
    def test_mean_imputation(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        imputed = SimpleImputer().fit_transform(X)
        assert imputed[0, 1] == 4.0

    def test_median_imputation(self):
        X = np.array([[1.0], [np.nan], [100.0], [3.0]])
        imputed = SimpleImputer(strategy="median").fit_transform(X)
        assert imputed[1, 0] == 3.0

    def test_constant(self):
        X = np.array([[np.nan]])
        imputed = SimpleImputer(strategy="constant", fill_value=-1.0).fit_transform(X)
        assert imputed[0, 0] == -1.0

    def test_all_nan_column_falls_back(self):
        X = np.array([[np.nan], [np.nan]])
        imputed = SimpleImputer(strategy="mean", fill_value=0.5).fit_transform(X)
        assert np.all(imputed == 0.5)

    def test_transform_uses_fit_statistics(self):
        imputer = SimpleImputer().fit(np.array([[2.0], [4.0]]))
        out = imputer.transform(np.array([[np.nan]]))
        assert out[0, 0] == 3.0

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            SimpleImputer(strategy="mode")

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            SimpleImputer().transform(np.array([[1.0]]))

    def test_column_count_checked(self):
        imputer = SimpleImputer().fit(np.ones((2, 2)))
        with pytest.raises(ValueError):
            imputer.transform(np.ones((2, 3)))


class TestEstimatorProtocol:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_fit_predict_shapes(self, factory):
        X, y = linearly_separable(n=80)
        model = factory().fit(X, y)
        predictions = model.predict(X)
        assert predictions.shape == (80,)
        assert set(predictions.tolist()) <= {0, 1}

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_clone_is_unfitted(self, factory):
        X, y = linearly_separable(n=40)
        model = factory().fit(X, y)
        clone = model.clone()
        assert not clone.is_fitted

    def test_get_params_round_trip(self):
        model = RandomForestClassifier(n_estimators=3, max_depth=2)
        params = model.get_params()
        assert params["n_estimators"] == 3
        assert params["max_depth"] == 2
