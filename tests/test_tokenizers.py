"""Tests for string tokenizers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.text import (
    AlphabeticTokenizer,
    AlphanumericTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    WhitespaceTokenizer,
)


class TestWhitespace:
    def test_basic(self):
        assert WhitespaceTokenizer().tokenize("a  b\tc") == ["a", "b", "c"]

    def test_empty(self):
        assert WhitespaceTokenizer().tokenize("") == []

    def test_return_set_dedupes_preserving_order(self):
        assert WhitespaceTokenizer(return_set=True).tokenize("b a b") == ["b", "a"]

    def test_type_error(self):
        with pytest.raises(TypeError):
            WhitespaceTokenizer().tokenize(42)

    def test_cached_tokenize(self):
        tokenizer = WhitespaceTokenizer()
        first = tokenizer.tokenize_cached("a b")
        second = tokenizer.tokenize_cached("a b")
        assert first is second  # memoized


class TestDelimiter:
    def test_custom_delimiters(self):
        tokenizer = DelimiterTokenizer(delimiters={",", ";"})
        assert tokenizer.tokenize("a,b;c") == ["a", "b", "c"]

    def test_multichar_delimiter(self):
        tokenizer = DelimiterTokenizer(delimiters={"--"})
        assert tokenizer.tokenize("a--b") == ["a", "b"]

    def test_empty_delimiter_rejected(self):
        with pytest.raises(ConfigurationError):
            DelimiterTokenizer(delimiters={""})

    def test_drops_empty_tokens(self):
        assert DelimiterTokenizer(delimiters={","}).tokenize(",a,,b,") == ["a", "b"]


class TestQgram:
    def test_padded(self):
        assert QgramTokenizer(q=3).tokenize("ab") == ["##a", "#ab", "ab$", "b$$"]

    def test_unpadded(self):
        assert QgramTokenizer(q=2, padding=False).tokenize("abc") == ["ab", "bc"]

    def test_unpadded_short_string(self):
        assert QgramTokenizer(q=3, padding=False).tokenize("ab") == []

    def test_q_one(self):
        assert QgramTokenizer(q=1, padding=False).tokenize("ab") == ["a", "b"]

    def test_invalid_q(self):
        with pytest.raises(ConfigurationError):
            QgramTokenizer(q=0)

    def test_invalid_pad(self):
        with pytest.raises(ConfigurationError):
            QgramTokenizer(prefix_pad="##")

    def test_name_includes_q(self):
        assert QgramTokenizer(q=4).name() == "qgm_4"


class TestAlphabetic:
    def test_splits_on_non_letters(self):
        assert AlphabeticTokenizer().tokenize("data9science, data") == [
            "data",
            "science",
            "data",
        ]

    def test_alphanumeric_keeps_digits(self):
        assert AlphanumericTokenizer().tokenize("#1 data9,science") == [
            "1",
            "data9",
            "science",
        ]
