"""Tests for type inference and CSV I/O with metadata."""

import pytest

from repro.catalog import get_catalog
from repro.exceptions import CatalogError
from repro.table import (
    ColumnType,
    Table,
    infer_column_type,
    infer_schema,
    infer_value_type,
    is_missing,
    read_csv,
    read_csv_metadata,
    write_csv,
    write_csv_metadata,
)


class TestMissing:
    @pytest.mark.parametrize("value", [None, float("nan"), "", "   "])
    def test_missing_values(self, value):
        assert is_missing(value)

    @pytest.mark.parametrize("value", [0, 0.0, False, "x", -1])
    def test_present_values(self, value):
        assert not is_missing(value)


class TestTypeInference:
    def test_value_types(self):
        assert infer_value_type(True) == ColumnType.BOOLEAN
        assert infer_value_type(3) == ColumnType.NUMERIC
        assert infer_value_type(3.5) == ColumnType.NUMERIC
        assert infer_value_type("WI") == ColumnType.SHORT_STRING
        assert infer_value_type("Dave Smith") == ColumnType.MEDIUM_STRING
        assert (
            infer_value_type("a very long product description with many words here")
            == ColumnType.LONG_STRING
        )
        assert infer_value_type(object()) == ColumnType.UNKNOWN

    def test_column_numeric(self):
        assert infer_column_type([1, 2.5, None]) == ColumnType.NUMERIC

    def test_column_boolean(self):
        assert infer_column_type([True, False]) == ColumnType.BOOLEAN

    def test_column_all_missing(self):
        assert infer_column_type([None, "", float("nan")]) == ColumnType.UNKNOWN

    def test_column_short_string(self):
        assert infer_column_type(["WI", "CA", "TX"]) == ColumnType.SHORT_STRING

    def test_column_medium_string(self):
        assert infer_column_type(["Dave Smith", "Joe Wilson"]) == ColumnType.MEDIUM_STRING

    def test_column_long_string(self):
        values = ["one two three four five six seven eight"] * 3
        assert infer_column_type(values) == ColumnType.LONG_STRING

    def test_mixed_numbers_and_strings_are_stringly(self):
        result = infer_column_type([1, "two words here", 3])
        assert result in (ColumnType.SHORT_STRING, ColumnType.MEDIUM_STRING)

    def test_infer_schema(self):
        table = Table({"id": [1, 2], "name": ["Dave Smith", "Ann Lee"]})
        schema = infer_schema(table)
        assert schema["id"] == ColumnType.NUMERIC
        assert schema["name"] == ColumnType.MEDIUM_STRING


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        table = Table(
            {"id": [1, 2], "name": ["a,b", "c"], "score": [1.5, None]}
        )
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("id") == [1, 2]
        assert loaded.column("name") == ["a,b", "c"]
        assert loaded.column("score") == [1.5, None]

    def test_read_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0

    def test_metadata_sidecar(self, tmp_path):
        catalog = get_catalog()
        table = Table({"id": [1, 2], "v": ["x", "y"]})
        catalog.set_key(table, "id")
        path = tmp_path / "t.csv"
        write_csv_metadata(table, path)
        assert (tmp_path / "t.csv.metadata.json").exists()

        loaded = read_csv_metadata(path)
        assert catalog.get_key(loaded) == "id"

    def test_read_csv_metadata_explicit_key(self, tmp_path):
        table = Table({"k": [1, 2]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv_metadata(path, key="k")
        assert get_catalog().get_key(loaded) == "k"

    def test_read_csv_metadata_no_key(self, tmp_path):
        table = Table({"k": [1, 2]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv_metadata(path)
        with pytest.raises(CatalogError):
            get_catalog().get_key(loaded)


class TestCellParsing:
    def test_leading_zero_identifiers_stay_strings(self, tmp_path):
        """ZIP '01234' must not silently become the integer 1234."""
        table = Table({"zip": ["01234", "99999"], "code": ["007", "0"]})
        path = tmp_path / "zips.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("zip") == ["01234", 99999]
        assert loaded.column("code") == ["007", 0]

    def test_signed_and_float_values(self, tmp_path):
        table = Table({"v": [-3, 2.5, "1e3"]})
        path = tmp_path / "vals.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("v") == [-3, 2.5, 1000.0]
