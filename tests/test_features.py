"""Tests for feature objects, generation, and extraction."""

import math

import numpy as np
import pytest

from repro.blocking import OverlapBlocker, make_candset
from repro.exceptions import ConfigurationError, SchemaError
from repro.features import (
    FeatureTable,
    extract_feature_vecs,
    feature_matrix,
    get_attr_corres,
    get_features_for_blocking,
    get_features_for_matching,
    label_vector,
    make_blackbox_feature,
    make_exact_feature,
    make_string_feature,
    make_token_feature,
)
from repro.ml import SimpleImputer
from repro.table import Table
from repro.text.sim import Jaccard, Levenshtein
from repro.text.tokenizers import WhitespaceTokenizer


class TestFeatureObjects:
    def test_token_feature(self):
        feature = make_token_feature(
            "f", "name", "name", WhitespaceTokenizer(return_set=True), Jaccard(), "jaccard"
        )
        assert feature("dave smith", "dave smith") == 1.0
        assert feature("dave smith", "joe wilson") == 0.0
        assert math.isnan(feature(None, "x"))
        assert feature.is_join_executable

    def test_token_feature_case_insensitive(self):
        feature = make_token_feature(
            "f", "v", "v", WhitespaceTokenizer(return_set=True), Jaccard(), "jaccard"
        )
        assert feature("Dave", "dave") == 1.0

    def test_string_feature(self):
        feature = make_string_feature("f", "v", "v", Levenshtein(), "lev_sim")
        assert feature("abc", "abc") == 1.0
        assert not feature.is_join_executable

    def test_exact_feature(self):
        feature = make_exact_feature("f", "v", "v")
        assert feature(3, 3) == 1.0
        assert feature("A", "a") == 1.0  # case-insensitive on strings
        assert feature(3, 4) == 0.0
        assert math.isnan(feature(None, 3))

    def test_blackbox_feature(self):
        feature = make_blackbox_feature("f", "a", "b", lambda x, y: 0.42)
        assert feature(1, 2) == 0.42
        assert not feature.is_join_executable

    def test_apply_rows(self):
        feature = make_exact_feature("f", "left_col", "right_col")
        assert feature.apply_rows({"left_col": 1}, {"right_col": 1}) == 1.0

    def test_invalid_sim_kind(self):
        from repro.features.feature import Feature

        with pytest.raises(ConfigurationError):
            Feature("f", "a", "b", "bogus", "m", lambda x, y: 0.0)


class TestFeatureTable:
    def test_add_remove(self):
        table = FeatureTable()
        feature = make_exact_feature("f1", "a", "a")
        table.add(feature)
        assert "f1" in table
        assert len(table) == 1
        table.remove("f1")
        assert len(table) == 0

    def test_duplicate_name_rejected(self):
        table = FeatureTable([make_exact_feature("f1", "a", "a")])
        with pytest.raises(ConfigurationError, match="duplicate"):
            table.add(make_exact_feature("f1", "b", "b"))

    def test_remove_missing(self):
        with pytest.raises(ConfigurationError):
            FeatureTable().remove("nope")

    def test_get_missing(self):
        with pytest.raises(ConfigurationError):
            FeatureTable().get("nope")

    def test_subset(self):
        table = FeatureTable(
            [make_exact_feature("f1", "a", "a"), make_exact_feature("f2", "b", "b")]
        )
        sub = table.subset(["f2"])
        assert sub.names() == ["f2"]


class TestGeneration:
    def test_attr_corres_same_names(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        assert get_attr_corres(table_a, table_b) == [
            ("name", "name"),
            ("city", "city"),
            ("state", "state"),
        ]

    def test_matching_features_per_type(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        features = get_features_for_matching(table_a, table_b)
        names = features.names()
        # medium string 'name' gets token features
        assert "name_jaccard_ws" in names
        # short string 'state' gets edit features
        assert "state_lev_sim" in names

    def test_numeric_features(self):
        table_a = Table({"id": [1], "price": [10.0]})
        table_b = Table({"id": [2], "price": [12.0]})
        features = get_features_for_matching(table_a, table_b)
        assert "price_rel_diff" in features.names()
        assert "price_abs_norm" in features.names()

    def test_no_corres_raises(self):
        table_a = Table({"id": [1], "x": ["a"]})
        table_b = Table({"id": [2], "y": ["a"]})
        with pytest.raises(SchemaError):
            get_features_for_matching(table_a, table_b)

    def test_explicit_corres(self):
        table_a = Table({"id": [1], "x": ["dave smith"]})
        table_b = Table({"id": [2], "y": ["dave smith"]})
        features = get_features_for_matching(
            table_a, table_b, attr_corres=[("x", "y")]
        )
        assert any("x_y" in name for name in features.names())

    def test_blocking_features_all_executable(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        features = get_features_for_blocking(table_a, table_b)
        assert len(features) > 0
        assert all(feature.is_join_executable for feature in features)


class TestExtraction:
    def _fv(self, figure1_tables, label=False):
        table_a, table_b, gold = figure1_tables
        candset = OverlapBlocker("name", overlap_size=1).block_tables(
            table_a, table_b, "id", "id"
        )
        if label:
            labels = [
                1 if pair in gold else 0
                for pair in zip(candset["ltable_id"], candset["rtable_id"])
            ]
            candset.add_column("label", labels)
        features = get_features_for_matching(table_a, table_b)
        return candset, features

    def test_extract_shapes(self, figure1_tables):
        candset, features = self._fv(figure1_tables)
        fv = extract_feature_vecs(candset, features)
        assert fv.num_rows == candset.num_rows
        assert set(features.names()) <= set(fv.columns)
        assert "_id" in fv.columns
        assert "ltable_id" in fv.columns

    def test_label_passthrough(self, figure1_tables):
        candset, features = self._fv(figure1_tables, label=True)
        fv = extract_feature_vecs(candset, features, label_column="label")
        assert "label" in fv.columns
        assert list(label_vector(fv)) == candset.column("label")

    def test_identical_values_score_one(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        candset = make_candset([("a1", "b1")], table_a, table_b, "id", "id")
        features = get_features_for_matching(table_a, table_b)
        fv = extract_feature_vecs(candset, features)
        # a1 and b1 share city Madison and state WI exactly.
        assert fv.column("city_exact") == [1.0]
        assert fv.column("state_exact") == [1.0]

    def test_missing_value_gives_nan(self):
        table_a = Table({"id": [1], "name": [None]})
        table_b = Table({"id": [2], "name": ["dave smith"]})
        candset = make_candset([(1, 2)], table_a, table_b, "id", "id")
        features = get_features_for_matching(table_a, table_b)
        fv = extract_feature_vecs(candset, features)
        assert math.isnan(fv.column("name_jaccard_ws")[0])

    def test_feature_matrix_imputes(self):
        fv = Table({"f1": [0.5, float("nan")], "f2": [1.0, 0.0]})
        matrix = feature_matrix(fv, ["f1", "f2"])
        assert not np.any(np.isnan(matrix))
        assert matrix[1, 0] == 0.5  # mean of the column

    def test_feature_matrix_no_impute(self):
        fv = Table({"f1": [float("nan")]})
        matrix = feature_matrix(fv, ["f1"], impute=False)
        assert np.isnan(matrix[0, 0])

    def test_feature_matrix_prefit_imputer(self):
        imputer = SimpleImputer().fit(np.array([[10.0]]))
        fv = Table({"f1": [float("nan")]})
        matrix = feature_matrix(fv, ["f1"], imputer=imputer)
        assert matrix[0, 0] == 10.0

    def test_extract_validates_metadata(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        features = get_features_for_matching(table_a, table_b)
        naked = Table({"_id": [0], "ltable_id": ["a1"], "rtable_id": ["b1"]})
        from repro.exceptions import CatalogError

        with pytest.raises(CatalogError):
            extract_feature_vecs(naked, features)
