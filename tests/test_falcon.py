"""Tests for Falcon: active learning, rule extraction, end-to-end runs."""

import numpy as np
import pytest

from repro.datasets import (
    DirtinessConfig,
    build_cloudmatcher_dataset,
    cloudmatcher_scenario,
    make_em_dataset,
)
from repro.datasets.entities import book, restaurant
from repro.exceptions import BudgetExhaustedError, ConfigurationError
from repro.falcon import (
    FalconConfig,
    active_learn_forest,
    evaluate_rules,
    extract_rules_from_forest,
    extract_rules_from_tree,
    rule_fires,
    run_falcon,
    select_precise_rules,
)
from repro.features import (
    extract_feature_vecs,
    feature_matrix,
    get_features_for_blocking,
)
from repro.labeling import LabelingSession, OracleLabeler
from repro.ml import DecisionTreeClassifier, RandomForestClassifier


def _pool(n=300, seed=0):
    """A synthetic active-learning pool: 2 features, separable."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    labels = (X[:, 0] + X[:, 1] > 1.2).astype(int)
    pairs = [(f"a{i}", f"b{i}") for i in range(n)]
    gold = {pairs[i] for i in range(n) if labels[i] == 1}
    return pairs, X, gold


class TestActiveLearning:
    def test_learns_with_few_labels(self):
        pairs, X, gold = _pool()
        session = LabelingSession(OracleLabeler(gold))
        result = active_learn_forest(
            pairs, X, session, n_trees=8, seed_size=16, batch_size=8,
            max_iterations=8, random_state=0,
        )
        assert result.questions < len(pairs) / 2
        predictions = result.forest.predict(X)
        truth = np.array([1 if p in gold else 0 for p in pairs])
        accuracy = float(np.mean(predictions == truth))
        assert accuracy > 0.9

    def test_respects_stage_budget(self):
        pairs, X, gold = _pool()
        session = LabelingSession(OracleLabeler(gold))
        result = active_learn_forest(
            pairs, X, session, max_questions=25, random_state=0
        )
        assert result.questions <= 25

    def test_respects_session_budget(self):
        pairs, X, gold = _pool()
        session = LabelingSession(OracleLabeler(gold), budget=30)
        active_learn_forest(pairs, X, session, random_state=0)
        assert session.questions_asked <= 30

    def test_empty_pool_rejected(self):
        session = LabelingSession(OracleLabeler(set()))
        with pytest.raises(ConfigurationError):
            active_learn_forest([], np.zeros((0, 2)), session)

    def test_mismatched_shapes_rejected(self):
        session = LabelingSession(OracleLabeler(set()))
        with pytest.raises(ConfigurationError):
            active_learn_forest([("a", "b")], np.zeros((2, 2)), session)

    def test_no_budget_at_all(self):
        pairs, X, gold = _pool(n=10)
        session = LabelingSession(OracleLabeler(gold), budget=5)
        session.ask_many(pairs[:5])  # exhaust budget
        with pytest.raises(BudgetExhaustedError):
            active_learn_forest(pairs[5:], X[5:], session, random_state=0)

    def test_nan_features_tolerated(self):
        pairs, X, gold = _pool(n=100)
        X = X.copy()
        X[::7, 0] = np.nan
        session = LabelingSession(OracleLabeler(gold))
        result = active_learn_forest(pairs, X, session, random_state=0)
        assert result.forest.is_fitted


class TestRuleExtraction:
    def _fitted_tree(self):
        # feature 0 is the decisive one: label = f0 > 0.5
        rng = np.random.default_rng(3)
        X = rng.random((200, 2))
        y = (X[:, 0] > 0.5).astype(int)
        ds = make_em_dataset(book, 10, 10, seed=0)
        features = get_features_for_blocking(ds.ltable, ds.rtable)
        names = features.names()[:2]
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y, feature_names=names)
        return tree, features, names, X, y

    def test_tree_rules_end_in_negative_leaves(self):
        tree, features, names, X, y = self._fitted_tree()
        rules = extract_rules_from_tree(tree, features)
        assert rules
        fired_any = np.zeros(len(y), dtype=bool)
        for rule in rules:
            mask = rule_fires(rule, X, names)
            # every pair a rule fires on is predicted negative by the tree
            assert np.all(tree.predict(X[mask]) == 0)
            fired_any |= mask
        # rules cover exactly the tree's negative predictions
        assert np.array_equal(fired_any, tree.predict(X) == 0)

    def test_forest_rules_deduplicated(self):
        rng = np.random.default_rng(4)
        X = rng.random((150, 2))
        y = (X[:, 0] > 0.5).astype(int)
        ds = make_em_dataset(book, 10, 10, seed=0)
        features = get_features_for_blocking(ds.ltable, ds.rtable)
        names = features.names()[:2]
        forest = RandomForestClassifier(n_estimators=6, random_state=0).fit(
            X, y, feature_names=names
        )
        rules = extract_rules_from_forest(forest, features)
        signatures = [" AND ".join(str(p) for p in r.predicates) for r in rules]
        assert len(signatures) == len(set(signatures))

    def test_evaluate_and_select(self):
        tree, features, names, X, y = self._fitted_tree()
        rules = extract_rules_from_tree(tree, features)
        evaluations = evaluate_rules(rules, X, y, names)
        for evaluation in evaluations:
            assert 0.0 <= evaluation.precision <= 1.0
            assert evaluation.coverage >= 0
        selected = select_precise_rules(
            evaluations, min_precision=0.9, min_coverage=5, require_executable=False
        )
        for rule in selected:
            evaluation = next(e for e in evaluations if e.rule is rule)
            assert evaluation.precision >= 0.9
            assert evaluation.coverage >= 5

    def test_max_rules_cap(self):
        tree, features, names, X, y = self._fitted_tree()
        evaluations = evaluate_rules(extract_rules_from_tree(tree, features), X, y, names)
        selected = select_precise_rules(
            evaluations, min_precision=0.0, min_coverage=0,
            max_rules=1, require_executable=False,
        )
        assert len(selected) <= 1


class TestFalconEndToEnd:
    def test_restaurants_high_accuracy(self):
        ds = make_em_dataset(
            restaurant, 250, 250, match_fraction=0.5,
            dirtiness=DirtinessConfig.light(), seed=10, name="falcon-test",
        )
        session = LabelingSession(OracleLabeler(ds.gold_pairs), budget=500)
        result = run_falcon(
            ds, session,
            FalconConfig(sample_size=700, blocking_budget=120, matching_budget=220,
                         random_state=0),
        )
        predicted = result.match_pairs
        tp = len(predicted & ds.gold_pairs)
        precision = tp / len(predicted) if predicted else 0.0
        recall = tp / len(ds.gold_pairs)
        assert precision > 0.85
        assert recall > 0.7
        assert result.questions <= 500
        assert result.candset.num_rows < ds.ltable.num_rows * ds.rtable.num_rows / 10

    def test_rules_are_executable_and_named(self):
        ds = make_em_dataset(
            restaurant, 200, 200, dirtiness=DirtinessConfig.light(), seed=11,
        )
        session = LabelingSession(OracleLabeler(ds.gold_pairs), budget=400)
        result = run_falcon(ds, session, FalconConfig(sample_size=500, random_state=1))
        for rule in result.rules:
            assert rule.is_executable
            assert rule.name

    def test_questions_accounting(self):
        ds = make_em_dataset(
            restaurant, 150, 150, dirtiness=DirtinessConfig.light(), seed=12,
        )
        session = LabelingSession(OracleLabeler(ds.gold_pairs), budget=400)
        result = run_falcon(ds, session, FalconConfig(sample_size=400, random_state=2))
        assert result.questions == session.questions_asked
        assert (
            result.blocking_stage.questions + result.matching_stage.questions
            == result.questions
        )

    def test_alpha_affects_match_count(self):
        ds = make_em_dataset(
            restaurant, 150, 150, dirtiness=DirtinessConfig.light(), seed=13,
        )

        def falcon_with_alpha(alpha):
            session = LabelingSession(OracleLabeler(ds.gold_pairs), budget=400)
            config = FalconConfig(sample_size=400, alpha=alpha, random_state=3)
            return run_falcon(ds, session, config).matches.num_rows

        assert falcon_with_alpha(0.9) <= falcon_with_alpha(0.3)

    def test_scenario_vehicles_worse_than_clean(self):
        """The dirty-data story: Vehicles accuracy < a comparable clean task."""
        from repro.labeling import UncertainOracleLabeler

        vehicles = build_cloudmatcher_dataset(cloudmatcher_scenario("vehicles"))
        labeler = UncertainOracleLabeler(
            vehicles.gold_pairs, vehicles.notes["hard_pairs"], seed=0
        )
        session = LabelingSession(labeler, budget=600)
        result = run_falcon(
            vehicles, session,
            FalconConfig(sample_size=800, blocking_budget=150, matching_budget=300,
                         random_state=0),
        )
        predicted = result.match_pairs
        tp = len(predicted & vehicles.gold_pairs)
        recall = tp / len(vehicles.gold_pairs)
        assert recall < 0.9  # visibly degraded vs the clean scenarios
