"""Tests for repro.plan: stats store, optimizer, plan executor, and CLI.

Includes the issue-mandated property test: optimized and unoptimized
executions of the same graph (with commuting filter chains reordered by
observed selectivity) produce byte-identical artifact stores.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import AttrEquivalenceBlocker, OverlapBlocker
from repro.blocking.canopy import CanopyBlocker
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker
from repro.obs import use_registry
from repro.plan import (
    FORK_THRESHOLD_SECONDS,
    MODE_FORK,
    MODE_INLINE,
    NodeStats,
    StatsStore,
    execute_plan,
    get_stats_store,
    identity_fingerprint,
    identity_fingerprints,
    multi_blocker_graph,
    plan_graph,
    run_planned,
    use_stats_store,
)
from repro.plan.optimizer import _commuting_segments
from repro.runtime import NodeMemo, OperatorGraph, run_graph
from repro.table import Table


def predicate_filter(mult: int, mod: int, keep: int):
    """A commuting list filter: keep x where (x * mult) % mod < keep."""

    def fn(store, mult=mult, mod=mod, keep=keep):
        store["items"] = [x for x in store["items"] if (x * mult) % mod < keep]

    return fn


def filter_chain_graph(params, n_items=100, name="chain"):
    """source -> chain of commuting predicate filters over a list."""
    graph = OperatorGraph(name)
    graph.add(
        "source",
        lambda s, n=n_items: {"items": list(range(n))},
        outputs=("items",),
    )
    previous = ("source",)
    for i, (mult, mod, keep) in enumerate(params):
        node = f"f{i}"
        graph.add(
            node,
            predicate_filter(mult, mod, keep),
            deps=previous,
            outputs=("items",),
            commutes="items-filter",
        )
        previous = (node,)
    return graph


def warm_stats(graph_builder, stats=None, runs=1):
    """Run the graph unoptimized ``runs`` times, recording into ``stats``."""
    stats = stats if stats is not None else StatsStore()
    for _ in range(runs):
        result = run_graph(graph_builder())
        stats.record_result(result.graph, result)
    return stats


class TestIdentityFingerprints:
    def test_stable_and_key_salted(self):
        a = identity_fingerprint("g", "n", "k")
        assert a == identity_fingerprint("g", "n", "k")
        assert a != identity_fingerprint("g", "n", "other")
        assert a != identity_fingerprint("g", "other", "k")
        assert a != identity_fingerprint("other", "n", "k")

    def test_independent_of_position(self):
        """Unlike memo fingerprints, identity survives a chain reorder."""
        forward = filter_chain_graph([(1, 7, 3), (3, 11, 5)])
        backward = OperatorGraph("chain")
        backward.add("source", lambda s: {"items": []}, outputs=("items",))
        backward.add(
            "f1", predicate_filter(3, 11, 5), deps=("source",),
            outputs=("items",), commutes="items-filter",
        )
        backward.add(
            "f0", predicate_filter(1, 7, 3), deps=("f1",),
            outputs=("items",), commutes="items-filter",
        )
        assert identity_fingerprints(forward) == identity_fingerprints(backward)


class TestNodeStats:
    def test_derived_estimates(self):
        stats = NodeStats(runs=4, wall_seconds=2.0, rows_in=1000, rows_out=100)
        assert stats.mean_seconds() == pytest.approx(0.5)
        assert stats.selectivity() == pytest.approx(0.1)
        assert stats.rows_per_second() == pytest.approx(500.0)

    def test_no_evidence_returns_none(self):
        assert NodeStats().selectivity() is None
        assert NodeStats().rows_per_second() is None
        assert NodeStats().mean_seconds() == 0.0

    def test_dict_roundtrip(self):
        stats = NodeStats("g", "n", runs=2, wall_seconds=1.5, rows_in=10,
                          rows_out=3, cache_hits=1)
        assert NodeStats.from_dict(stats.to_dict()) == stats


class TestStatsStore:
    def test_record_result_folds_rows_and_seconds(self):
        stats = warm_stats(lambda: filter_chain_graph([(1, 2, 1)]))
        fp = identity_fingerprint("chain", "f0")
        entry = stats.get(fp)
        assert entry is not None
        assert entry.runs == 1
        assert entry.rows_in == 100
        assert entry.rows_out == 50  # even numbers survive (x % 2 < 1)
        assert entry.selectivity() == pytest.approx(0.5)

    def test_record_result_counts_cache_hits(self):
        graph = filter_chain_graph([(1, 2, 1)])
        memo = NodeMemo()
        run_graph(graph, memo=memo)
        result = run_graph(graph, memo=memo)  # all served from memo
        stats = StatsStore()
        stats.record_result(graph, result)
        entry = stats.get(identity_fingerprint("chain", "f0"))
        assert entry.cache_hits == 1 and entry.runs == 0

    def test_record_result_ignores_other_graphs(self):
        stats = StatsStore()
        result = run_graph(filter_chain_graph([(1, 2, 1)], name="other"))
        touched = stats.record_result(filter_chain_graph([(1, 2, 1)]), result)
        assert touched == 0 and len(stats) == 0

    def test_disk_roundtrip(self, tmp_path):
        path = tmp_path / "plan-stats.json"
        stats = StatsStore(path=path)
        warm_stats(lambda: filter_chain_graph([(1, 3, 1)]), stats=stats)
        stats.save()
        reloaded = StatsStore(path=path)
        assert len(reloaded) == len(stats) > 0
        fp = identity_fingerprint("chain", "f0")
        assert reloaded.get(fp) == stats.get(fp)

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "plan-stats.json"
        path.write_text("{not json", encoding="utf-8")
        store = StatsStore(path=path)
        assert len(store) == 0
        store.save()  # overwrites the corrupt file with a valid one
        assert json.loads(path.read_text(encoding="utf-8"))["nodes"] == {}

    def test_clear_disk(self, tmp_path):
        path = tmp_path / "plan-stats.json"
        stats = StatsStore(path=path)
        warm_stats(lambda: filter_chain_graph([(1, 3, 1)]), stats=stats)
        stats.save()
        assert path.exists()
        stats.clear(disk=True)
        assert len(stats) == 0 and not path.exists()

    def test_env_var_controls_default_path(self, tmp_path, monkeypatch):
        target = tmp_path / "stats.json"
        monkeypatch.setenv("REPRO_PLAN_STATS", str(target))
        from repro.plan import default_stats_path

        assert default_stats_path() == target

    def test_use_stats_store_swaps_default(self):
        outer = get_stats_store()
        with use_stats_store() as inner:
            assert get_stats_store() is inner
            assert inner is not outer
        assert get_stats_store() is outer


class TestCommutingSegments:
    def test_chain_detected(self):
        graph = filter_chain_graph([(1, 2, 1), (1, 3, 1), (1, 5, 1)])
        assert _commuting_segments(graph) == [["f0", "f1", "f2"]]

    def test_label_change_splits_segment(self):
        graph = OperatorGraph("g")
        graph.add("a", lambda s: {"x": []}, outputs=("x",))
        graph.add("b", lambda s: None, deps=("a",), commutes="one")
        graph.add("c", lambda s: None, deps=("b",), commutes="one")
        graph.add("d", lambda s: None, deps=("c",), commutes="two")
        graph.add("e", lambda s: None, deps=("d",), commutes="two")
        assert _commuting_segments(graph) == [["b", "c"], ["d", "e"]]

    def test_branching_breaks_segment(self):
        graph = OperatorGraph("g")
        graph.add("a", lambda s: None, commutes="f")
        graph.add("b", lambda s: None, deps=("a",), commutes="f")
        graph.add("c", lambda s: None, deps=("a",), commutes="f")  # fan-out
        segments = _commuting_segments(graph)
        assert all(len(segment) == 1 for segment in segments) or segments == []

    def test_unlabeled_nodes_never_segment(self):
        graph = filter_chain_graph([(1, 2, 1)])
        plain = OperatorGraph("g")
        plain.add("a", lambda s: None)
        plain.add("b", lambda s: None, deps=("a",))
        assert _commuting_segments(plain) == []
        assert _commuting_segments(graph) == [["f0"]] or _commuting_segments(
            graph
        ) == []


class TestPlanGraph:
    def test_cold_plan_is_noop(self):
        graph = filter_chain_graph([(1, 2, 1), (1, 3, 1)])
        plan = plan_graph(graph, stats=StatsStore())
        assert plan.optimized is False
        assert plan.graph is graph  # the very same object, not a copy
        assert plan.reorders == 0
        assert "no statistics yet" in plan.explain()

    def test_warm_plan_reorders_most_selective_first(self):
        # f0 keeps ~67%, f1 keeps ~20%: the optimizer must put f1 first.
        params = [(1, 3, 2), (1, 5, 1)]
        stats = warm_stats(lambda: filter_chain_graph(params))
        plan = plan_graph(filter_chain_graph(params), stats=stats)
        assert plan.optimized and plan.reorders == 1 and plan.moved_nodes == 2
        order = plan.graph.topological_order()
        assert order.index("f1") < order.index("f0")
        assert plan.decisions["f1"].moved_from == 2
        assert "(was #" in plan.explain()

    def test_already_optimal_order_untouched(self):
        params = [(1, 5, 1), (1, 3, 2)]  # most selective already first
        stats = warm_stats(lambda: filter_chain_graph(params))
        plan = plan_graph(filter_chain_graph(params), stats=stats)
        assert plan.optimized and plan.reorders == 0
        assert plan.graph.topological_order() == ["source", "f0", "f1"]

    def test_partial_evidence_keeps_user_order(self):
        # Stats exist for the graph but f1 has no row evidence: reorder
        # must not happen on guesses.
        params = [(1, 3, 2), (1, 5, 1)]
        stats = warm_stats(lambda: filter_chain_graph(params))
        fp = identity_fingerprint("chain", "f1")
        stats.get(fp).rows_in = 0
        plan = plan_graph(filter_chain_graph(params), stats=stats)
        assert plan.optimized and plan.reorders == 0
        assert plan.graph.topological_order() == ["source", "f0", "f1"]

    def test_mode_selection_from_measured_cost(self):
        graph = OperatorGraph("modes")
        graph.add("cheap", lambda s: {"a": [1]}, outputs=("a",), isolated=True)
        graph.add("heavy", lambda s: {"b": [2]}, outputs=("b",), isolated=True)
        graph.add("unsafe", lambda s: {"c": [3]}, outputs=("c",))
        stats = StatsStore()
        result = run_graph(graph)
        stats.record_result(graph, result)
        # Dial the recorded costs to either side of the fork threshold.
        stats.get(identity_fingerprint("modes", "cheap")).wall_seconds = 0.001
        stats.get(identity_fingerprint("modes", "heavy")).wall_seconds = (
            10 * FORK_THRESHOLD_SECONDS
        )
        plan = plan_graph(graph, stats=stats)
        assert plan.decisions["cheap"].mode == MODE_INLINE
        assert plan.decisions["heavy"].mode == MODE_FORK
        assert plan.decisions["unsafe"].mode == MODE_INLINE  # never fork-safe

    def test_warm_nodes_marked_from_memo(self):
        graph = filter_chain_graph([(1, 2, 1)])
        memo = NodeMemo()
        stats = StatsStore()
        result = run_graph(graph, memo=memo)
        stats.record_result(graph, result)
        plan = plan_graph(filter_chain_graph([(1, 2, 1)]), stats=stats, memo=memo)
        assert plan.warm_nodes() == {"source", "f0"}

    def test_metrics_emitted(self):
        params = [(1, 3, 2), (1, 5, 1)]
        stats = warm_stats(lambda: filter_chain_graph(params))
        with use_registry() as registry:
            plan_graph(filter_chain_graph(params), stats=StatsStore())
            plan_graph(filter_chain_graph(params), stats=stats)
            assert (
                registry.counter(
                    "plan_runs_total", graph="chain", optimized="false"
                ).value
                == 1
            )
            assert (
                registry.counter(
                    "plan_runs_total", graph="chain", optimized="true"
                ).value
                == 1
            )
            assert registry.counter("plan_reorders_total", graph="chain").value == 1


class TestExecutePlan:
    def test_cold_run_matches_run_graph(self):
        baseline = run_graph(filter_chain_graph([(1, 3, 2), (1, 5, 1)]))
        result = run_planned(
            filter_chain_graph([(1, 3, 2), (1, 5, 1)]), stats=StatsStore()
        )
        assert result.store == baseline.store

    def test_warm_run_reorders_and_matches(self):
        params = [(1, 3, 2), (2, 7, 1), (1, 5, 1)]
        baseline = run_graph(filter_chain_graph(params))
        stats = warm_stats(lambda: filter_chain_graph(params))
        plan = plan_graph(filter_chain_graph(params), stats=stats)
        assert plan.reorders == 1
        result = execute_plan(plan, stats=stats, record=False)
        assert pickle.dumps(result.store) == pickle.dumps(baseline.store)

    def test_run_planned_records_into_stats(self):
        stats = StatsStore()
        run_planned(filter_chain_graph([(1, 2, 1)]), stats=stats)
        assert identity_fingerprint("chain", "f0") in stats

    def test_run_planned_persists_stats(self, tmp_path):
        path = tmp_path / "plan-stats.json"
        stats = StatsStore(path=path)
        run_planned(filter_chain_graph([(1, 2, 1)]), stats=stats)
        assert path.exists()
        assert len(StatsStore(path=path)) == len(stats)

    def test_warm_nodes_served_before_waves(self):
        # Most-selective-first already: no reorder, so the structural memo
        # fingerprints survive planning and the whole run is cache-served.
        params = [(1, 5, 1), (1, 3, 2)]
        memo = NodeMemo()
        stats = StatsStore()
        baseline = run_graph(filter_chain_graph(params), memo=memo)
        stats.record_result(baseline.graph, baseline)
        plan = plan_graph(filter_chain_graph(params), stats=stats, memo=memo)
        assert plan.warm_nodes()
        result = execute_plan(plan, memo=memo, stats=stats, record=False)
        assert result.store == baseline.store
        assert all(record.cached for record in result.records.values())

    def test_estimated_vs_actual_histogram_observed(self):
        params = [(1, 3, 2), (1, 5, 1)]
        stats = warm_stats(lambda: filter_chain_graph(params))
        with use_registry() as registry:
            plan = plan_graph(filter_chain_graph(params), stats=stats)
            execute_plan(plan, stats=stats, record=False)
            histogram = registry.histogram(
                "plan_estimated_vs_actual_seconds", graph="chain"
            )
            assert histogram.count >= len(params)

    def test_on_error_halt_propagates_through_planner(self):
        graph = OperatorGraph("err")
        graph.add("boom", lambda s: (_ for _ in ()).throw(ValueError("x")))
        result = run_planned(graph, stats=StatsStore(), on_error="halt")
        assert not result.ok and isinstance(result.first_error, ValueError)


def table_pair():
    ltable = Table(
        {
            "id": [1, 2, 3, 4],
            "name": ["red widget", "blue widget", "green gadget", "red gadget"],
            "cat": ["a", "b", "a", "b"],
        }
    )
    rtable = Table(
        {
            "id": [10, 20, 30, 40],
            "name": ["red widget", "blue gadget", "green gadget", "blue widget"],
            "cat": ["a", "b", "a", "a"],
        }
    )
    return ltable, rtable


def candset_bytes(candset):
    return pickle.dumps({c: candset.column(c) for c in candset.columns})


class TestMultiBlockerPipeline:
    def test_blocker_filter_chain_byte_identical_after_reorder(self):
        ltable, rtable = table_pair()

        def build():
            return multi_blocker_graph(
                "mb",
                ltable,
                rtable,
                OverlapBlocker("name", overlap_size=1),
                [
                    ("f_name", OverlapBlocker("name", overlap_size=2)),
                    ("f_cat", AttrEquivalenceBlocker("cat")),
                ],
            )

        baseline = run_graph(build())
        stats = warm_stats(build)
        plan = plan_graph(build(), stats=stats)
        assert plan.optimized
        result = execute_plan(plan, stats=stats, record=False)
        assert candset_bytes(result.store["candset"]) == candset_bytes(
            baseline.store["candset"]
        )

    def test_key_salt_separates_datasets(self):
        ltable, rtable = table_pair()
        graphs = [
            multi_blocker_graph(
                "mb", ltable, rtable, OverlapBlocker("name"),
                [("f_cat", AttrEquivalenceBlocker("cat"))], key_salt=salt,
            )
            for salt in ("ds1", "ds2")
        ]
        fps = [set(identity_fingerprints(g).values()) for g in graphs]
        assert fps[0].isdisjoint(fps[1])


class TestCommutativityDeclarations:
    def test_pair_local_blockers_commute(self):
        assert OverlapBlocker("x").commutative is True
        assert AttrEquivalenceBlocker("x").commutative is True

    def test_table_level_blockers_do_not(self):
        assert SortedNeighborhoodBlocker("x").commutative is False
        assert CanopyBlocker("x").commutative is False

    def test_as_filter_operator_carries_group_label(self):
        operator = OverlapBlocker("x").as_filter_operator(name="f")
        assert operator.commutes == "candset-filter:candset"
        assert operator.outputs == ("candset",)
        non_commuting = SortedNeighborhoodBlocker("x").as_filter_operator(name="g")
        assert non_commuting.commutes == ""


filter_params = st.tuples(
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=2, max_value=11),
    st.integers(min_value=1, max_value=10),
)


class TestOptimizedEquivalenceProperty:
    @given(st.lists(filter_params, min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_optimized_store_byte_identical(self, params):
        baseline = run_graph(filter_chain_graph(params))
        stats = warm_stats(lambda: filter_chain_graph(params))
        plan = plan_graph(filter_chain_graph(params), stats=stats)
        assert plan.optimized
        result = execute_plan(plan, stats=stats, record=False)
        assert pickle.dumps(result.store) == pickle.dumps(baseline.store)
        # The plan is a permutation, never an addition or removal.
        assert sorted(plan.graph.topological_order()) == sorted(
            baseline.graph.topological_order()
        )


class TestPlanCLI:
    def write_tables(self, tmp_path):
        ltable, rtable = table_pair()
        from repro.table import write_csv

        lpath, rpath = tmp_path / "A.csv", tmp_path / "B.csv"
        write_csv(ltable, lpath)
        write_csv(rtable, rpath)
        return str(lpath), str(rpath)

    def test_explain_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        lpath, rpath = self.write_tables(tmp_path)
        stats = str(tmp_path / "stats.json")
        assert main(["plan", "explain", lpath, rpath, "--stats", stats]) == 0
        out = capsys.readouterr().out
        assert "no statistics yet" in out
        assert (
            main(["plan", "explain", lpath, rpath, "--stats", stats, "--execute"])
            == 0
        )
        assert main(["plan", "explain", lpath, rpath, "--stats", stats]) == 0
        out = capsys.readouterr().out
        assert "optimized" in out

    def test_clear(self, tmp_path, capsys):
        from repro.cli import main

        lpath, rpath = self.write_tables(tmp_path)
        stats = str(tmp_path / "stats.json")
        main(["plan", "explain", lpath, rpath, "--stats", stats, "--execute"])
        assert main(["plan", "clear", "--stats", stats]) == 0
        assert main(["plan", "clear", "--stats", stats]) == 1  # already gone


class TestFrontEndWiring:
    def test_workflow_optimize_flag(self):
        from repro.pipeline import MagellanWorkflow

        def build():
            workflow = MagellanWorkflow("wf")
            workflow.artifacts["items"] = list(range(50))
            workflow.add_step("wide", predicate_filter(1, 3, 2), commutes="items")
            workflow.add_step("narrow", predicate_filter(1, 5, 1), commutes="items")
            return workflow

        baseline = build().run()
        with use_stats_store() as stats:
            optimized_workflow = build()
            optimized_workflow.run(optimize=True)  # cold: records stats
            assert len(stats) > 0
            again = build()
            again.run(optimize=True)  # warm: may reorder
            assert again.artifacts["items"] == baseline["items"]

    def test_engine_optimize_flag_default_off(self):
        from repro.cloud.engines import ExecutionEngine, MetaManager
        from repro.cloud.services import ServiceKind

        assert ExecutionEngine(ServiceKind.BATCH).optimize is False
        manager = MetaManager(optimize=True)
        assert all(engine.optimize for engine in manager.engines.values())
