"""Tests for edit-based similarity measures (known values from literature)."""

import pytest

from repro.text.sim import (
    Affine,
    Hamming,
    Jaro,
    JaroWinkler,
    Levenshtein,
    NeedlemanWunsch,
    SmithWaterman,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "left,right,distance",
        [
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("same", "same", 0),
            ("a", "b", 1),
        ],
    )
    def test_distances(self, left, right, distance):
        assert Levenshtein().get_raw_score(left, right) == distance

    def test_symmetry(self):
        measure = Levenshtein()
        assert measure.get_raw_score("abcd", "dcba") == measure.get_raw_score(
            "dcba", "abcd"
        )

    def test_sim_score(self):
        assert Levenshtein().get_sim_score("", "") == 1.0
        assert Levenshtein().get_sim_score("abc", "abc") == 1.0
        assert Levenshtein().get_sim_score("abc", "xyz") == 0.0


class TestHamming:
    def test_basic(self):
        assert Hamming().get_raw_score("karolin", "kathrin") == 3

    def test_unequal_lengths(self):
        with pytest.raises(ValueError):
            Hamming().get_raw_score("ab", "abc")

    def test_sim(self):
        assert Hamming().get_sim_score("", "") == 1.0
        assert Hamming().get_sim_score("ab", "ab") == 1.0


class TestJaro:
    def test_known_value(self):
        # Classic example: MARTHA / MARHTA = 0.944...
        assert Jaro().get_raw_score("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-3)

    def test_dixon_dicksonx(self):
        assert Jaro().get_raw_score("DIXON", "DICKSONX") == pytest.approx(0.7667, abs=1e-3)

    def test_identical(self):
        assert Jaro().get_raw_score("abc", "abc") == 1.0

    def test_disjoint(self):
        assert Jaro().get_raw_score("abc", "xyz") == 0.0

    def test_empty(self):
        assert Jaro().get_raw_score("", "") == 1.0
        assert Jaro().get_raw_score("a", "") == 0.0


class TestJaroWinkler:
    def test_known_value(self):
        assert JaroWinkler().get_raw_score("MARTHA", "MARHTA") == pytest.approx(
            0.9611, abs=1e-3
        )

    def test_prefix_boost(self):
        jaro = Jaro().get_raw_score("prefixed", "prefixes")
        jaro_winkler = JaroWinkler().get_raw_score("prefixed", "prefixes")
        assert jaro_winkler > jaro

    def test_invalid_weight(self):
        import pytest as _pytest

        from repro.exceptions import ConfigurationError

        with _pytest.raises(ConfigurationError):
            JaroWinkler(prefix_weight=0.5)


class TestAlignment:
    def test_needleman_wunsch_identical(self):
        assert NeedlemanWunsch().get_raw_score("abc", "abc") == 3.0

    def test_needleman_wunsch_gap(self):
        # Aligning 'ab' with 'b': one gap (-1) + one match (+1) = 0
        assert NeedlemanWunsch(gap_cost=1.0).get_raw_score("ab", "b") == 0.0

    def test_needleman_wunsch_empty(self):
        assert NeedlemanWunsch(gap_cost=1.0).get_raw_score("abc", "") == -3.0

    def test_smith_waterman_substring(self):
        # Local alignment finds the common substring 'bcd' (score 3).
        assert SmithWaterman().get_raw_score("xbcdz", "ybcdw") == 3.0

    def test_smith_waterman_no_overlap(self):
        assert SmithWaterman().get_raw_score("aaa", "bbb") == 0.0

    def test_affine_matches_score(self):
        assert Affine().get_raw_score("abc", "abc") == 3.0

    def test_affine_gap_cheaper_to_extend(self):
        # One long gap should beat two short gaps under affine costs.
        affine = Affine(gap_start=2.0, gap_continuation=0.25)
        long_gap = affine.get_raw_score("abcdef", "af")
        assert long_gap > NeedlemanWunsch(gap_cost=2.0).get_raw_score("abcdef", "af")
