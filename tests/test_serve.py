"""Tests for repro.serve: the resident match server.

The load-bearing assertion is batch/online equivalence: every query
served by a :class:`MatchServer` — serially or from many concurrent
threads across tenants — returns candidates byte-identical (same ids,
same float scores, same order) to the corresponding rows of the batch
``set_sim_join`` over the same corpus.  The rest covers the scheduler:
micro-batching, per-tenant quotas, queue-depth backpressure, and the
metrics the server reports.
"""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import (
    BackpressureError,
    ConfigurationError,
    QuotaExceededError,
    ServiceError,
)
from repro.index import IndexStore, use_index_store
from repro.obs import use_registry
from repro.serve import MatchServer, ServeConfig
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer


def make_corpus(n: int = 200, seed: int = 0) -> Table:
    rng = random.Random(seed)
    first = ["dave", "dan", "joe", "mary", "ann", "sue", "zed", "kim"]
    last = ["smith", "wilson", "jones", "miller", "chen"]
    return Table(
        {
            "id": [f"b{i}" for i in range(n)],
            "v": [f"{rng.choice(first)} {rng.choice(last)}" for _ in range(n)],
        }
    )


def make_queries(n: int = 40, seed: int = 1) -> list[str]:
    rng = random.Random(seed)
    first = ["dave", "dan", "joe", "mary", "ann", "sue", "zed", "kim"]
    last = ["smith", "wilson", "jones", "miller", "chen"]
    queries = [f"{rng.choice(first)} {rng.choice(last)}" for _ in range(n)]
    queries += ["outofvocab tokens only", "", "dave"]
    return queries


def batch_reference(
    corpus: Table, queries: list[str], tokenizer, measure: str, threshold: float
) -> list[list[tuple]]:
    """Per-query ranked candidates derived from the batch join path."""
    query_table = Table(
        {"id": [f"q{i}" for i in range(len(queries))], "v": list(queries)}
    )
    joined = set_sim_join(
        query_table, corpus, "id", "id", "v", "v", tokenizer, measure, threshold
    )
    by_query: dict[str, list[tuple]] = {}
    for l_id, r_id, score in zip(
        joined.column("l_id"), joined.column("r_id"), joined.column("score")
    ):
        by_query.setdefault(l_id, []).append((r_id, score))
    # The join emits candidates in corpus-position order per query; the
    # server ranks by descending score with position-order ties — derive
    # the same ranking with a stable sort.
    return [
        sorted(by_query.get(f"q{i}", []), key=lambda pair: -pair[1])
        for i in range(len(queries))
    ]


class TestServedEqualsBatch:
    @pytest.mark.parametrize(
        "tokenizer,measure,threshold",
        [
            (WhitespaceTokenizer(return_set=True), "jaccard", 0.4),
            (QgramTokenizer(q=3, return_set=True), "cosine", 0.6),
            (WhitespaceTokenizer(return_set=True), "overlap", 1),
        ],
    )
    def test_serial_queries_byte_identical(self, tokenizer, measure, threshold):
        corpus = make_corpus()
        queries = make_queries()
        with use_index_store():
            server = MatchServer(
                corpus, "id", "v", tokenizer=tokenizer,
                config=ServeConfig(measure=measure, threshold=threshold, top_k=None),
            )
            with server:
                served = [server.match(q).candidates for q in queries]
            expected = batch_reference(corpus, queries, tokenizer, measure, threshold)
        assert served == expected

    def test_merge_kernel_matches_mask_kernel(self):
        corpus = make_corpus()
        queries = make_queries(20)
        tokenizer = WhitespaceTokenizer(return_set=True)
        results = {}
        for kernel in ("mask", "merge"):
            with use_index_store():
                config = ServeConfig(threshold=0.4, kernel=kernel, top_k=None)
                with MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config) as s:
                    results[kernel] = [s.match(q).candidates for q in queries]
        assert results["mask"] == results["merge"]

    def test_top_k_truncates_ranking(self):
        corpus = make_corpus()
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_index_store():
            config = ServeConfig(threshold=0.2, top_k=3)
            with MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config) as s:
                full = s.match("dave smith", top_k=10 ** 6).candidates
                top = s.match("dave smith").candidates
        assert top == full[:3]
        assert all(a[1] >= b[1] for a, b in zip(full, full[1:]))

    def test_concurrent_two_tenants_byte_identical(self):
        corpus = make_corpus(300)
        queries = make_queries(60)
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_registry() as registry, use_index_store():
            expected = batch_reference(corpus, queries, tokenizer, "jaccard", 0.4)
            config = ServeConfig(
                threshold=0.4, top_k=None, workers=2, max_batch=8,
                batch_linger_s=0.001, default_tenant_quota=None,
            )
            server = MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config)
            with server:
                def ask(item):
                    i, query = item
                    tenant = "alice" if i % 2 else "bob"
                    return server.match(query, tenant=tenant, timeout=30)

                with ThreadPoolExecutor(max_workers=16) as pool:
                    results = list(pool.map(ask, enumerate(queries)))
            assert [r.candidates for r in results] == expected
            served = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "serve_requests_total"
            )
            assert served == len(queries)
            assert registry.histogram("serve_request_seconds").count == len(queries)
            # Micro-batching actually coalesced at least some requests.
            assert registry.histogram("serve_batch_size").count <= len(queries)
            assert registry.gauge("serve_queue_depth").value == 0


class TestScheduler:
    def test_quota_rejection_is_deterministic_and_counted(self):
        corpus = make_corpus(50)
        with use_registry() as registry, use_index_store():
            config = ServeConfig(
                threshold=0.4, workers=0, tenant_quotas={"alice": 1},
                default_tenant_quota=2,
            )
            server = MatchServer(corpus, "id", "v", config=config).start()
            first = server.submit("dave smith", tenant="alice")
            with pytest.raises(QuotaExceededError):
                server.submit("ann chen", tenant="alice")
            # Another tenant is not throttled by alice's quota.
            other = server.submit("ann chen", tenant="bob")
            server.process_pending()
            assert first.result(1).candidates is not None
            assert other.result(1).candidates is not None
            rejected = registry.get(
                "serve_rejections_total", reason="quota", tenant="alice"
            )
            assert rejected is not None and rejected.value == 1
            server.stop()

    def test_backpressure_rejection_is_deterministic_and_counted(self):
        corpus = make_corpus(50)
        with use_registry() as registry, use_index_store():
            config = ServeConfig(
                threshold=0.4, workers=0, max_queue_depth=2,
                default_tenant_quota=None,
            )
            server = MatchServer(corpus, "id", "v", config=config).start()
            pending = [server.submit(f"dave smith {i}") for i in range(2)]
            with pytest.raises(BackpressureError):
                server.submit("one too many")
            assert server.process_pending() == 2
            for handle in pending:
                handle.result(1)
            rejected = registry.get(
                "serve_rejections_total", reason="backpressure", tenant="default"
            )
            assert rejected is not None and rejected.value == 1
            server.stop()

    def test_quota_released_after_completion(self):
        corpus = make_corpus(50)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4, workers=0, default_tenant_quota=1)
            server = MatchServer(corpus, "id", "v", config=config).start()
            first = server.submit("dave smith")
            server.process_pending()
            first.result(1)
            # The slot freed by completion admits the next request.
            second = server.submit("ann chen")
            server.process_pending()
            second.result(1)
            server.stop()

    def test_match_after_stop_raises(self):
        corpus = make_corpus(20)
        with use_registry(), use_index_store():
            server = MatchServer(
                corpus, "id", "v", config=ServeConfig(threshold=0.4)
            ).start()
            server.stop()
            with pytest.raises(ServiceError):
                server.match("dave smith")

    def test_match_before_start_raises(self):
        with use_registry(), use_index_store():
            server = MatchServer(
                make_corpus(20), "id", "v", config=ServeConfig(threshold=0.4)
            )
            with pytest.raises(ServiceError):
                server.match("dave smith")

    def test_invalid_config_rejected_at_construction(self):
        corpus = make_corpus(10)
        with pytest.raises(ConfigurationError):
            MatchServer(corpus, "id", "v", config=ServeConfig(threshold=1.5))
        with pytest.raises(ConfigurationError):
            MatchServer(corpus, "id", "v", config=ServeConfig(measure="nope"))
        with pytest.raises(ConfigurationError):
            MatchServer(corpus, "id", "v", config=ServeConfig(kernel="simd"))

    def test_stats_reports_latency_quantiles(self):
        corpus = make_corpus(50)
        with use_registry(), use_index_store():
            server = MatchServer(
                corpus, "id", "v", config=ServeConfig(threshold=0.4)
            )
            with server:
                for _ in range(5):
                    server.match("dave smith")
                stats = server.stats()
            assert stats["requests_total"] == 5
            assert stats["corpus_rows"] == 50
            assert 0 <= stats["latency_p50_s"] <= stats["latency_p99_s"]


class TestWarmStart:
    def test_two_servers_share_store_artifacts(self):
        corpus = make_corpus(100)
        with use_registry() as registry, use_index_store(IndexStore()) as store:
            with MatchServer(
                corpus, "id", "v", store=store, config=ServeConfig(threshold=0.4)
            ) as first:
                first.match("dave smith")
            reuses_before = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_reuses_total"
            )
            with MatchServer(
                corpus, "id", "v", store=store, config=ServeConfig(threshold=0.4)
            ) as second:
                second.match("dave smith")
            reuses_after = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_reuses_total"
            )
        assert reuses_after > reuses_before

    def test_server_shares_artifacts_with_batch_self_join(self):
        corpus = make_corpus(100)
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_registry() as registry, use_index_store():
            set_sim_join(
                corpus, corpus, "id", "id", "v", "v", tokenizer, "jaccard", 0.4
            )
            builds_before = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_builds_total"
            )
            with MatchServer(
                corpus, "id", "v", tokenizer=tokenizer,
                config=ServeConfig(threshold=0.4),
            ) as server:
                server.match("dave smith")
            builds_after = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_builds_total"
            )
        # Warmup found every artifact (records/tokens/encoding/prefix/
        # masks) already in the store: the batch join built them.
        assert builds_after == builds_before
