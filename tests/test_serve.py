"""Tests for repro.serve: the resident match server.

The load-bearing assertion is batch/online equivalence: every query
served by a :class:`MatchServer` — serially or from many concurrent
threads across tenants — returns candidates byte-identical (same ids,
same float scores, same order) to the corresponding rows of the batch
``set_sim_join`` over the same corpus.  The rest covers the scheduler
(micro-batching, per-tenant quotas, queue-depth backpressure, metrics)
and the live-index surface: upserts/deletes visible to the very next
query, compaction that never blocks serving.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import (
    BackpressureError,
    ConfigurationError,
    QuotaExceededError,
    ServiceError,
)
from repro.index import IndexStore, LiveIndex, use_index_store
from repro.obs import use_registry
from repro.serve import MatchServer, ServeConfig
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer


def make_corpus(n: int = 200, seed: int = 0) -> Table:
    rng = random.Random(seed)
    first = ["dave", "dan", "joe", "mary", "ann", "sue", "zed", "kim"]
    last = ["smith", "wilson", "jones", "miller", "chen"]
    return Table(
        {
            "id": [f"b{i}" for i in range(n)],
            "v": [f"{rng.choice(first)} {rng.choice(last)}" for _ in range(n)],
        }
    )


def make_queries(n: int = 40, seed: int = 1) -> list[str]:
    rng = random.Random(seed)
    first = ["dave", "dan", "joe", "mary", "ann", "sue", "zed", "kim"]
    last = ["smith", "wilson", "jones", "miller", "chen"]
    queries = [f"{rng.choice(first)} {rng.choice(last)}" for _ in range(n)]
    queries += ["outofvocab tokens only", "", "dave"]
    return queries


def batch_reference(
    corpus: Table, queries: list[str], tokenizer, measure: str, threshold: float
) -> list[list[tuple]]:
    """Per-query ranked candidates derived from the batch join path."""
    query_table = Table(
        {"id": [f"q{i}" for i in range(len(queries))], "v": list(queries)}
    )
    joined = set_sim_join(
        query_table, corpus, "id", "id", "v", "v", tokenizer, measure, threshold
    )
    by_query: dict[str, list[tuple]] = {}
    for l_id, r_id, score in zip(
        joined.column("l_id"), joined.column("r_id"), joined.column("score")
    ):
        by_query.setdefault(l_id, []).append((r_id, score))
    # The join emits candidates in corpus-position order per query; the
    # server ranks by descending score with position-order ties — derive
    # the same ranking with a stable sort.
    return [
        sorted(by_query.get(f"q{i}", []), key=lambda pair: -pair[1])
        for i in range(len(queries))
    ]


class TestServedEqualsBatch:
    @pytest.mark.parametrize(
        "tokenizer,measure,threshold",
        [
            (WhitespaceTokenizer(return_set=True), "jaccard", 0.4),
            (QgramTokenizer(q=3, return_set=True), "cosine", 0.6),
            (WhitespaceTokenizer(return_set=True), "overlap", 1),
        ],
    )
    def test_serial_queries_byte_identical(self, tokenizer, measure, threshold):
        corpus = make_corpus()
        queries = make_queries()
        with use_index_store():
            server = MatchServer(
                corpus, "id", "v", tokenizer=tokenizer,
                config=ServeConfig(measure=measure, threshold=threshold, top_k=None),
            )
            with server:
                served = [server.match(q).candidates for q in queries]
            expected = batch_reference(corpus, queries, tokenizer, measure, threshold)
        assert served == expected

    def test_merge_kernel_matches_mask_kernel(self):
        corpus = make_corpus()
        queries = make_queries(20)
        tokenizer = WhitespaceTokenizer(return_set=True)
        results = {}
        for kernel in ("mask", "merge"):
            with use_index_store():
                config = ServeConfig(threshold=0.4, kernel=kernel, top_k=None)
                with MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config) as s:
                    results[kernel] = [s.match(q).candidates for q in queries]
        assert results["mask"] == results["merge"]

    def test_top_k_truncates_ranking(self):
        corpus = make_corpus()
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_index_store():
            config = ServeConfig(threshold=0.2, top_k=3)
            with MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config) as s:
                full = s.match("dave smith", top_k=10 ** 6).candidates
                top = s.match("dave smith").candidates
        assert top == full[:3]
        assert all(a[1] >= b[1] for a, b in zip(full, full[1:]))

    def test_concurrent_two_tenants_byte_identical(self):
        corpus = make_corpus(300)
        queries = make_queries(60)
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_registry() as registry, use_index_store():
            expected = batch_reference(corpus, queries, tokenizer, "jaccard", 0.4)
            config = ServeConfig(
                threshold=0.4, top_k=None, workers=2, max_batch=8,
                batch_linger_s=0.001, default_tenant_quota=None,
            )
            server = MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config)
            with server:
                def ask(item):
                    i, query = item
                    tenant = "alice" if i % 2 else "bob"
                    return server.match(query, tenant=tenant, timeout=30)

                with ThreadPoolExecutor(max_workers=16) as pool:
                    results = list(pool.map(ask, enumerate(queries)))
            assert [r.candidates for r in results] == expected
            served = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "serve_requests_total"
            )
            assert served == len(queries)
            assert registry.histogram("serve_request_seconds").count == len(queries)
            # Micro-batching actually coalesced at least some requests.
            assert registry.histogram("serve_batch_size").count <= len(queries)
            assert registry.gauge("serve_queue_depth").value == 0


class TestScheduler:
    def test_quota_rejection_is_deterministic_and_counted(self):
        corpus = make_corpus(50)
        with use_registry() as registry, use_index_store():
            config = ServeConfig(
                threshold=0.4, workers=0, tenant_quotas={"alice": 1},
                default_tenant_quota=2,
            )
            server = MatchServer(corpus, "id", "v", config=config).start()
            first = server.submit("dave smith", tenant="alice")
            with pytest.raises(QuotaExceededError):
                server.submit("ann chen", tenant="alice")
            # Another tenant is not throttled by alice's quota.
            other = server.submit("ann chen", tenant="bob")
            server.process_pending()
            assert first.result(1).candidates is not None
            assert other.result(1).candidates is not None
            rejected = registry.get(
                "serve_rejections_total", reason="quota", tenant="alice"
            )
            assert rejected is not None and rejected.value == 1
            server.stop()

    def test_backpressure_rejection_is_deterministic_and_counted(self):
        corpus = make_corpus(50)
        with use_registry() as registry, use_index_store():
            config = ServeConfig(
                threshold=0.4, workers=0, max_queue_depth=2,
                default_tenant_quota=None,
            )
            server = MatchServer(corpus, "id", "v", config=config).start()
            pending = [server.submit(f"dave smith {i}") for i in range(2)]
            with pytest.raises(BackpressureError):
                server.submit("one too many")
            assert server.process_pending() == 2
            for handle in pending:
                handle.result(1)
            rejected = registry.get(
                "serve_rejections_total", reason="backpressure", tenant="default"
            )
            assert rejected is not None and rejected.value == 1
            server.stop()

    def test_quota_released_after_completion(self):
        corpus = make_corpus(50)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4, workers=0, default_tenant_quota=1)
            server = MatchServer(corpus, "id", "v", config=config).start()
            first = server.submit("dave smith")
            server.process_pending()
            first.result(1)
            # The slot freed by completion admits the next request.
            second = server.submit("ann chen")
            server.process_pending()
            second.result(1)
            server.stop()

    def test_match_after_stop_raises(self):
        corpus = make_corpus(20)
        with use_registry(), use_index_store():
            server = MatchServer(
                corpus, "id", "v", config=ServeConfig(threshold=0.4)
            ).start()
            server.stop()
            with pytest.raises(ServiceError):
                server.match("dave smith")

    def test_match_before_start_raises(self):
        with use_registry(), use_index_store():
            server = MatchServer(
                make_corpus(20), "id", "v", config=ServeConfig(threshold=0.4)
            )
            with pytest.raises(ServiceError):
                server.match("dave smith")

    def test_invalid_config_rejected_at_construction(self):
        corpus = make_corpus(10)
        with pytest.raises(ConfigurationError):
            MatchServer(corpus, "id", "v", config=ServeConfig(threshold=1.5))
        with pytest.raises(ConfigurationError):
            MatchServer(corpus, "id", "v", config=ServeConfig(measure="nope"))
        with pytest.raises(ConfigurationError):
            MatchServer(corpus, "id", "v", config=ServeConfig(kernel="simd"))

    def test_stats_reports_latency_quantiles(self):
        corpus = make_corpus(50)
        with use_registry(), use_index_store():
            server = MatchServer(
                corpus, "id", "v", config=ServeConfig(threshold=0.4)
            )
            with server:
                for _ in range(5):
                    server.match("dave smith")
                stats = server.stats()
            assert stats["requests_total"] == 5
            assert stats["corpus_rows"] == 50
            assert 0 <= stats["latency_p50_s"] <= stats["latency_p99_s"]


class TestWarmStart:
    def test_two_servers_share_store_artifacts(self):
        corpus = make_corpus(100)
        with use_registry() as registry, use_index_store(IndexStore()) as store:
            with MatchServer(
                corpus, "id", "v", store=store, config=ServeConfig(threshold=0.4)
            ) as first:
                first.match("dave smith")
            reuses_before = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_reuses_total"
            )
            with MatchServer(
                corpus, "id", "v", store=store, config=ServeConfig(threshold=0.4)
            ) as second:
                second.match("dave smith")
            reuses_after = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_reuses_total"
            )
        assert reuses_after > reuses_before

    def test_server_shares_artifacts_with_batch_self_join(self):
        corpus = make_corpus(100)
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_registry() as registry, use_index_store():
            # kernel="dict" pins the scalar artifact chain — the one the
            # server's warmup (and its scalar probe path) consumes; an
            # "auto" join may build the columnar arrays/arrayindex
            # artifacts instead, which the warmup legitimately doesn't
            # need until its first batched probe.
            set_sim_join(
                corpus, corpus, "id", "id", "v", "v", tokenizer, "jaccard", 0.4,
                kernel="dict",
            )
            builds_before = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_builds_total"
            )
            with MatchServer(
                corpus, "id", "v", tokenizer=tokenizer,
                config=ServeConfig(threshold=0.4),
            ) as server:
                server.match("dave smith")
            builds_after = sum(
                value
                for (name, _), value in registry.counters().items()
                if name == "index_builds_total"
            )
        # Warmup found every artifact (records/tokens/encoding/prefix/
        # masks) already in the store: the batch join built them.
        assert builds_after == builds_before


class TestLiveMutation:
    def test_upsert_visible_to_next_query(self):
        corpus = make_corpus(50)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4, top_k=None)
            with MatchServer(corpus, "id", "v", config=config) as server:
                before = server.match("zelda zimmerman").candidates
                assert before == []
                assert server.upsert("z1", "zelda zimmerman") is True
                after = server.match("zelda zimmerman").candidates
                assert after == [("z1", 1.0)]

    def test_upsert_equals_restarted_server(self):
        # A query after N upserts answers exactly like a server freshly
        # started over the grown corpus.
        corpus = make_corpus(80)
        queries = make_queries(15)
        extra = [(f"n{i}", f"dave smith {i}") for i in range(10)]
        tokenizer = WhitespaceTokenizer(return_set=True)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4, top_k=None)
            with MatchServer(corpus, "id", "v", tokenizer=tokenizer, config=config) as live:
                for key, value in extra:
                    live.upsert(key, value)
                live.delete("b0")
                served = [live.match(q).candidates for q in queries]
            grown = Table(
                {
                    "id": corpus.column("id")[1:] + [k for k, _ in extra],
                    "v": corpus.column("v")[1:] + [v for _, v in extra],
                }
            )
            with use_index_store():
                with MatchServer(
                    grown, "id", "v", tokenizer=tokenizer, config=config
                ) as fresh:
                    expected = [fresh.match(q).candidates for q in queries]
        assert served == expected

    def test_delete_removes_from_results(self):
        corpus = make_corpus(50)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4, top_k=None)
            with MatchServer(corpus, "id", "v", config=config) as server:
                hits = server.match(corpus.column("v")[0]).candidates
                assert any(key == "b0" for key, _ in hits)
                assert server.delete("b0") is True
                hits = server.match(corpus.column("v")[0]).candidates
                assert not any(key == "b0" for key, _ in hits)

    def test_mutation_requires_running_server(self):
        corpus = make_corpus(10)
        with use_registry(), use_index_store():
            server = MatchServer(corpus, "id", "v", config=ServeConfig(threshold=0.4))
            with pytest.raises(ServiceError):
                server.upsert("x", "dave smith")
            with pytest.raises(ServiceError):
                server.delete("b0")
            with pytest.raises(ServiceError):
                server.compact()

    def test_stats_reports_live_index_state(self):
        corpus = make_corpus(30)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4)
            with MatchServer(corpus, "id", "v", config=config) as server:
                server.upsert("n1", "dave smith")
                server.upsert("n2", "ann chen")
                server.delete("b0")
                stats = server.stats()
                assert stats["corpus_rows"] == 31
                assert stats["delta_rows"] == 2
                assert stats["tombstones"] == 1
                assert stats["generation"] == 3
                server.compact()
                stats = server.stats()
                assert stats["compactions"] == 1
                assert stats["delta_rows"] == 0
                assert stats["tombstones"] == 0

    def test_queries_served_during_compaction(self):
        """Compaction's rebuild must not block the serving path: queries
        issued while the rebuild is parked return correct, current
        results, and an upsert racing the compaction survives the swap."""
        corpus = make_corpus(60)
        with use_registry(), use_index_store():
            config = ServeConfig(threshold=0.4, top_k=None)
            with MatchServer(corpus, "id", "v", config=config) as server:
                server.upsert("z1", "zelda zimmerman")
                expected = server.match("zelda zimmerman").candidates
                in_build = threading.Event()
                release = threading.Event()
                original = LiveIndex._build_base

                def slow_build(self, table):
                    segment = original(self, table)
                    in_build.set()
                    release.wait(5)
                    return segment

                LiveIndex._build_base = slow_build
                try:
                    compactor = threading.Thread(target=server.compact)
                    compactor.start()
                    assert in_build.wait(5)
                    # Mid-compaction: queries answer from the old
                    # segments, and mutations still land.
                    assert server.match("zelda zimmerman").candidates == expected
                    server.upsert("z2", "zelda q zimmerman")
                    mid = server.match("zelda zimmerman").candidates
                    assert [key for key, _ in mid] == ["z1", "z2"]
                finally:
                    release.set()
                    compactor.join(10)
                    LiveIndex._build_base = original
                # After the swap: both records present, compaction counted.
                after = server.match("zelda zimmerman").candidates
                assert [key for key, _ in after] == [key for key, _ in mid]
                assert server.stats()["compactions"] == 1
