"""Tests for Smurf: label-free blocking, labeling-effort reduction."""

import random

import pytest

from repro.datasets import DirtinessConfig, make_string_dataset
from repro.datasets.vocab import CITIES, FIRST_NAMES, LAST_NAMES
from repro.labeling import LabelingSession, OracleLabeler
from repro.smurf import SmurfConfig, run_smurf


def string_dataset(seed=0, n=400):
    rng = random.Random(seed)
    strings = sorted(  # sorted: set iteration order is hash-randomized
        {
            f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)} {rng.choice(CITIES)}"
            for _ in range(n)
        }
    )
    return make_string_dataset(
        strings, match_fraction=0.6, dirtiness=DirtinessConfig.light(), seed=seed
    )


class TestSmurf:
    def test_accuracy(self):
        ds = string_dataset(seed=1)
        session = LabelingSession(OracleLabeler(ds.gold_pairs))
        result = run_smurf(ds, session, config=SmurfConfig(random_state=0))
        predicted = result.match_pairs
        tp = len(predicted & ds.gold_pairs)
        assert tp / len(predicted) > 0.85
        assert tp / len(ds.gold_pairs) > 0.7

    def test_no_labels_spent_on_blocking(self):
        """Smurf's defining property: candidates come from an unsupervised
        join, so every question belongs to the matching stage."""
        ds = string_dataset(seed=2)
        session = LabelingSession(OracleLabeler(ds.gold_pairs))
        result = run_smurf(ds, session, config=SmurfConfig(random_state=0))
        assert result.questions == result.matching_stage.questions
        assert result.questions == session.questions_asked

    def test_join_threshold_from_config_grid(self):
        ds = string_dataset(seed=3)
        config = SmurfConfig(random_state=0)
        session = LabelingSession(OracleLabeler(ds.gold_pairs))
        result = run_smurf(ds, session, config=config)
        assert result.join_threshold in config.thresholds

    def test_candidate_budget_respected(self):
        ds = string_dataset(seed=4)
        config = SmurfConfig(candidate_budget_factor=2.0, random_state=0)
        session = LabelingSession(OracleLabeler(ds.gold_pairs))
        result = run_smurf(ds, session, config=config)
        budget = 2.0 * max(ds.ltable.num_rows, ds.rtable.num_rows)
        # The chosen threshold's candidate set fits the budget (unless even
        # the tightest threshold overflowed, flagged by the top threshold).
        assert (
            result.candset.num_rows <= budget
            or result.join_threshold == config.thresholds[0]
        )

    def test_missing_column_rejected(self):
        ds = string_dataset(seed=5)
        session = LabelingSession(OracleLabeler(ds.gold_pairs))
        with pytest.raises(Exception):
            run_smurf(ds, session, column="no_such_column")

    def test_uses_fewer_labels_than_falcon_at_same_accuracy(self):
        """The paper's headline: Smurf cuts labeling effort (43-76% there)
        by skipping the blocking-stage labels, at comparable accuracy."""
        from repro.falcon import FalconConfig, run_falcon

        ds = string_dataset(seed=6)
        falcon_session = LabelingSession(OracleLabeler(ds.gold_pairs))
        falcon = run_falcon(
            ds, falcon_session,
            FalconConfig(sample_size=800, blocking_budget=150,
                         matching_budget=200, random_state=0),
        )
        assert falcon.blocking_stage.questions > 0

        smurf_session = LabelingSession(OracleLabeler(ds.gold_pairs))
        smurf = run_smurf(
            ds, smurf_session,
            config=SmurfConfig(
                matching_budget=falcon.matching_stage.questions, random_state=0
            ),
        )
        assert smurf.questions < falcon.questions

        def f1_of(pairs):
            tp = len(pairs & ds.gold_pairs)
            precision = tp / len(pairs) if pairs else 0.0
            recall = tp / len(ds.gold_pairs)
            if precision + recall == 0:
                return 0.0
            return 2 * precision * recall / (precision + recall)

        assert f1_of(smurf.match_pairs) >= f1_of(falcon.match_pairs) - 0.15
