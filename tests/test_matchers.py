"""Tests for ML matchers, rule matchers, selection, and debugging."""

import numpy as np
import pytest

from repro.blocking import OverlapBlocker
from repro.exceptions import ConfigurationError, NotFittedError
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.matchers import (
    BooleanRuleMatcher,
    DTMatcher,
    LogRegMatcher,
    MLRuleMatcher,
    MatchRule,
    NBMatcher,
    RFMatcher,
    SVMMatcher,
    ThresholdMatcher,
    debug_wrong_predictions,
    eval_matches,
    feature_separation_report,
    select_matcher,
)
from repro.table import Table

ALL_MATCHERS = [DTMatcher, RFMatcher, LogRegMatcher, SVMMatcher, NBMatcher]


@pytest.fixture
def labeled_fv(small_person_dataset):
    """A labeled feature-vector table over a blocked candidate set."""
    ds = small_person_dataset
    candset = OverlapBlocker("name", overlap_size=1).block_tables(
        ds.ltable, ds.rtable, "id", "id"
    )
    labels = [
        1 if pair in ds.gold_pairs else 0
        for pair in zip(candset["ltable_id"], candset["rtable_id"])
    ]
    candset.add_column("label", labels)
    features = get_features_for_matching(ds.ltable, ds.rtable)
    fv = extract_feature_vecs(candset, features, label_column="label")
    return fv, features.names()


class TestMLMatchers:
    @pytest.mark.parametrize("matcher_cls", ALL_MATCHERS)
    def test_fit_predict(self, matcher_cls, labeled_fv):
        fv, names = labeled_fv
        matcher = matcher_cls()
        matcher.fit(fv, names)
        result = matcher.predict(fv, append=False)
        assert "predicted" in result.columns
        assert set(result.column("predicted")) <= {0, 1}

    def test_rf_learns_names(self, labeled_fv):
        fv, names = labeled_fv
        matcher = RFMatcher(n_estimators=8, random_state=0).fit(fv, names)
        report = eval_matches(matcher.predict(fv, append=False).add_column("label", fv["label"]))
        assert report["f1"] > 0.8

    def test_predict_before_fit(self, labeled_fv):
        fv, _ = labeled_fv
        with pytest.raises(NotFittedError):
            RFMatcher().predict(fv)

    def test_predict_proba_range(self, labeled_fv):
        fv, names = labeled_fv
        matcher = RFMatcher(n_estimators=5, random_state=0).fit(fv, names)
        proba = matcher.predict_proba(fv)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_clone_unfitted(self, labeled_fv):
        fv, names = labeled_fv
        matcher = DTMatcher().fit(fv, names)
        clone = matcher.clone()
        with pytest.raises(NotFittedError):
            clone.predict(fv)

    def test_abstract_base_unusable(self):
        from repro.matchers.ml_matcher import MLMatcher

        with pytest.raises(TypeError):
            MLMatcher()

    def test_predict_appends_in_place_by_default(self, labeled_fv):
        fv, names = labeled_fv
        matcher = DTMatcher().fit(fv, names)
        matcher.predict(fv, output_column="p")
        assert "p" in fv.columns


class TestSelection:
    def test_select_returns_fitted_best(self, labeled_fv):
        fv, names = labeled_fv
        result = select_matcher(
            [DTMatcher(), RFMatcher(n_estimators=8, random_state=0)],
            fv, names, n_splits=3,
        )
        assert result.best_score > 0.5
        assert result.scores.num_rows == 2
        prediction = result.best_matcher.predict(fv, append=False)
        assert "predicted" in prediction.columns

    def test_metric_validation(self, labeled_fv):
        fv, names = labeled_fv
        with pytest.raises(ConfigurationError):
            select_matcher([DTMatcher()], fv, names, metric="auc")

    def test_empty_matchers(self, labeled_fv):
        fv, names = labeled_fv
        with pytest.raises(ConfigurationError):
            select_matcher([], fv, names)


class TestRuleMatchers:
    def _feature_table(self, dataset):
        return get_features_for_matching(dataset.ltable, dataset.rtable)

    def test_threshold_matcher(self, labeled_fv):
        fv, _ = labeled_fv
        matcher = ThresholdMatcher("name_jaccard_ws", 0.9)
        result = matcher.predict(fv, append=False)
        for value, prediction in zip(result["name_jaccard_ws"], result["predicted"]):
            expected = 1 if (value == value and value >= 0.9) else 0
            assert prediction == expected

    def test_boolean_rule_matcher(self, small_person_dataset, labeled_fv):
        fv, _ = labeled_fv
        features = self._feature_table(small_person_dataset)
        matcher = BooleanRuleMatcher()
        matcher.add_rule("name_jaccard_ws >= 0.99", features)
        result = matcher.predict(fv, append=False)
        report = eval_matches(result.add_column("label", fv["label"]))
        assert report["precision"] > 0.9  # exact-name rule is precise

    def test_boolean_rule_no_rules(self, labeled_fv):
        fv, _ = labeled_fv
        with pytest.raises(ConfigurationError):
            BooleanRuleMatcher().predict(fv)

    def test_ml_rule_negative_override(self, small_person_dataset, labeled_fv):
        fv, names = labeled_fv
        features = self._feature_table(small_person_dataset)
        veto = MatchRule.parse("state_exact <= 0.5", features, name="different-state")
        matcher = MLRuleMatcher(
            RFMatcher(n_estimators=5, random_state=0), negative_rules=[veto]
        )
        matcher.fit(fv, names)
        result = matcher.predict(fv, append=False, output_column="p")
        for row in result.rows():
            if row["state_exact"] is not None and row["state_exact"] <= 0.5:
                assert row["p"] == 0

    def test_ml_rule_positive_override(self, small_person_dataset, labeled_fv):
        fv, names = labeled_fv
        features = self._feature_table(small_person_dataset)
        force = MatchRule.parse("name_jaccard_ws >= 0.999", features)
        matcher = MLRuleMatcher(
            DTMatcher(), positive_rules=[force]
        )
        matcher.fit(fv, names)
        result = matcher.predict(fv, append=False, output_column="p")
        for row in result.rows():
            value = row["name_jaccard_ws"]
            if value is not None and value == value and value >= 0.999:
                assert row["p"] == 1


class TestEvalAndDebug:
    def test_eval_matches_counts(self):
        fv = Table(
            {
                "_id": [0, 1, 2, 3],
                "label": [1, 1, 0, 0],
                "predicted": [1, 0, 1, 0],
            }
        )
        report = eval_matches(fv)
        assert report["precision"] == 0.5
        assert report["recall"] == 0.5
        assert report["false_positives"] == [2]
        assert report["false_negatives"] == [1]

    def test_debug_wrong_predictions_ranked(self, labeled_fv):
        fv, names = labeled_fv
        matcher = RFMatcher(n_estimators=5, random_state=0).fit(fv, names)
        report = debug_wrong_predictions(matcher, fv, top_k=10)
        assert set(report.columns) == {"_id", "gold", "predicted", "match_probability"}
        # every reported row is actually wrong
        for row in report.rows():
            assert row["gold"] != row["predicted"]

    def test_feature_separation_report(self, labeled_fv):
        fv, names = labeled_fv
        report = feature_separation_report(fv, names)
        assert report.num_rows == len(names)
        separations = report.column("separation")
        assert separations == sorted(separations, reverse=True)
        # name similarity must separate matches from non-matches
        top_features = report.column("feature")[:5]
        assert any("name" in f for f in top_features)
