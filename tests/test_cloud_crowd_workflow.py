"""Integration test: a crowd-labeled EM workflow through CloudMatcher 1.0."""

import pytest

from repro.cloud import CloudMatcher10, ServiceKind
from repro.crowd import CrowdLabeler
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import book
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession


@pytest.fixture
def crowd_task():
    dataset = make_em_dataset(
        book, 200, 200, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=41, name="crowd-task",
    )
    crowd = CrowdLabeler(dataset.gold_pairs, replication=3, seed=0)
    session = LabelingSession(crowd, budget=500)
    return dataset, crowd, session


def test_crowd_workflow_end_to_end(crowd_task):
    dataset, crowd, session = crowd_task
    matcher = CloudMatcher10(on_cloud=True)
    matcher.submit(
        dataset, session,
        FalconConfig(sample_size=400, blocking_budget=100, matching_budget=200,
                     random_state=0),
        use_crowd=True,
    )
    makespan, results = matcher.run()
    result = results[0]

    # Crowd paid per assignment (3 per question) and took wall-clock time.
    assert crowd.assignments == 3 * crowd.questions_asked
    assert result.cost.crowd_dollars == pytest.approx(
        crowd.assignments * crowd.price_per_assignment
    )
    assert result.cost.labeling_seconds > 0
    # On-cloud run: compute dollars are a number, not '-'.
    assert result.cost.compute_dollars is not None
    # Crowd noise tolerated: accuracy still decent on a clean-ish task.
    assert result.accuracy["precision"] > 0.8
    assert result.accuracy["recall"] > 0.6
    # The labeling fragments ran on the crowd engine.
    crowd_engine = matcher.metamanager.engines[ServiceKind.CROWD]
    executed_services = {
        call.service.name
        for record in crowd_engine.executions
        for call in record.fragment.calls
    }
    assert "active_learn_blocking" in executed_services
    assert "active_learn_matching" in executed_services


def test_crowd_workflow_cost_row_renders(crowd_task):
    dataset, crowd, session = crowd_task
    matcher = CloudMatcher10(on_cloud=True)
    matcher.submit(dataset, session, FalconConfig(sample_size=300, random_state=0),
                   use_crowd=True)
    _, results = matcher.run(score_against_gold=False)
    row = results[0].cost.as_row()
    assert row["Crowd"].startswith("$")
    assert row["Compute"].startswith("$")
    assert row["Questions"].isdigit()
