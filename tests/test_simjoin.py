"""Tests for the filtered similarity joins: filters and equivalence with
the brute-force reference implementation."""

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.simjoin import (
    TokenOrder,
    edit_distance_join,
    naive_set_sim_join,
    overlap_lower_bound,
    prefix_length,
    set_sim_join,
    similarity,
    size_bounds,
)
from repro.table import Table
from repro.text.sim import Levenshtein
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer


class TestFilters:
    def test_size_bounds_jaccard(self):
        lower, upper = size_bounds("jaccard", 0.8, 10)
        assert lower == 8
        assert upper == pytest.approx(12.5)

    def test_size_bounds_cosine(self):
        lower, upper = size_bounds("cosine", 0.5, 8)
        assert lower == 2
        assert upper == 32.0

    def test_size_bounds_dice(self):
        lower, upper = size_bounds("dice", 0.8, 12)
        assert lower == 8
        assert upper == pytest.approx(18.0)

    def test_size_bounds_overlap(self):
        lower, upper = size_bounds("overlap", 3, 10)
        assert lower == 3
        assert upper == math.inf

    def test_overlap_lower_bound_jaccard(self):
        # jaccard >= 0.5 over sizes 4 and 4 requires overlap >= 8/3 -> 3
        assert overlap_lower_bound("jaccard", 0.5, 4, 4) == 3

    def test_unknown_measure(self):
        with pytest.raises(ConfigurationError):
            size_bounds("euclid", 0.5, 4)

    def test_prefix_length_zero_size(self):
        assert prefix_length("jaccard", 0.5, 0) == 0

    def test_prefix_length_bounded_by_size(self):
        for size in range(1, 20):
            length = prefix_length("jaccard", 0.7, size)
            assert 0 <= length <= size

    def test_similarity_verification(self):
        assert similarity("jaccard", {"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert similarity("overlap", {"a", "b"}, {"b"}) == 1.0
        assert similarity("jaccard", set(), set()) == 1.0
        assert similarity("overlap", set(), set()) == 0.0

    def test_token_order_rare_first(self):
        order = TokenOrder([["common", "rare"], ["common"], ["common", "x"]])
        ordered = order.order(["common", "rare"])
        assert ordered[0] == "rare"

    def test_token_order_unknown_tokens_first(self):
        order = TokenOrder([["a", "a"], ["a"]])
        assert order.order(["a", "never_seen"])[0] == "never_seen"


def _random_tables(seed: int, n: int = 60):
    rng = random.Random(seed)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]

    def sentence():
        return " ".join(rng.sample(words, rng.randrange(1, 6)))

    ltable = Table({"id": [f"a{i}" for i in range(n)], "v": [sentence() for _ in range(n)]})
    rtable = Table({"id": [f"b{i}" for i in range(n)], "v": [sentence() for _ in range(n)]})
    return ltable, rtable


def _pairs(result):
    return set(zip(result.column("l_id"), result.column("r_id")))


class TestSetSimJoin:
    @pytest.mark.parametrize("measure,threshold", [
        ("jaccard", 0.5),
        ("jaccard", 0.8),
        ("cosine", 0.6),
        ("dice", 0.7),
        ("overlap", 2),
    ])
    def test_matches_naive(self, measure, threshold):
        ltable, rtable = _random_tables(seed=hash((measure, threshold)) % 1000)
        tokenizer = WhitespaceTokenizer(return_set=True)
        fast = set_sim_join(ltable, rtable, "id", "id", "v", "v", tokenizer, measure, threshold)
        slow = naive_set_sim_join(ltable, rtable, "id", "id", "v", "v", tokenizer, measure, threshold)
        assert _pairs(fast) == _pairs(slow)

    def test_no_prefix_filter_same_result(self):
        ltable, rtable = _random_tables(seed=5)
        tokenizer = WhitespaceTokenizer(return_set=True)
        with_filter = set_sim_join(ltable, rtable, "id", "id", "v", "v", tokenizer, "jaccard", 0.6)
        without = set_sim_join(
            ltable, rtable, "id", "id", "v", "v", tokenizer, "jaccard", 0.6,
            use_prefix_filter=False,
        )
        assert _pairs(with_filter) == _pairs(without)

    def test_scores_meet_threshold(self):
        ltable, rtable = _random_tables(seed=9)
        result = set_sim_join(
            ltable, rtable, "id", "id", "v", "v",
            WhitespaceTokenizer(return_set=True), "jaccard", 0.5,
        )
        assert all(score >= 0.5 for score in result.column("score"))

    def test_missing_values_skipped(self):
        ltable = Table({"id": [1, 2], "v": [None, "x y"]})
        rtable = Table({"id": [3], "v": ["x y"]})
        result = set_sim_join(
            ltable, rtable, "id", "id", "v", "v",
            WhitespaceTokenizer(return_set=True), "jaccard", 0.5,
        )
        assert _pairs(result) == {(2, 3)}

    def test_empty_output_schema(self):
        ltable = Table({"id": [1], "v": ["aa"]})
        rtable = Table({"id": [2], "v": ["zz"]})
        result = set_sim_join(
            ltable, rtable, "id", "id", "v", "v",
            WhitespaceTokenizer(return_set=True), "jaccard", 0.9,
        )
        assert result.num_rows == 0
        assert result.columns == ["_id", "l_id", "r_id", "score"]

    def test_invalid_threshold(self):
        ltable, rtable = _random_tables(seed=1, n=3)
        with pytest.raises(ConfigurationError):
            set_sim_join(
                ltable, rtable, "id", "id", "v", "v",
                WhitespaceTokenizer(return_set=True), "jaccard", 1.5,
            )
        with pytest.raises(ConfigurationError):
            set_sim_join(
                ltable, rtable, "id", "id", "v", "v",
                WhitespaceTokenizer(return_set=True), "overlap", 0.5,
            )

    def test_qgram_join(self):
        ltable = Table({"id": [1], "v": ["wisconsin"]})
        rtable = Table({"id": [2, 3], "v": ["wisconsim", "california"]})
        result = set_sim_join(
            ltable, rtable, "id", "id", "v", "v",
            QgramTokenizer(q=3, return_set=True), "jaccard", 0.5,
        )
        assert _pairs(result) == {(1, 2)}


class TestEditDistanceJoin:
    def test_finds_close_strings(self):
        ltable = Table({"id": [1, 2], "v": ["kitten", "apple"]})
        rtable = Table({"id": [3, 4], "v": ["sitting", "orange"]})
        result = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=3)
        assert _pairs(result) == {(1, 3)}
        assert result.column("score") == [3]

    def test_matches_naive_levenshtein(self):
        ltable, rtable = _random_tables(seed=13, n=40)
        result = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=4)
        measure = Levenshtein()
        expected = set()
        for l_id, l_value in zip(ltable.column("id"), ltable.column("v")):
            for r_id, r_value in zip(rtable.column("id"), rtable.column("v")):
                if measure.get_raw_score(l_value, r_value) <= 4:
                    expected.add((l_id, r_id))
        assert _pairs(result) == expected

    def test_threshold_zero_is_equality(self):
        ltable = Table({"id": [1], "v": ["abc"]})
        rtable = Table({"id": [2, 3], "v": ["abc", "abd"]})
        result = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=0)
        assert _pairs(result) == {(1, 2)}

    def test_short_strings_reachable(self):
        # Strings shorter than q have no q-grams; they must still join.
        ltable = Table({"id": [1], "v": ["a"]})
        rtable = Table({"id": [2], "v": ["ab"]})
        result = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=1, q=2)
        assert _pairs(result) == {(1, 2)}

    def test_negative_threshold(self):
        ltable = Table({"id": [1], "v": ["a"]})
        with pytest.raises(ConfigurationError):
            edit_distance_join(ltable, ltable, "id", "id", "v", "v", threshold=-1)
