"""Equivalence suite: the columnar array kernels == the dict kernels.

The array backend's acceptance bar is *byte identity*: for every public
entry point that grew a ``kernel=`` knob, the ``"array"`` path must
produce exactly the rows, scores (same float bits), survivor sets, and
output ordering of the scalar ``"dict"`` path.  The hypothesis suites
below drive randomized corpora through both backends and compare the
results with plain ``==`` — which, on floats, is the bit-identity check.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf.arrays as arrays_module
from repro.exceptions import ConfigurationError
from repro.index.delta import LiveIndex
from repro.index.store import get_index_store
from repro.perf.arrays import (
    HAVE_ARRAYS,
    batch_cosine,
    choose_backend,
    kernel_override,
    use_kernel,
)
from repro.perf.parallel import MIN_FORK_ITEMS, run_sharded
from repro.perf.kernels import make_overlap_bound, make_scorer
from repro.simjoin import probe_encoded, probe_encoded_batch, set_sim_join
from repro.table.table import Table
from repro.text.tokenizers import WhitespaceTokenizer
from repro.text.vectorize import cosine, l2_normalize

pytestmark = pytest.mark.skipif(
    not HAVE_ARRAYS, reason="numpy/scipy not available"
)

# Small shared alphabet so random tables actually collide.
WORDS = ["alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"]

values_strategy = st.lists(
    st.one_of(
        st.just(None),
        st.just(""),
        st.lists(st.sampled_from(WORDS), max_size=5).map(" ".join),
    ),
    min_size=1,
    max_size=25,
)

measure_threshold = st.one_of(
    st.tuples(st.just("jaccard"), st.sampled_from([0.3, 0.5, 0.8])),
    st.tuples(st.just("cosine"), st.sampled_from([0.4, 0.7])),
    st.tuples(st.just("dice"), st.sampled_from([0.5, 0.9])),
    st.tuples(st.just("overlap"), st.sampled_from([1, 2, 3])),
)


def _table(prefix: str, values: list) -> Table:
    return Table(
        {"id": [f"{prefix}{i}" for i in range(len(values))], "v": values}
    )


def _join_rows(ltable, rtable, measure, threshold, kernel, **kwargs):
    result = set_sim_join(
        ltable,
        rtable,
        "id",
        "id",
        "v",
        "v",
        WhitespaceTokenizer(return_set=True),
        measure=measure,
        threshold=threshold,
        kernel=kernel,
        **kwargs,
    )
    return list(zip(result.column("l_id"), result.column("r_id"), result.column("score")))


class TestJoinEquivalence:
    """set_sim_join: array backend == dict backend, bit for bit."""

    @given(values_strategy, values_strategy, measure_threshold)
    @settings(max_examples=40, deadline=None)
    def test_rows_scores_and_order_match(self, left, right, mt):
        measure, threshold = mt
        ltable, rtable = _table("l", left), _table("r", right)
        expected = _join_rows(ltable, rtable, measure, threshold, "dict")
        assert _join_rows(ltable, rtable, measure, threshold, "array") == expected

    @given(values_strategy, values_strategy, measure_threshold)
    @settings(max_examples=15, deadline=None)
    def test_without_prefix_filter(self, left, right, mt):
        measure, threshold = mt
        ltable, rtable = _table("l", left), _table("r", right)
        expected = _join_rows(
            ltable, rtable, measure, threshold, "dict", use_prefix_filter=False
        )
        got = _join_rows(
            ltable, rtable, measure, threshold, "array", use_prefix_filter=False
        )
        assert got == expected

    def test_forked_equals_serial_equals_dict(self):
        # Big enough to clear the MIN_FORK_ITEMS gate, so n_jobs=2
        # genuinely forks the array probe shards.
        left = [" ".join(WORDS[i % 3 : i % 3 + 3]) for i in range(120)]
        right = [" ".join(WORDS[i % 5 : i % 5 + 2]) for i in range(150)]
        ltable, rtable = _table("l", left), _table("r", right)
        expected = _join_rows(ltable, rtable, "jaccard", 0.4, "dict")
        serial = _join_rows(ltable, rtable, "jaccard", 0.4, "array")
        forked = _join_rows(ltable, rtable, "jaccard", 0.4, "array", n_jobs=2)
        assert serial == expected
        assert forked == expected


class TestProbeBatchEquivalence:
    """probe_encoded_batch == per-query probe_encoded, counts included."""

    def _index_parts(self, right, measure, threshold):
        store = get_index_store()
        rtable = _table("r", right)
        tokenizer = WhitespaceTokenizer(return_set=True)
        encoding = store.pair_encoding(
            store.tokenized_column(rtable, "id", "v", tokenizer),
            store.tokenized_column(rtable, "id", "v", tokenizer),
        )
        dict_index = store.prefix_index(encoding, measure, threshold).index
        array_index = store.array_index(encoding, measure, threshold)
        return encoding, dict_index, array_index

    @given(
        values_strategy,
        measure_threshold,
        st.integers(min_value=0, max_value=3),  # extra out-of-universe tokens
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_scalar(self, right, mt, oov):
        measure, threshold = mt
        encoding, dict_index, array_index = self._index_parts(
            right, measure, threshold
        )
        scorer = make_scorer(measure)
        bound = make_overlap_bound(measure, threshold)
        # Queries: each corpus record probed back at itself, with `oov`
        # phantom tokens inflating the true size (the serving contract
        # for query tokens outside the corpus universe) — plus the empty
        # query and an all-OOV query.
        queries = [(ids, len(ids) + oov) for _, ids in encoding.right]
        queries += [((), 0), ((), 2)]
        skip = {0, 2} if len(encoding.right) > 2 else None
        expected = [
            probe_encoded(
                ids, size, dict_index, encoding.right, None,
                scorer, bound, measure, threshold, skip=skip,
            )
            for ids, size in queries
        ]
        got = probe_encoded_batch(
            queries, array_index, measure, threshold, skip=skip
        )
        assert got == expected


sparse_vector = st.dictionaries(
    st.integers(min_value=0, max_value=40),
    st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    max_size=8,
).map(l2_normalize)


class TestCosineEquivalence:
    """batch_cosine accumulates the exact floats of the scalar cosine."""

    @given(sparse_vector, st.lists(sparse_vector, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_scalar(self, query, corpus):
        from repro.perf.arrays import SparseColumns

        scores = batch_cosine(query, SparseColumns(corpus))
        for position, vector in enumerate(corpus):
            assert float(scores[position]) == cosine(query, vector)


class TestAnnEquivalence:
    """AnnIndex batch paths == scalar paths, including after pickling."""

    @given(st.lists(sparse_vector, min_size=1, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_signature_probe_search(self, vectors):
        import pickle

        from repro.index.ann import AnnIndex

        records = [(f"r{i}", v) for i, v in enumerate(vectors)]
        index = AnnIndex("k", records, n_bands=4, band_bits=3)
        queries = vectors + [{}]
        assert index.signature_batch(queries) == [
            index.signature(v) for v in queries
        ]
        assert index.probe_batch(queries) == [index.probe(v) for v in queries]
        assert index.search_batch(queries, threshold=0.2, top_k=3) == [
            index.search(v, threshold=0.2, top_k=3) for v in queries
        ]
        clone = pickle.loads(pickle.dumps(index))
        assert clone.search_batch(queries, threshold=0.2, top_k=3) == (
            index.search_batch(queries, threshold=0.2, top_k=3)
        )


class TestLiveIndexEquivalence:
    """LiveIndex batched mutation/probe == scalar, per record."""

    def _base(self):
        values = [" ".join(WORDS[i % 4 : i % 4 + 3]) for i in range(80)]
        return Table({"id": [f"b{i}" for i in range(80)], "v": values})

    @given(values_strategy)
    @settings(max_examples=15, deadline=None)
    def test_search_batch(self, queries):
        live = LiveIndex.from_table(
            self._base(), "id", "v", threshold=0.4, kernel="array"
        )
        live.upsert("x1", "alpha beta newtoken")
        live.delete("b3")
        assert live.search_batch(queries) == [live.search(q) for q in queries]

    def test_upsert_many_and_delete_many_match_sequential(self):
        items = [
            (f"n{i}", " ".join(WORDS[i % 6 : i % 6 + 2]) if i % 7 else None)
            for i in range(40)
        ]
        one = LiveIndex.from_table(self._base(), "id", "v", threshold=0.4, name="a")
        many = LiveIndex.from_table(self._base(), "id", "v", threshold=0.4, name="b")
        indexed = sum(one.upsert(k, v) for k, v in items)
        assert many.upsert_many(items) == indexed
        assert one._delta.postings == many._delta.postings
        removed = sum(one.delete(k) for k in ["n1", "n2", "missing", "b0"])
        assert many.delete_many(["n1", "n2", "missing", "b0"]) == removed
        probes = ["alpha beta", "gamma delta eps", "", None, "zeta"]
        assert [one.search(q) for q in probes] == [many.search(q) for q in probes]


class TestServerEquivalence:
    """A micro-batched MatchServer answers exactly like a scalar one."""

    def test_batched_results_equal_scalar(self):
        from repro.serve import MatchServer, ServeConfig

        corpus = Table(
            {
                "id": [f"c{i}" for i in range(90)],
                "v": [" ".join(WORDS[i % 5 : i % 5 + 3]) for i in range(90)],
            }
        )
        queries = [" ".join(WORDS[i % 7 : i % 7 + 2]) for i in range(30)] + ["", "qqq"]
        results = {}
        for kernel, max_batch in (("dict", 1), ("array", 16)):
            config = ServeConfig(
                threshold=0.4, kernel=kernel, max_batch=max_batch, workers=0
            )
            with MatchServer(corpus, "id", "v", config=config) as server:
                pending = [server.submit(q) for q in queries]
                server.process_pending()
                results[kernel] = [
                    (p.result().candidates, p.result().n_candidates)
                    for p in pending
                ]
        assert results["array"] == results["dict"]

    def test_server_bulk_upsert_delete(self):
        from repro.serve import MatchServer, ServeConfig

        corpus = Table({"id": ["c0"], "v": ["alpha beta"]})
        config = ServeConfig(threshold=0.3, workers=0)
        with MatchServer(corpus, "id", "v", config=config) as server:
            assert server.upsert_many([("u1", "alpha beta"), ("u2", None)]) == 1
            assert server.delete_many(["c0", "nope"]) == 1
            pending = server.submit("alpha beta")
            server.process_pending()
            assert [key for key, _ in pending.result().candidates] == ["u1"]


class TestKernelResolution:
    """The kernel= knob, the auto policy, and the plan override hook."""

    def test_explicit_backends(self):
        assert choose_backend("dict", 10**6, 10**6) == "dict"
        assert choose_backend("mask", 10**6, 10**6) == "dict"
        assert choose_backend("merge", 10**6, 10**6) == "dict"
        assert choose_backend("array", 1, 1) == "array"

    def test_auto_policy_thresholds(self):
        assert choose_backend("auto", 1000, 1000) == "array"
        assert choose_backend("auto", 1, 1000) == "dict"  # tiny probe side
        assert choose_backend("auto", 1000, 8) == "dict"  # tiny corpus

    def test_use_kernel_override(self):
        assert kernel_override() is None
        with use_kernel("dict"):
            assert choose_backend("auto", 10**6, 10**6) == "dict"
            with use_kernel("array"):
                assert choose_backend("auto", 1, 1) == "array"
            assert kernel_override() == "dict"
        assert kernel_override() is None

    def test_array_requires_array_stack(self, monkeypatch):
        monkeypatch.setattr(arrays_module, "HAVE_ARRAYS", False)
        with pytest.raises(ConfigurationError):
            choose_backend("array", 100, 100)
        # "auto" degrades to dict instead of raising.
        assert choose_backend("auto", 10**6, 10**6) == "dict"

    def test_plan_assigns_kernel_hints(self):
        from repro.plan.optimizer import NodePlan

        assert NodePlan("n").kernel is None  # default: no override


class TestShardingGate:
    """run_sharded skips the pool when the work wouldn't pay for it."""

    def test_small_sized_work_runs_inline(self):
        pids = run_sharded(
            [[1, 2, 3], [4, 5, 6]], lambda shard: os.getpid(), n_jobs=2
        )
        assert pids == [os.getpid()] * 2

    def test_large_work_forks(self):
        half = MIN_FORK_ITEMS  # two shards of this clear the gate
        pids = run_sharded(
            [range(half), range(half)], lambda shard: os.getpid(), n_jobs=2
        )
        assert any(pid != os.getpid() for pid in pids)

    def test_range_shards_report_sizes(self):
        from repro.perf.parallel import _total_items

        assert _total_items([range(10, 20), range(3)]) == 13
        assert _total_items([iter([1])]) is None
