"""Tests for repro.obs: metrics registry, exporters, tracing, and sinks.

Includes the two issue-mandated property tests: serial vs. parallel
executions of an instrumented graph produce identical metric counters
(schedule invariance), and Prometheus text output round-trips counter and
histogram values through the parser.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    Tracer,
    event_span_sink,
    get_registry,
    get_tracer,
    parse_prometheus_text,
    read_metrics_jsonl,
    to_prometheus_text,
    trace_span,
    use_registry,
    use_tracer,
    write_metrics_jsonl,
    write_prometheus_text,
)
from repro.runtime import (
    EventStream,
    OperatorGraph,
    ParallelExecutor,
    SerialExecutor,
    run_graph,
)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc()
        registry.counter("requests_total").inc(4)
        assert registry.counter("requests_total").value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("n").inc(-1)

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", join="set_sim").inc()
        registry.counter("calls_total", join="edit_distance").inc(2)
        assert registry.counter("calls_total", join="set_sim").value == 1
        assert registry.counter("calls_total", join="edit_distance").value == 2
        assert len(registry) == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError, match="registered as"):
            registry.gauge("x")

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(101.05)
        cumulative = dict(histogram.cumulative())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 3
        assert cumulative[math.inf] == 4

    def test_quantile_empty_histogram_is_zero(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(1.0) == 0.0

    def test_quantile_rejects_out_of_range_q(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.5)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError, match="quantile"):
                histogram.quantile(bad)

    def test_quantile_single_observation(self):
        # One observation in the (0.1, 1.0] bucket: every quantile
        # interpolates within that bucket toward its upper boundary.
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.5)
        assert histogram.quantile(1.0) == pytest.approx(1.0)
        assert histogram.quantile(0.5) == pytest.approx(0.55)

    def test_quantile_first_bucket_interpolates_from_zero(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        assert histogram.quantile(0.5) == pytest.approx(0.05)
        assert histogram.quantile(1.0) == pytest.approx(0.1)

    def test_quantile_overflow_bucket_clamps_to_last_boundary(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        for _ in range(5):
            histogram.observe(50.0)  # all mass above the last boundary
        assert histogram.quantile(0.01) == 1.0
        assert histogram.quantile(1.0) == 1.0

    def test_quantile_q1_reaches_highest_occupied_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.quantile(1.0) == pytest.approx(10.0)
        assert histogram.quantile(1 / 3) == pytest.approx(0.1)

    def test_timer_observes_into_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        assert registry.histogram("t").count == 1

    def test_use_registry_swaps_default(self):
        outer = get_registry()
        with use_registry() as inner:
            assert get_registry() is inner
            inner.counter("scoped").inc()
        assert get_registry() is outer
        assert outer.get("scoped") is None

    def test_snapshot_and_counters(self):
        registry = MetricsRegistry()
        registry.counter("a", k="v").inc(3)
        registry.gauge("g").set(1.5)
        snapshot = registry.snapshot()
        assert {entry["name"] for entry in snapshot} == {"a", "g"}
        assert registry.counters() == {("a", (("k", "v"),)): 3.0}


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("probes_total", join="set_sim").inc(17)
        registry.gauge("survival_ratio", join="set_sim").set(0.25)
        histogram = registry.histogram("seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        return registry

    def test_jsonl_roundtrip(self, tmp_path):
        registry = self._populated()
        path = write_metrics_jsonl(registry, tmp_path / "metrics.jsonl")
        rows = read_metrics_jsonl(path)
        assert {row["name"] for row in rows} == {
            "probes_total", "survival_ratio", "seconds",
        }
        by_name = {row["name"]: row for row in rows}
        assert by_name["probes_total"]["value"] == 17
        assert by_name["seconds"]["count"] == 4
        # Every line is independently parseable JSON.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert all(json.loads(line) for line in lines)

    def test_prometheus_text_shape(self, tmp_path):
        registry = self._populated()
        text = to_prometheus_text(registry)
        assert "# TYPE probes_total counter" in text
        assert 'probes_total{join="set_sim"} 17.0' in text
        assert 'seconds_bucket{le="+Inf"} 4' in text
        assert "seconds_count 4" in text
        path = write_prometheus_text(registry, tmp_path / "metrics.prom")
        assert path.read_text(encoding="utf-8") == text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", attr='we"ird\\nam\ne').inc()
        text = to_prometheus_text(registry)
        parsed = parse_prometheus_text(text)
        ((_, labels),) = list(parsed["samples"])
        assert dict(labels) == {"attr": 'we"ird\\nam\ne'}

    @settings(max_examples=25, deadline=None)
    @given(
        counts=st.dictionaries(
            st.text(
                alphabet="abcdefghij_", min_size=1, max_size=8
            ).filter(lambda s: not s.startswith("_")),
            st.integers(min_value=0, max_value=10**9),
            min_size=1,
            max_size=5,
        ),
        observations=st.lists(
            st.floats(
                min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            max_size=20,
        ),
    )
    def test_prometheus_roundtrip_property(self, counts, observations):
        registry = MetricsRegistry()
        for label_value, count in counts.items():
            registry.counter("ops_total", kind=label_value).inc(count)
        histogram = registry.histogram("latency_seconds")
        for value in observations:
            histogram.observe(value)
        parsed = parse_prometheus_text(to_prometheus_text(registry))
        assert parsed["types"]["ops_total"] == "counter"
        for label_value, count in counts.items():
            key = ("ops_total", (("kind", label_value),))
            assert parsed["samples"][key] == pytest.approx(float(count))
        assert parsed["samples"][("latency_seconds_count", ())] == len(observations)
        assert parsed["samples"][("latency_seconds_sum", ())] == pytest.approx(
            math.fsum(observations), rel=1e-9, abs=1e-9
        )
        # Cumulative bucket counts reconstruct exactly.
        for boundary in DEFAULT_BUCKETS:
            key = ("latency_seconds_bucket", (("le", repr(float(boundary))),))
            expected = sum(1 for value in observations if value <= boundary)
            assert parsed["samples"][key] == expected


def instrumented_graph():
    """A diamond whose operators increment counters through the registry."""
    graph = OperatorGraph("obs-diamond")

    def work(name, updates):
        def op(store):
            get_registry().counter("node_runs_total", node=name).inc()
            get_registry().counter("rows_total").inc(updates["rows"])
            return {name: updates["rows"]}

        return op

    graph.add("a", work("a", {"rows": 2}), outputs=("a",))
    graph.add("b", work("b", {"rows": 10}), deps=("a",), outputs=("b",))
    graph.add("c", work("c", {"rows": 20}), deps=("a",), outputs=("c",))
    graph.add("d", work("d", {"rows": 1}), deps=("b", "c"), outputs=("d",))
    return graph


class TestScheduleInvariance:
    def _counters(self, executor):
        with use_registry() as registry:
            run_graph(instrumented_graph(), executor=executor)
            return registry.counters()

    def test_serial_and_parallel_counters_identical(self):
        serial = self._counters(SerialExecutor())
        parallel = self._counters(ParallelExecutor(n_jobs=2))
        assert serial == parallel
        assert serial[("rows_total", ())] == 33.0

    @settings(max_examples=10, deadline=None)
    @given(n_jobs=st.integers(min_value=1, max_value=4))
    def test_any_worker_count_matches_serial(self, n_jobs):
        serial = self._counters(SerialExecutor())
        parallel = self._counters(ParallelExecutor(n_jobs=n_jobs))
        assert serial == parallel

    def test_runtime_sink_metrics_are_schedule_invariant(self):
        # The auto-subscribed runtime sink counts node events; those
        # counters must not depend on the executor either.
        def run(executor):
            with use_registry() as registry:
                run_graph(instrumented_graph(), executor=executor)
                return {
                    key: value
                    for key, value in registry.counters().items()
                    if key[0] == "runtime_node_events_total"
                }

        assert run(SerialExecutor()) == run(ParallelExecutor(n_jobs=3))


class TestRuntimeSink:
    def test_run_graph_feeds_registry_automatically(self):
        with use_registry() as registry:
            run_graph(instrumented_graph())
            key = ("runtime_runs_total", (("graph", "obs-diamond"),))
            assert registry.counters()[key] == 1.0
            histogram = registry.get("runtime_node_seconds", graph="obs-diamond")
            assert histogram.count == 4

    def test_shared_stream_not_double_counted(self):
        # The metamanager reuses one EventStream across fragments; the
        # per-run sink must subscribe and unsubscribe around its own run.
        events = EventStream()
        with use_registry() as registry:
            run_graph(instrumented_graph(), events=events)
            run_graph(instrumented_graph(), events=events)
            key = ("runtime_runs_total", (("graph", "obs-diamond"),))
            assert registry.counters()[key] == 2.0
            assert registry.get("runtime_node_seconds", graph="obs-diamond").count == 8


class TestTracing:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", run="1"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans[1], tracer.spans[0]
        assert outer.name == "outer" and outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.labels == {"run": "1"}
        assert outer.seconds >= inner.seconds >= 0.0

    def test_span_records_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert "nope" in tracer.spans[0].error

    def test_trace_span_uses_default_tracer(self):
        with use_tracer() as tracer:
            with trace_span("step", stage="blocking"):
                assert get_tracer() is tracer
        assert [span.name for span in tracer.spans] == ["step"]

    def test_event_span_sink_mirrors_nodes(self):
        tracer = Tracer()
        events = EventStream()
        events.subscribe(event_span_sink(tracer))
        run_graph(instrumented_graph(), events=events)
        names = {span.name for span in tracer.spans}
        assert names == {f"obs-diamond/{n}" for n in "abcd"}
        assert all(span.labels["node"] in "abcd" for span in tracer.spans)

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tracer.write_jsonl(tmp_path / "spans.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["name"] == "only"

    def test_event_span_sink_preserves_zero_timestamp(self):
        # A legitimate at == 0.0 (epoch) must not be replaced by
        # wall-clock now; only None means "unset".
        from repro.runtime.events import CACHE_HIT, NODE_FINISH, NODE_START, RunEvent

        tracer = Tracer()
        sink = event_span_sink(tracer)
        sink(RunEvent(NODE_START, "g", node="n", at=0.0))
        sink(RunEvent(NODE_FINISH, "g", node="n", at=0.5, wall_seconds=0.5))
        sink(RunEvent(CACHE_HIT, "g", node="m", at=0.0, wall_seconds=0.0))
        assert [span.start for span in tracer.spans] == [0.0, 0.0]

    def test_event_span_sink_fills_missing_timestamp(self):
        from repro.runtime.events import NODE_FINISH, NODE_START, RunEvent

        tracer = Tracer()
        sink = event_span_sink(tracer)
        event = RunEvent(NODE_START, "g", node="n")
        event.at = None
        sink(event)
        sink(RunEvent(NODE_FINISH, "g", node="n", at=1.0))
        assert tracer.spans[0].start > 0.0


class TestThreadSafety:
    """Regression tests for the serving-driven concurrency contracts."""

    N_THREADS = 8
    N_OPS = 5000

    def _run_threads(self, target) -> None:
        import threading

        threads = [
            threading.Thread(target=target, args=(i,)) for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_inc_exact_under_contention(self):
        # value += amount is a read-modify-write; without the instrument
        # lock, interleaved threads silently drop increments.
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")

        def hammer(_: int) -> None:
            for _ in range(self.N_OPS):
                counter.inc()

        self._run_threads(hammer)
        assert counter.value == self.N_THREADS * self.N_OPS

    def test_interning_through_registry_under_contention(self):
        # Hammering through the intern path too: the (name, labels)
        # lookup must always land on the same instrument object.
        registry = MetricsRegistry()

        def hammer(_: int) -> None:
            for _ in range(1000):
                registry.counter("requests_total", tenant="t").inc()

        self._run_threads(hammer)
        assert registry.counter("requests_total", tenant="t").value == self.N_THREADS * 1000
        assert len(registry) == 1

    def test_histogram_observe_exact_under_contention(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("seconds", buckets=(1.0, 2.0))

        def hammer(i: int) -> None:
            for _ in range(1000):
                histogram.observe(0.5)

        self._run_threads(hammer)
        assert histogram.count == self.N_THREADS * 1000
        assert histogram.bucket_counts[0] == self.N_THREADS * 1000

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def hammer(i: int) -> None:
            for _ in range(500):
                with tracer.span("work", thread=i):
                    pass

        self._run_threads(hammer)
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == self.N_THREADS * 500
        assert len(set(ids)) == len(ids), "span ids collided across threads"

    def test_span_nesting_is_per_thread(self):
        # Each thread's stack is thread-local: a thread's spans parent
        # onto its own enclosing span, never another thread's.
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(4)

        def nest(i: int) -> None:
            with tracer.span("outer", thread=i):
                barrier.wait()
                with tracer.span("inner", thread=i):
                    pass

        threads = [threading.Thread(target=nest, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_id = {span.span_id: span for span in tracer.spans}
        for span in tracer.spans:
            if span.name == "inner":
                parent = by_id[span.parent_id]
                assert parent.labels["thread"] == span.labels["thread"]


class TestHistogramQuantile:
    def test_quantiles_interpolate_within_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("q", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.25) == pytest.approx(1.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)
        assert 1.0 <= histogram.quantile(0.5) <= 2.0

    def test_overflow_clamps_to_last_boundary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("q", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_empty_histogram_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("q").quantile(0.5) == 0.0

    def test_invalid_q_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("q").quantile(0.0)
        with pytest.raises(ConfigurationError):
            registry.histogram("q").quantile(1.5)
