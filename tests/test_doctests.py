"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.table.table
import repro.text.tokenizers

MODULES = [repro.table.table, repro.text.tokenizers]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctest examples"
    assert result.failed == 0
