"""Tests for the performance kernel layer and the multicore fan-out.

Two guarantees are enforced here:

* the integer-kernel filtered join equals the brute-force reference
  across every measure, threshold, prefix-filter setting, and kernel;
* every ``n_jobs``-parallelized entry point produces output
  byte-identical to its serial run (``Table.__eq__`` compares the full
  column data, so equality means same columns, same values, same order).
"""

import pickle
import random

import pytest

from repro.blocking import (
    AttrEquivalenceBlocker,
    Blocker,
    HashBlocker,
    OverlapBlocker,
    RuleBasedBlocker,
    make_candset,
)
from repro.exceptions import ConfigurationError, SchemaError
from repro.features import (
    FeatureTable,
    extract_feature_vecs,
    get_features_for_blocking,
    make_blackbox_feature,
)
from repro.perf import (
    TokenUniverse,
    bounded_overlap,
    concat_tables,
    effective_n_jobs,
    make_overlap_bound,
    make_scorer,
    mask_overlap,
    parallel_map_partitions,
    partition_table,
    split_evenly,
    token_mask,
)
from repro.simjoin import (
    edit_distance_join,
    naive_set_sim_join,
    overlap_lower_bound,
    set_sim_join,
    similarity,
)
from repro.simjoin.filters import TokenOrder
from repro.table import Table
from repro.text.sim import Levenshtein
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

N_JOBS = 4


def _random_tables(seed: int, n: int = 60):
    rng = random.Random(seed)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]

    def sentence():
        return " ".join(rng.sample(words, rng.randrange(1, 6)))

    ltable = Table({"id": [f"a{i}" for i in range(n)], "v": [sentence() for _ in range(n)]})
    rtable = Table({"id": [f"b{i}" for i in range(n)], "v": [sentence() for _ in range(n)]})
    return ltable, rtable


def _pairs(result):
    return set(zip(result.column("l_id"), result.column("r_id")))


class TestTokenUniverse:
    def test_ids_dense_rare_first(self):
        universe = TokenUniverse([["common", "rare"], ["common"], ["common", "x"]])
        assert len(universe) == 3
        assert sorted(universe.token_id(t) for t in ("common", "rare", "x")) == [0, 1, 2]
        # rare/x (frequency 1) come before common (frequency 3); lexical ties.
        assert universe.token_id("rare") == 0
        assert universe.token_id("x") == 1
        assert universe.token_id("common") == 2

    def test_encode_sorted_distinct(self):
        universe = TokenUniverse([["a", "b", "c"], ["c"], ["b", "c"]])
        encoded = universe.encode(["c", "a", "c", "b"])
        assert list(encoded) == sorted(encoded)
        assert len(encoded) == 3

    def test_encode_unknown_raises(self):
        universe = TokenUniverse([["a"]])
        with pytest.raises(KeyError):
            universe.encode(["a", "never_seen"])

    def test_decode_roundtrip(self):
        universe = TokenUniverse([["a", "b"], ["b"]])
        encoded = universe.encode(["a", "b"])
        assert set(universe.decode(encoded)) == {"a", "b"}

    def test_token_order_wrapper_matches(self):
        corpus = [["common", "rare"], ["common"], ["common", "x"]]
        order = TokenOrder(corpus)
        assert order.order(["common", "rare"]) == ["rare", "common"]
        assert order.rank("never_seen")[0] == 0
        assert order.order(["a_unknown", "common"])[0] == "a_unknown"


class TestKernels:
    def test_bounded_overlap_matches_set_intersection(self):
        rng = random.Random(0)
        for _ in range(300):
            a = tuple(sorted(rng.sample(range(40), rng.randrange(0, 15))))
            b = tuple(sorted(rng.sample(range(40), rng.randrange(0, 15))))
            true_overlap = len(set(a) & set(b))
            needed = rng.randrange(0, 12)
            got = bounded_overlap(a, b, needed)
            if true_overlap >= needed:
                assert got == true_overlap
            else:
                # Early exit may return -1 or the exact (insufficient) count.
                assert got < needed

    def test_mask_overlap_exact(self):
        rng = random.Random(1)
        for _ in range(200):
            a = tuple(sorted(rng.sample(range(200), rng.randrange(0, 30))))
            b = tuple(sorted(rng.sample(range(200), rng.randrange(0, 30))))
            assert mask_overlap(token_mask(a), token_mask(b)) == len(set(a) & set(b))

    def test_scorers_match_similarity(self):
        rng = random.Random(2)
        for measure in ("jaccard", "cosine", "dice", "overlap"):
            scorer = make_scorer(measure)
            for _ in range(50):
                left = set(rng.sample(range(30), rng.randrange(1, 12)))
                right = set(rng.sample(range(30), rng.randrange(1, 12)))
                left_str = {str(x) for x in left}
                right_str = {str(x) for x in right}
                expected = similarity(measure, left_str, right_str)
                got = scorer(len(left_str & right_str), len(left_str), len(right_str))
                assert got == expected

    def test_overlap_bound_matches_filters(self):
        for measure, threshold in [
            ("jaccard", 0.5),
            ("jaccard", 0.8),
            ("cosine", 0.6),
            ("dice", 0.7),
            ("overlap", 3),
        ]:
            bound = make_overlap_bound(measure, threshold)
            for la in range(1, 15):
                for lb in range(1, 15):
                    assert bound(la, lb) == overlap_lower_bound(
                        measure, threshold, la, lb
                    )

    def test_unknown_measure_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scorer("euclid")
        with pytest.raises(ConfigurationError):
            make_overlap_bound("euclid", 0.5)


class TestParallelPrimitives:
    def test_effective_n_jobs(self):
        assert effective_n_jobs(None) == 1
        assert effective_n_jobs(1) == 1
        assert effective_n_jobs(3) == 3
        assert effective_n_jobs(-1) >= 1
        with pytest.raises(ConfigurationError):
            effective_n_jobs(0)

    def test_split_evenly_contiguous_and_complete(self):
        items = list(range(23))
        shards = split_evenly(items, 4)
        assert [x for shard in shards for x in shard] == items
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_split_evenly_more_shards_than_items(self):
        shards = split_evenly([1, 2], 10)
        assert len(shards) == 2

    def test_split_evenly_empty(self):
        assert split_evenly([], 4) == [[]]

    def test_concat_tables_matches_pairwise(self):
        parts = [
            Table({"a": [1, 2], "b": ["x", "y"]}),
            Table({"a": [3], "b": ["z"]}),
            Table({"a": [], "b": []}),
            Table({"a": [4, 5], "b": ["u", "v"]}),
        ]
        pairwise = parts[0]
        for part in parts[1:]:
            pairwise = pairwise.concat(part)
        assert concat_tables(parts) == pairwise

    def test_concat_tables_schema_mismatch(self):
        with pytest.raises(SchemaError):
            concat_tables([Table({"a": [1]}), Table({"b": [2]})])

    def test_concat_tables_single_copy(self):
        part = Table({"a": [1]})
        result = concat_tables([part])
        assert result == part and result is not part

    def test_partition_table_empty(self):
        parts = partition_table(Table({"a": []}), 4)
        assert len(parts) == 1 and parts[0].num_rows == 0

    def test_parallel_map_partitions_accepts_closures(self):
        offset = 10  # captured by the closure: not picklable as a pool task

        def bump(part: Table) -> Table:
            return Table({"v": [value + offset for value in part.column("v")]})

        table = Table({"v": list(range(20))})
        serial = parallel_map_partitions(table, bump, n_workers=1)
        parallel = parallel_map_partitions(table, bump, n_workers=3)
        assert serial == parallel
        assert parallel.column("v") == [value + 10 for value in range(20)]


class TestSetSimJoinEquivalence:
    @pytest.mark.parametrize("measure,threshold", [
        ("jaccard", 0.4),
        ("jaccard", 0.8),
        ("cosine", 0.6),
        ("dice", 0.7),
        ("overlap", 2),
    ])
    @pytest.mark.parametrize("use_prefix_filter", [True, False])
    @pytest.mark.parametrize("kernel", ["mask", "merge"])
    def test_matches_naive(self, measure, threshold, use_prefix_filter, kernel):
        seed = hash((measure, threshold, use_prefix_filter, kernel)) % 1000
        ltable, rtable = _random_tables(seed=seed)
        tokenizer = WhitespaceTokenizer(return_set=True)
        fast = set_sim_join(
            ltable, rtable, "id", "id", "v", "v", tokenizer, measure, threshold,
            use_prefix_filter=use_prefix_filter, kernel=kernel,
        )
        slow = naive_set_sim_join(
            ltable, rtable, "id", "id", "v", "v", tokenizer, measure, threshold
        )
        assert _pairs(fast) == _pairs(slow)
        fast_scores = {(l, r): s for l, r, s in zip(fast["l_id"], fast["r_id"], fast["score"])}
        slow_scores = {(l, r): s for l, r, s in zip(slow["l_id"], slow["r_id"], slow["score"])}
        assert fast_scores == slow_scores  # identical floats, not just pairs

    def test_qgram_tokens_match_naive(self):
        ltable, rtable = _random_tables(seed=77, n=40)
        tokenizer = QgramTokenizer(q=3, return_set=True)
        fast = set_sim_join(ltable, rtable, "id", "id", "v", "v", tokenizer, "jaccard", 0.5)
        slow = naive_set_sim_join(ltable, rtable, "id", "id", "v", "v", tokenizer, "jaccard", 0.5)
        assert _pairs(fast) == _pairs(slow)

    def test_kernels_agree_byte_identical(self):
        ltable, rtable = _random_tables(seed=13)
        tokenizer = WhitespaceTokenizer(return_set=True)
        mask = set_sim_join(
            ltable, rtable, "id", "id", "v", "v", tokenizer, "jaccard", 0.5, kernel="mask"
        )
        merge = set_sim_join(
            ltable, rtable, "id", "id", "v", "v", tokenizer, "jaccard", 0.5, kernel="merge"
        )
        assert mask == merge

    def test_bad_kernel_rejected(self):
        ltable, rtable = _random_tables(seed=1, n=5)
        with pytest.raises(ConfigurationError):
            set_sim_join(
                ltable, rtable, "id", "id", "v", "v",
                WhitespaceTokenizer(return_set=True), "jaccard", 0.5, kernel="simd",
            )


class TestParallelByteIdentity:
    """n_jobs=1 and n_jobs=4 must produce byte-identical tables."""

    def test_set_sim_join(self):
        ltable, rtable = _random_tables(seed=21)
        tokenizer = WhitespaceTokenizer(return_set=True)
        for measure, threshold in [("jaccard", 0.5), ("overlap", 2)]:
            serial = set_sim_join(
                ltable, rtable, "id", "id", "v", "v", tokenizer, measure, threshold
            )
            parallel = set_sim_join(
                ltable, rtable, "id", "id", "v", "v", tokenizer, measure, threshold,
                n_jobs=N_JOBS,
            )
            assert serial == parallel

    def test_edit_distance_join(self):
        rng = random.Random(3)
        names = ["dave smith", "dan smith", "david smyth", "joe wilson", "jo wilson"]
        ltable = Table({
            "id": [f"a{i}" for i in range(40)],
            "v": [rng.choice(names) for _ in range(40)],
        })
        rtable = Table({
            "id": [f"b{i}" for i in range(40)],
            "v": [rng.choice(names) for _ in range(40)],
        })
        serial = edit_distance_join(ltable, rtable, "id", "id", "v", "v", threshold=2)
        parallel = edit_distance_join(
            ltable, rtable, "id", "id", "v", "v", threshold=2, n_jobs=N_JOBS
        )
        assert serial == parallel
        # and the filter still agrees with brute force
        levenshtein = Levenshtein()
        expected = {
            (a, b)
            for a, av in zip(ltable["id"], ltable["v"])
            for b, bv in zip(rtable["id"], rtable["v"])
            if levenshtein.get_raw_score(av, bv) <= 2
        }
        assert _pairs(serial) == expected

    def test_overlap_blocker(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        blocker = OverlapBlocker("name", overlap_size=1)
        serial = blocker.block_tables(table_a, table_b, "id", "id")
        parallel = blocker.block_tables(table_a, table_b, "id", "id", n_jobs=N_JOBS)
        assert serial == parallel

    def test_attr_equivalence_blocker(self):
        rng = random.Random(5)
        states = ["WI", "CA", "NY", None]
        ltable = Table({
            "id": list(range(30)),
            "state": [rng.choice(states) for _ in range(30)],
        })
        rtable = Table({
            "id": list(range(30)),
            "state": [rng.choice(states) for _ in range(30)],
        })
        blocker = AttrEquivalenceBlocker("state")
        serial = blocker.block_tables(ltable, rtable, "id", "id")
        parallel = blocker.block_tables(ltable, rtable, "id", "id", n_jobs=N_JOBS)
        assert serial == parallel

    def test_hash_blocker_with_lambda(self):
        ltable = Table({"id": list(range(20)), "name": [f"n{i % 5}" for i in range(20)]})
        rtable = Table({"id": list(range(20)), "name": [f"n{i % 7}" for i in range(20)]})
        blocker = HashBlocker(lambda row: row["name"][:2])
        serial = blocker.block_tables(ltable, rtable, "id", "id")
        parallel = blocker.block_tables(ltable, rtable, "id", "id", n_jobs=N_JOBS)
        assert serial == parallel

    def test_quadratic_fallback_blocker(self, figure1_tables):
        table_a, table_b, _ = figure1_tables

        class SameInitialBlocker(Blocker):
            def block_tuples(self, l_row, r_row):
                return l_row["name"][0] != r_row["name"][0]

        blocker = SameInitialBlocker()
        serial = blocker.block_tables(table_a, table_b, "id", "id")
        parallel = blocker.block_tables(table_a, table_b, "id", "id", n_jobs=N_JOBS)
        assert serial == parallel

    def test_rule_based_blocker_join_path(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        features = get_features_for_blocking(table_a, table_b)
        name = next(n for n in features.names() if "jaccard_ws" in n and n.startswith("name"))
        blocker = RuleBasedBlocker()
        blocker.add_rule([f"{name} < 0.2"], features)
        assert blocker.is_join_executable
        serial = blocker.block_tables(table_a, table_b, "id", "id")
        parallel = blocker.block_tables(table_a, table_b, "id", "id", n_jobs=N_JOBS)
        assert serial == parallel

    def test_block_candset(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        pairs = [(a, b) for a in table_a["id"] for b in table_b["id"]]
        candset = make_candset(pairs, table_a, table_b, "id", "id")
        blocker = AttrEquivalenceBlocker("state")
        serial = blocker.block_candset(candset)
        parallel = blocker.block_candset(candset, n_jobs=N_JOBS)
        assert serial == parallel

    def test_extract_feature_vecs(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        pairs = [(a, b) for a in table_a["id"] for b in table_b["id"]]
        candset = make_candset(pairs, table_a, table_b, "id", "id")
        features = get_features_for_blocking(table_a, table_b)
        serial = extract_feature_vecs(candset, features)
        parallel = extract_feature_vecs(candset, features, n_jobs=N_JOBS)
        assert serial == parallel


class TestExtractionMemo:
    def test_none_feature_values_are_cached(self, figure1_tables):
        table_a, table_b, _ = figure1_tables
        calls = []

        def always_none(l_value, r_value):
            calls.append((l_value, r_value))
            return None

        feature = make_blackbox_feature("none_f", "city", "city", always_none)
        # Two candidate pairs per distinct (l_city, r_city) combination.
        pairs = [(a, b) for a in table_a["id"] for b in table_b["id"]] * 2
        candset = make_candset(pairs, table_a, table_b, "id", "id")
        result = extract_feature_vecs(candset, FeatureTable([feature]))
        assert result.column("none_f") == [None] * candset.num_rows
        distinct = {
            (la, rb)
            for la in table_a["city"]
            for rb in table_b["city"]
        }
        assert len(calls) <= len(distinct)


class TestTokenizerCachePickling:
    def test_pickle_drops_cache(self):
        tokenizer = WhitespaceTokenizer(return_set=True)
        tokenizer.tokenize_cached("dave smith")
        assert getattr(tokenizer, "_cache", None)
        clone = pickle.loads(pickle.dumps(tokenizer))
        assert not hasattr(clone, "_cache")
        assert clone.tokenize("dave smith") == tokenizer.tokenize("dave smith")

    def test_clear_cache(self):
        tokenizer = WhitespaceTokenizer()
        tokenizer.tokenize_cached("a b")
        tokenizer.clear_cache()
        assert not hasattr(tokenizer, "_cache")
