"""Tests for match post-processing: clustering, 1-1, merging, dedup."""


from repro.blocking import OverlapBlocker
from repro.postprocess import (
    cluster_matches,
    dedupe_table,
    duplicate_groups,
    enforce_one_to_one,
    merge_matches,
    merge_records,
    self_block_table,
)
from repro.table import Table


class TestClustering:
    def test_components(self):
        pairs = {("a1", "b1"), ("a2", "b1"), ("a3", "b3")}
        clusters = cluster_matches(pairs)
        assert len(clusters) == 2
        assert {("l", "a1"), ("l", "a2"), ("r", "b1")} in clusters
        assert {("l", "a3"), ("r", "b3")} in clusters

    def test_side_qualification(self):
        # The same key value on both sides must stay distinct nodes.
        clusters = cluster_matches({("x", "x")})
        assert clusters == [{("l", "x"), ("r", "x")}]

    def test_empty(self):
        assert cluster_matches(set()) == []


class TestOneToOne:
    def test_keeps_best_scores(self):
        scored = [("a1", "b1", 0.9), ("a1", "b2", 0.8), ("a2", "b1", 0.7), ("a2", "b2", 0.6)]
        kept = enforce_one_to_one(scored)
        assert kept == {("a1", "b1"), ("a2", "b2")}

    def test_deterministic_tie_break(self):
        scored = [("a1", "b1", 0.5), ("a1", "b2", 0.5)]
        assert enforce_one_to_one(scored) == enforce_one_to_one(list(reversed(scored)))

    def test_result_is_one_to_one(self):
        scored = [(f"a{i}", f"b{j}", (i * 7 + j) % 10 / 10) for i in range(5) for j in range(5)]
        kept = enforce_one_to_one(scored)
        lefts = [l for l, _ in kept]
        rights = [r for _, r in kept]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)


class TestMergeRecords:
    def test_majority_wins(self):
        rows = [{"v": "x"}, {"v": "x"}, {"v": "y"}]
        assert merge_records(rows)["v"] == "x"

    def test_missing_values_skipped(self):
        rows = [{"v": None}, {"v": "x"}]
        assert merge_records(rows)["v"] == "x"

    def test_all_missing(self):
        assert merge_records([{"v": None}, {"v": ""}])["v"] is None

    def test_tie_prefers_longest(self):
        rows = [{"v": "ab"}, {"v": "abcd"}]
        assert merge_records(rows)["v"] == "abcd"

    def test_key_from_first(self):
        rows = [{"id": 1, "v": "x"}, {"id": 2, "v": "x"}]
        assert merge_records(rows, key_column="id")["id"] == 1

    def test_empty(self):
        assert merge_records([]) == {}


class TestMergeMatches:
    def test_merged_table(self):
        ltable = Table({"id": ["a1", "a2"], "name": ["Dave Smith", "Ann Lee"]})
        rtable = Table({"id": ["b1"], "name": ["Dave Smith"]})
        merged = merge_matches({("a1", "b1")}, ltable, rtable)
        assert merged.num_rows == 1
        row = merged.row(0)
        assert row["name"] == "Dave Smith"
        assert row["l_ids"] == "a1"
        assert row["r_ids"] == "b1"


class TestDedupe:
    def _table(self):
        return Table(
            {
                "id": ["r1", "r2", "r3", "r4"],
                "name": ["Dave Smith", "Dave Smith", "Ann Lee", "Bob Ray"],
                "city": ["Madison", None, "Austin", "Tampa"],
            }
        )

    def test_self_block_excludes_self_and_symmetry(self):
        table = self._table()
        candset = self_block_table(table, OverlapBlocker("name", overlap_size=1), "id")
        pairs = set(zip(candset["ltable_id"], candset["rtable_id"]))
        assert ("r1", "r1") not in pairs
        assert ("r1", "r2") in pairs
        assert ("r2", "r1") not in pairs  # only one orientation kept

    def test_duplicate_groups(self):
        groups = duplicate_groups({("r1", "r2"), ("r2", "r5"), ("r3", "r4")})
        assert {"r1", "r2", "r5"} in groups
        assert {"r3", "r4"} in groups

    def test_dedupe_merges_and_keeps_singletons(self):
        table = self._table()
        deduped = dedupe_table(table, {("r1", "r2")}, key="id")
        assert deduped.num_rows == 3
        merged = next(row for row in deduped.rows() if row["id"] == "r1")
        assert merged["name"] == "Dave Smith"
        assert merged["city"] == "Madison"  # missing value filled from r1
        assert {row["id"] for row in deduped.rows()} == {"r1", "r3", "r4"}

    def test_dedupe_no_pairs_is_identity(self):
        table = self._table()
        assert dedupe_table(table, set(), key="id").num_rows == table.num_rows


class TestEndToEndDedupe:
    def test_self_match_workflow(self):
        """Dedup via the two-table machinery on a table with planted dups."""
        rows = []
        for i in range(40):
            rows.append({"id": f"r{i}", "name": f"Person Number{i} Smith", "city": "Madison"})
        # plant near-duplicates of the first 10
        for i in range(10):
            rows.append({"id": f"d{i}", "name": f"Person Number{i} Smith", "city": "Madison"})
        table = Table.from_rows(rows)
        candset = self_block_table(table, OverlapBlocker("name", overlap_size=3), "id")
        pairs = set(zip(candset["ltable_id"], candset["rtable_id"]))
        expected = {(f"d{i}", f"r{i}") for i in range(10)}
        assert expected <= pairs
        deduped = dedupe_table(table, expected, key="id")
        assert deduped.num_rows == 40
