"""Property-based tests on the EM layer's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import (
    OverlapBlocker,
    Predicate,
    BlockingRule,
    candset_intersection,
    candset_pairs,
    candset_union,
    execute_rule_survivors,
)
from repro.catalog import reset_catalog
from repro.features import make_token_feature
from repro.postprocess import enforce_one_to_one, merge_records
from repro.table import Table
from repro.text.sim.token_based import Jaccard
from repro.text.tokenizers import WhitespaceTokenizer

words = st.sampled_from(["alpha", "beta", "gamma", "delta", "omega"])
values = st.lists(words, min_size=1, max_size=3).map(" ".join)


def make_tables(l_values, r_values):
    ltable = Table({"id": [f"a{i}" for i in range(len(l_values))], "v": list(l_values)})
    rtable = Table({"id": [f"b{i}" for i in range(len(r_values))], "v": list(r_values)})
    return ltable, rtable


table_values = st.lists(values, min_size=1, max_size=8)


class TestBlockingEquivalence:
    @given(table_values, table_values, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_overlap_blocker_join_equals_pairwise(self, l_values, r_values, overlap):
        reset_catalog()
        ltable, rtable = make_tables(l_values, r_values)
        blocker = OverlapBlocker("v", overlap_size=overlap)
        joined = set(candset_pairs(blocker.block_tables(ltable, rtable, "id", "id")))
        pairwise = {
            (l_row["id"], r_row["id"])
            for l_row in ltable.rows()
            for r_row in rtable.rows()
            if not blocker.block_tuples(l_row, r_row)
        }
        assert joined == pairwise

    @given(
        table_values,
        table_values,
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_rule_execution_equals_pairwise(self, l_values, r_values, threshold):
        reset_catalog()
        ltable, rtable = make_tables(l_values, r_values)
        feature = make_token_feature(
            "v_jaccard", "v", "v", WhitespaceTokenizer(return_set=True),
            Jaccard(), "jaccard",
        )
        rule = BlockingRule((Predicate(feature, "<=", threshold),))
        survivors = execute_rule_survivors(rule, ltable, rtable, "id", "id")
        pairwise = {
            (l_row["id"], r_row["id"])
            for l_row in ltable.rows()
            for r_row in rtable.rows()
            if not rule.drops(l_row, r_row)
        }
        assert survivors == pairwise


class TestCandsetAlgebra:
    @given(table_values, table_values)
    @settings(max_examples=40, deadline=None)
    def test_union_intersection_laws(self, l_values, r_values):
        reset_catalog()
        ltable, rtable = make_tables(l_values, r_values)
        a = OverlapBlocker("v", overlap_size=1).block_tables(ltable, rtable, "id", "id")
        b = OverlapBlocker("v", overlap_size=2).block_tables(ltable, rtable, "id", "id")
        union = set(candset_pairs(candset_union(a, b)))
        inter = set(candset_pairs(candset_intersection(a, b)))
        pa, pb = set(candset_pairs(a)), set(candset_pairs(b))
        assert union == pa | pb
        assert inter == pa & pb
        assert inter <= union
        # overlap-2 is a refinement of overlap-1
        assert pb <= pa


class TestPostprocessProperties:
    scored = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        max_size=25,
    )

    @given(scored)
    def test_one_to_one_invariant(self, scored):
        kept = enforce_one_to_one(scored)
        lefts = [l for l, _ in kept]
        rights = [r for _, r in kept]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)
        assert kept <= {(l, r) for l, r, _ in scored}

    @given(st.lists(st.fixed_dictionaries({"v": st.one_of(st.none(), words)}),
                    min_size=1, max_size=8))
    def test_merge_idempotent(self, rows):
        merged = merge_records(rows)
        assert merge_records([merged]) == merged

    @given(st.lists(st.fixed_dictionaries({"v": words}), min_size=1, max_size=8))
    def test_merge_picks_existing_value(self, rows):
        merged = merge_records(rows)
        assert merged["v"] in {row["v"] for row in rows}
