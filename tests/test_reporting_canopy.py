"""Tests for the reporting package and the canopy blocker."""

import pytest

from repro.blocking import CanopyBlocker, blocking_recall, candset_pairs
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.exceptions import ConfigurationError
from repro.reporting import (
    accuracy_section,
    blocking_section,
    em_run_report,
    matcher_section,
    profile_section,
    render_markdown_table,
)
from repro.table import Table


class TestMarkdownRendering:
    def test_table(self):
        markdown = render_markdown_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = markdown.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert "| 2 | y |" in lines

    def test_empty(self):
        assert render_markdown_table([]) == "*(empty)*"

    def test_profile_section_flags_generic_values(self):
        table = Table(
            {"id": list(range(60)),
             "addr": ["GENERIC"] * 30 + [f"u{i} x y" for i in range(30)]}
        )
        section = profile_section("A", table)
        assert "GENERIC" in section
        assert "60 rows" in section

    def test_blocking_section(self):
        candset = Table({"_id": [0], "ltable_id": ["a"], "rtable_id": ["b"]})
        section = blocking_section(candset, cross_product=100, recall=0.95)
        assert "**1**" in section
        assert "0.950" in section

    def test_accuracy_section(self):
        section = accuracy_section(
            {"precision": 0.9, "recall": 0.8, "f1": 0.847,
             "false_positives": [1], "false_negatives": [2, 3]}
        )
        assert "**0.900**" in section
        assert "false negatives: 2" in section

    def test_full_report_assembles(self, small_person_dataset):
        ds = small_person_dataset
        report = em_run_report(
            "people", ds.ltable, ds.rtable, notes=["first iteration"]
        )
        assert report.startswith("# EM run report: people")
        assert "## Profile: table A" in report
        assert "- first iteration" in report
        # optional sections absent
        assert "## Blocking" not in report

    def test_full_report_with_selection(self, small_person_dataset):
        from repro.blocking import OverlapBlocker
        from repro.features import extract_feature_vecs, get_features_for_matching
        from repro.labeling import LabelingSession, OracleLabeler
        from repro.matchers import DTMatcher, RFMatcher, select_matcher
        from repro.sampling import weighted_sample_candset

        ds = small_person_dataset
        candset = OverlapBlocker("name", overlap_size=1).block_tables(
            ds.ltable, ds.rtable, "id", "id"
        )
        sample = weighted_sample_candset(candset, 150, seed=0)
        LabelingSession(OracleLabeler(ds.gold_pairs)).label_candset(sample)
        features = get_features_for_matching(ds.ltable, ds.rtable)
        fv = extract_feature_vecs(sample, features, label_column="label")
        selection = select_matcher(
            [DTMatcher(), RFMatcher(n_estimators=5, random_state=0)],
            fv, features.names(), n_splits=3,
        )
        report = em_run_report(
            "people", ds.ltable, ds.rtable,
            candset=candset, blocking_recall=0.9, selection=selection,
        )
        assert "## Matcher selection" in report
        assert "Selected: **" in report


class TestCanopyBlocker:
    @pytest.fixture
    def dataset(self):
        return make_em_dataset(
            restaurant, 150, 150, match_fraction=0.5,
            dirtiness=DirtinessConfig.light(), seed=17, name="canopy",
        )

    def test_high_recall(self, dataset):
        candset = CanopyBlocker(loose=0.3, tight=0.7).block_tables(
            dataset.ltable, dataset.rtable, "id", "id"
        )
        assert blocking_recall(candset, dataset.gold_pairs) > 0.9
        assert candset.num_rows < dataset.ltable.num_rows * dataset.rtable.num_rows / 10

    def test_loosening_grows_candidates(self, dataset):
        tight = CanopyBlocker(loose=0.5, tight=0.8, seed=1).block_tables(
            dataset.ltable, dataset.rtable, "id", "id"
        )
        loose = CanopyBlocker(loose=0.15, tight=0.8, seed=1).block_tables(
            dataset.ltable, dataset.rtable, "id", "id"
        )
        assert loose.num_rows >= tight.num_rows

    def test_deterministic_given_seed(self, dataset):
        a = CanopyBlocker(seed=5).block_tables(dataset.ltable, dataset.rtable)
        b = CanopyBlocker(seed=5).block_tables(dataset.ltable, dataset.rtable)
        assert set(candset_pairs(a)) == set(candset_pairs(b))

    def test_explicit_attrs(self, dataset):
        candset = CanopyBlocker(attrs=["name"], loose=0.4, tight=0.8).block_tables(
            dataset.ltable, dataset.rtable
        )
        assert candset.num_rows > 0

    def test_cross_side_pairs_only(self, dataset):
        candset = CanopyBlocker().block_tables(dataset.ltable, dataset.rtable)
        l_ids = set(dataset.ltable.column("id"))
        r_ids = set(dataset.rtable.column("id"))
        for l_id, r_id in candset_pairs(candset):
            assert l_id in l_ids
            assert r_id in r_ids

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            CanopyBlocker(loose=0.8, tight=0.4)
        with pytest.raises(ConfigurationError):
            CanopyBlocker(loose=0.0)

    def test_block_tuples_undefined(self):
        with pytest.raises(NotImplementedError):
            CanopyBlocker().block_tuples({}, {})

    def test_no_shared_attrs_raises(self):
        """attrs=None over disjoint schemas is a misconfiguration, not
        a legitimate empty result."""
        ltable = Table({"id": [1], "name": ["dave"]})
        rtable = Table({"id": [1], "title": ["dave"]})
        with pytest.raises(ConfigurationError, match="share no non-key"):
            CanopyBlocker().block_tables(ltable, rtable, "id", "id")

    def test_explicit_empty_attrs_raises(self):
        ltable = Table({"id": [1], "name": ["dave"]})
        with pytest.raises(ConfigurationError, match="attrs"):
            CanopyBlocker(attrs=[]).block_tables(ltable, ltable, "id", "id")
