"""Tests for multi-labeler consensus and incremental matching."""

import pytest

from repro.blocking import OverlapBlocker
from repro.catalog import get_catalog
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.exceptions import ConfigurationError, SchemaError
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import ConsensusLabeler, LabelingSession, OracleLabeler
from repro.matchers import RFMatcher
from repro.pipeline import IncrementalMatcher
from repro.sampling import weighted_sample_candset
from repro.table import Table

GOLD = {(f"a{i}", f"b{i}") for i in range(50)}
QUESTIONS = [(f"a{i}", f"b{i}") for i in range(50)] + [
    (f"a{i}", f"b{i + 1}") for i in range(49)
]


class TestConsensusLabeler:
    def _accuracy(self, labeler):
        return sum(
            labeler.label(q) == (1 if q in GOLD else 0) for q in QUESTIONS
        ) / len(QUESTIONS)

    def test_beats_single_noisy_labeler(self):
        single = OracleLabeler(GOLD, noise_rate=0.2, seed=0)
        consensus = ConsensusLabeler(
            [OracleLabeler(GOLD, noise_rate=0.2, seed=1),
             OracleLabeler(GOLD, noise_rate=0.2, seed=2)],
            adjudicator=OracleLabeler(GOLD, seed=3),
        )
        assert self._accuracy(consensus) > self._accuracy(single)

    def test_agreement_skips_adjudicator(self):
        adjudicator = OracleLabeler(GOLD)
        consensus = ConsensusLabeler(
            [OracleLabeler(GOLD), OracleLabeler(GOLD)], adjudicator
        )
        consensus.label(("a1", "b1"))
        assert adjudicator.questions_asked == 0
        assert consensus.assignments == 2
        assert consensus.disagreements == 0

    def test_disagreement_escalates(self):
        # One always-wrong labeler forces disagreement on every question.
        adjudicator = OracleLabeler(GOLD)
        consensus = ConsensusLabeler(
            [OracleLabeler(GOLD), OracleLabeler(GOLD, noise_rate=1.0, seed=0)],
            adjudicator,
        )
        answer = consensus.label(("a1", "b1"))
        assert answer == 1  # the truthful adjudicator decides
        assert consensus.disagreements == 1
        assert consensus.assignments == 3

    def test_time_accounting(self):
        consensus = ConsensusLabeler(
            [OracleLabeler(GOLD, seconds_per_label=5),
             OracleLabeler(GOLD, noise_rate=1.0, seconds_per_label=5, seed=0)],
            adjudicator=OracleLabeler(GOLD, seconds_per_label=20),
        )
        consensus.label(("a1", "b1"))
        assert consensus.labeling_seconds == 5 + 5 + 20

    def test_requires_two_primaries(self):
        with pytest.raises(ConfigurationError):
            ConsensusLabeler([OracleLabeler(GOLD)], OracleLabeler(GOLD))

    def test_works_inside_session(self):
        consensus = ConsensusLabeler(
            [OracleLabeler(GOLD), OracleLabeler(GOLD)], OracleLabeler(GOLD)
        )
        session = LabelingSession(consensus, budget=10)
        assert session.ask(("a1", "b1")) == 1


@pytest.fixture(scope="module")
def trained_workflow():
    """A dataset split into an initial batch and two later batches, plus a
    matcher trained on the initial portion."""
    dataset = make_em_dataset(
        restaurant, 300, 300, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=55, name="incremental",
    )
    blocker = OverlapBlocker("name", overlap_size=1)
    features = get_features_for_matching(dataset.ltable, dataset.rtable)
    initial = dataset.rtable.take(range(0, 150))
    batch1 = dataset.rtable.take(range(150, 225))
    batch2 = dataset.rtable.take(range(225, 300))

    candset = blocker.block_tables(dataset.ltable, initial, "id", "id")
    sample = weighted_sample_candset(candset, 400, seed=0)
    LabelingSession(OracleLabeler(dataset.gold_pairs)).label_candset(sample)
    fv = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=10, random_state=0).fit(fv, features.names())
    return dataset, blocker, features, matcher, (batch1, batch2)


class TestIncrementalMatcher:
    def _build(self, trained_workflow, **kwargs):
        dataset, blocker, features, matcher, batches = trained_workflow
        get_catalog().set_key(dataset.ltable, "id")
        incremental = IncrementalMatcher(
            dataset.ltable, blocker, features, matcher, **kwargs
        )
        return dataset, incremental, batches

    def test_batches_accumulate_matches(self, trained_workflow):
        dataset, incremental, (batch1, batch2) = self._build(trained_workflow)
        result1 = incremental.process_batch(batch1)
        after_first = len(incremental.matches)
        result2 = incremental.process_batch(batch2)
        assert result1.batch_size == 75
        assert incremental.total_processed == 150
        assert len(incremental.matches) >= after_first
        assert result2.new_matches <= incremental.matches

    def test_accuracy_on_batches(self, trained_workflow):
        dataset, incremental, (batch1, batch2) = self._build(trained_workflow)
        incremental.process_batch(batch1)
        incremental.process_batch(batch2)
        batch_ids = set(batch1.column("id")) | set(batch2.column("id"))
        gold = {(a, b) for a, b in dataset.gold_pairs if b in batch_ids}
        predicted = incremental.matches
        tp = len(predicted & gold)
        assert tp / max(len(predicted), 1) > 0.8
        assert tp / max(len(gold), 1) > 0.6

    def test_duplicate_batch_rejected(self, trained_workflow):
        dataset, incremental, (batch1, _) = self._build(trained_workflow)
        incremental.process_batch(batch1)
        with pytest.raises(SchemaError, match="re-uses right keys"):
            incremental.process_batch(batch1)

    def test_one_to_one_across_batches(self, trained_workflow):
        dataset, incremental, (batch1, batch2) = self._build(trained_workflow)
        incremental.process_batch(batch1)
        incremental.process_batch(batch2)
        lefts = [l for l, _ in incremental.matches]
        assert len(set(lefts)) == len(lefts)

    def test_without_one_to_one(self, trained_workflow):
        dataset, incremental, (batch1, _) = self._build(
            trained_workflow, one_to_one=False
        )
        result = incremental.process_batch(batch1)
        assert result.skipped_existing == 0

    def test_threshold_validation(self, trained_workflow):
        dataset, blocker, features, matcher, _ = trained_workflow
        with pytest.raises(ConfigurationError):
            IncrementalMatcher(dataset.ltable, blocker, features, matcher, threshold=1.5)

    def test_empty_batch_candidates(self, trained_workflow):
        dataset, incremental, _ = self._build(trained_workflow)
        strangers = Table(
            {"id": ["z1"], "name": ["zzz qqq"], "street": ["1 Qqq Zz"],
             "city": ["Nowhere"], "cuisine": ["Xxx"]}
        )
        result = incremental.process_batch(strangers)
        assert result.candidate_pairs == 0
        assert result.new_matches == set()
