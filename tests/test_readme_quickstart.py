"""The README's quickstart snippet must actually run (docs can't rot)."""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def test_quickstart_snippet_executes():
    text = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python code block"
    snippet = blocks[0]
    namespace: dict = {}
    exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
    predictions = namespace["predictions"]
    assert "predicted" in predictions.columns
    assert predictions.num_rows > 0
    assert sum(predictions["predicted"]) > 0
