"""Tests for repro.pipeline.streaming: streaming dedupe on the live index.

The contract: after streaming N unique records one at a time, the
deduper's clusters equal the connected components of the batch self-join
over the same N records at the same threshold — regardless of arrival
order or interleaved compactions.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.index import use_index_store
from repro.obs import use_registry
from repro.pipeline import StreamingDeduper, UnionFind
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import WhitespaceTokenizer

WORDS = ["apple", "banana", "cherry", "grape", "melon", "kiwi", "plum", "fig"]


def make_stream(n: int, seed: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    return [
        (f"k{i}", " ".join(rng.sample(WORDS, rng.randint(2, 5))))
        for i in range(n)
    ]


def batch_clusters(records: list[tuple[str, str]], threshold: float) -> set:
    """Connected components of the batch self-join over the records."""
    table = Table(
        {"id": [k for k, _ in records], "value": [v for _, v in records]}
    )
    joined = set_sim_join(
        table, table, "id", "id", "value", "value",
        WhitespaceTokenizer(return_set=True), "jaccard", threshold,
    )
    graph = nx.Graph()
    graph.add_nodes_from(table.column("id"))
    for l_id, r_id in zip(joined.column("l_id"), joined.column("r_id")):
        if l_id != r_id:
            graph.add_edge(l_id, r_id)
    return {frozenset(c) for c in nx.connected_components(graph)}


class TestStreamEqualsBatch:
    @given(
        n=st.integers(2, 30),
        seed=st.integers(0, 100),
        threshold=st.sampled_from([0.4, 0.6]),
        compact_every=st.sampled_from([None, 7]),
    )
    @settings(max_examples=20, deadline=None)
    def test_clusters_equal_batch_components(self, n, seed, threshold, compact_every):
        records = make_stream(n, seed)
        with use_registry(), use_index_store():
            deduper = StreamingDeduper(
                threshold=threshold, compact_every=compact_every
            )
            for key, value in records:
                deduper.add(key, value)
            streamed = {frozenset(c) for c in deduper.clusters()}
        assert streamed == batch_clusters(records, threshold)

    def test_match_edges_equal_batch_join_pairs(self):
        records = make_stream(40, seed=3)
        with use_registry(), use_index_store():
            deduper = StreamingDeduper(threshold=0.5)
            for key, value in records:
                deduper.add(key, value)
            table = Table(
                {"id": [k for k, _ in records], "value": [v for _, v in records]}
            )
            joined = set_sim_join(
                table, table, "id", "id", "value", "value",
                WhitespaceTokenizer(return_set=True), "jaccard", 0.5,
            )
            batch_pairs = {
                tuple(sorted((l_id, r_id)))
                for l_id, r_id in zip(joined.column("l_id"), joined.column("r_id"))
                if l_id != r_id
            }
            stream_pairs = {
                tuple(sorted((a, b))) for a, b, _ in deduper.matched_pairs()
            }
        assert stream_pairs == batch_pairs

    def test_scores_are_batch_scores(self):
        with use_registry(), use_index_store():
            deduper = StreamingDeduper(threshold=0.4)
            deduper.add("a", "apple banana cherry")
            result = deduper.add("b", "apple banana grape")
        assert result.matches == [("a", 0.5)]
        assert result.merged == 1


class TestStreamingBehavior:
    def test_arrival_sees_all_earlier_records_not_itself(self):
        with use_registry(), use_index_store():
            deduper = StreamingDeduper(threshold=0.9)
            first = deduper.add("a", "apple banana")
            second = deduper.add("b", "apple banana")
            assert first.matches == []
            assert second.matches == [("a", 1.0)]

    def test_seed_table_counts_as_seen(self):
        seed = Table({"id": ["s1", "s2"], "value": ["apple banana", "cherry grape"]})
        with use_registry(), use_index_store():
            deduper = StreamingDeduper(threshold=0.9, seed_table=seed)
            result = deduper.add("n1", "apple banana")
            assert result.matches == [("s1", 1.0)]
            clusters = deduper.clusters()
            assert {"s1", "n1"} in clusters
            assert {"s2"} in clusters

    def test_min_size_filters_singletons(self):
        with use_registry(), use_index_store():
            deduper = StreamingDeduper(threshold=0.9)
            deduper.add("a", "apple banana")
            deduper.add("b", "apple banana")
            deduper.add("c", "unrelated words here")
            assert deduper.clusters(min_size=2) == [{"a", "b"}]

    def test_compaction_preserves_stream_state(self):
        records = make_stream(25, seed=9)
        with use_registry(), use_index_store():
            steady = StreamingDeduper(threshold=0.5)
            compacting = StreamingDeduper(threshold=0.5, compact_every=4)
            for key, value in records:
                steady.add(key, value)
                compacting.add(key, value)
            assert compacting.clusters() == steady.clusters()
            assert compacting.stats()["compactions"] >= 5

    def test_stats_and_metrics(self):
        with use_registry() as registry, use_index_store():
            deduper = StreamingDeduper(threshold=0.4)
            deduper.add("a", "apple banana")
            deduper.add("b", "apple banana cherry")
            stats = deduper.stats()
            assert stats["records"] == 2
            assert stats["live_rows"] == 2
            assert stats["match_edges"] == 1
            assert stats["clusters"] == 1
            totals = {
                name: value
                for (name, _), value in registry.counters().items()
            }
            assert totals["stream_records_total"] == 2
            assert totals["stream_matches_total"] == 1

    def test_invalid_compact_every_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingDeduper(compact_every=0)


class TestUnionFind:
    def test_union_and_groups(self):
        uf = UnionFind()
        for item in "abcde":
            uf.add(item)
        assert uf.union("a", "b")
        assert uf.union("b", "c")
        assert not uf.union("a", "c")  # already one set
        groups = {frozenset(g) for g in uf.groups()}
        assert groups == {frozenset("abc"), frozenset("d"), frozenset("e")}
        assert len(uf) == 5

    def test_find_compresses_paths(self):
        uf = UnionFind()
        for i in range(100):
            uf.add(i)
            if i:
                uf.union(i - 1, i)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(100))
        # After compression every node points (nearly) straight at the root.
        assert all(uf._parent[i] == root for i in range(99))
