"""Tests for the kNN classifier and matcher."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.ml import KNeighborsClassifier


def blobs(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(-2, 0.8, (n // 2, 3)), rng.normal(2, 0.8, (n // 2, 3))])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestKNN:
    def test_separates_blobs(self):
        X, y = blobs()
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_k_one_memorizes(self):
        X, y = blobs(n=40)
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_k_larger_than_training_set(self):
        X, y = blobs(n=10)
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        proba = model.predict_proba(X)
        # every row votes with the full training set
        assert np.allclose(proba, proba[0])

    def test_proba_normalized(self):
        X, y = blobs()
        proba = KNeighborsClassifier(n_neighbors=7).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_standardization_makes_scales_irrelevant(self):
        X, y = blobs()
        scaled = X.copy()
        scaled[:, 0] *= 1e6
        plain = KNeighborsClassifier(n_neighbors=5).fit(X, y).predict(X)
        rescaled = KNeighborsClassifier(n_neighbors=5).fit(scaled, y).predict(scaled)
        assert np.array_equal(plain, rescaled)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(NotFittedError):
            KNeighborsClassifier().predict([[1.0]])
        X, y = blobs(n=20)
        model = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 9)))

    def test_nonstandard_labels(self):
        X, y01 = blobs(n=60)
        y = np.where(y01 == 1, 5, 2)
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert set(model.predict(X).tolist()) <= {2, 5}

    def test_knn_matcher_exported(self):
        from repro.matchers import KNNMatcher

        matcher = KNNMatcher(n_neighbors=3)
        assert matcher.name == "KNNMatcher"
