"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.labeling.console import ConsoleLabeler
from repro.table import Table, read_csv, write_csv


@pytest.fixture
def csv_pair(tmp_path):
    dataset = make_em_dataset(
        restaurant, 120, 120, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=77,
    )
    l_path = tmp_path / "A.csv"
    r_path = tmp_path / "B.csv"
    gold_path = tmp_path / "gold.csv"
    write_csv(dataset.ltable, l_path)
    write_csv(dataset.rtable, r_path)
    write_csv(
        Table.from_rows([{"l_id": a, "r_id": b} for a, b in sorted(dataset.gold_pairs)]),
        gold_path,
    )
    return dataset, str(l_path), str(r_path), str(gold_path), tmp_path


class TestProfile:
    def test_profile_runs(self, csv_pair, capsys):
        _, l_path, _, _, _ = csv_pair
        assert main(["profile", l_path]) == 0
        out = capsys.readouterr().out
        assert "120 rows" in out
        assert "name" in out


class TestMatch:
    def test_match_with_gold(self, csv_pair, capsys):
        dataset, l_path, r_path, gold_path, tmp = csv_pair
        output = str(tmp / "matches.csv")
        code = main([
            "match", l_path, r_path, "--gold", gold_path,
            "--budget", "300", "--output", output,
        ])
        assert code == 0
        matches = read_csv(output)
        predicted = set(zip(matches["ltable_id"], matches["rtable_id"]))
        tp = len(predicted & dataset.gold_pairs)
        assert tp / max(len(predicted), 1) > 0.8

    def test_match_interactive_console(self, csv_pair, monkeypatch, tmp_path):
        """Drive the console labeler with scripted answers."""
        dataset, l_path, r_path, _, tmp = csv_pair
        gold = dataset.gold_pairs
        answers = []

        def fake_input(prompt):
            return answers.pop(0)

        # Prepare a tiny interactive dedupe-style run via ConsoleLabeler directly
        labeler = ConsoleLabeler(
            dataset.ltable, dataset.rtable,
            input_fn=fake_input, print_fn=lambda s: None,
        )
        pair = sorted(gold)[0]
        answers.extend(["bogus", "y"])
        assert labeler.label(pair) == 1
        answers.append("n")
        assert labeler.label(pair) == 0
        assert labeler.questions_asked == 2


class TestFalconCli:
    def test_falcon_with_gold(self, csv_pair, capsys):
        dataset, l_path, r_path, gold_path, tmp = csv_pair
        output = str(tmp / "falcon.csv")
        code = main([
            "falcon", l_path, r_path, "--gold", gold_path,
            "--budget", "300", "--output", output,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "questions asked" in out
        assert "precision=" in out
        matches = read_csv(output)
        assert matches.num_rows > 0

    def test_falcon_metrics_snapshot(self, csv_pair, capsys):
        from repro.obs import parse_prometheus_text, read_metrics_jsonl, use_registry

        dataset, l_path, r_path, gold_path, tmp = csv_pair
        metrics_path = tmp / "metrics.jsonl"
        with use_registry():
            code = main([
                "falcon", l_path, r_path, "--gold", gold_path,
                "--budget", "300", "--output", str(tmp / "falcon.csv"),
                "--metrics", str(metrics_path),
            ])
        assert code == 0
        names = {row["name"] for row in read_metrics_jsonl(metrics_path)}
        # Instrumentation from every layer lands in one snapshot.
        assert "simjoin_calls_total" in names
        assert "blocking_pairs_total" in names
        assert "falcon_questions_total" in names
        assert "feature_cache_hits_total" in names
        assert "runtime_node_seconds" in names
        prom = parse_prometheus_text(
            metrics_path.with_suffix(".jsonl.prom").read_text(encoding="utf-8")
        )
        assert prom["types"]["falcon_questions_total"] == "counter"
        assert prom["types"]["runtime_node_seconds"] == "histogram"

    def test_falcon_events_and_metrics_written_on_failure(
        self, csv_pair, monkeypatch, capsys
    ):
        # Telemetry is the diagnostic artifact: a crashed run must still
        # flush its event log and metrics snapshot.
        from repro.obs import use_registry

        _, l_path, r_path, gold_path, tmp = csv_pair
        events_path = tmp / "events.jsonl"
        metrics_path = tmp / "metrics.jsonl"

        def explode(*args, **kwargs):
            raise RuntimeError("mid-run crash")

        monkeypatch.setattr("repro.falcon.run_falcon", explode)
        with use_registry():
            with pytest.raises(RuntimeError, match="mid-run crash"):
                main([
                    "falcon", l_path, r_path, "--gold", gold_path,
                    "--events", str(events_path), "--metrics", str(metrics_path),
                ])
        assert events_path.exists()
        assert metrics_path.exists()
        assert metrics_path.with_suffix(".jsonl.prom").exists()


class TestDedupeCli:
    def test_dedupe_with_gold(self, tmp_path, capsys):
        rows = [
            {"id": f"r{i}", "name": f"Unique Restaurant Number{i}", "city": "Madison"}
            for i in range(30)
        ]
        rows.append({"id": "dup", "name": "Unique Restaurant Number0", "city": "Madison"})
        table = Table.from_rows(rows)
        table_path = tmp_path / "T.csv"
        write_csv(table, table_path)
        gold_path = tmp_path / "gold.csv"
        write_csv(Table.from_rows([{"l": "dup", "r": "r0"}]), gold_path)
        output = str(tmp_path / "deduped.csv")
        code = main([
            "dedupe", str(table_path), "--column", "name", "--overlap", "3",
            "--gold", str(gold_path), "--output", output,
        ])
        assert code == 0
        deduped = read_csv(output)
        assert deduped.num_rows == 30


class TestSchemaMatchCli:
    def test_schema_match(self, tmp_path, capsys):
        ltable = Table({"id": [1, 2], "full_name": ["Dave Smith", "Ann Lee"],
                        "home_city": ["Madison", "Austin"]})
        rtable = Table({"id": [9, 8], "name": ["Dave Smith", "Ann Lee"],
                        "city": ["Madison", "Austin"]})
        l_path, r_path = tmp_path / "A.csv", tmp_path / "B.csv"
        write_csv(ltable, l_path)
        write_csv(rtable, r_path)
        code = main(["schema-match", str(l_path), str(r_path), "--threshold", "0.4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "full_name" in out and "name" in out

    def test_schema_match_nothing_found(self, tmp_path):
        ltable = Table({"id": [1], "alpha": [123]})
        rtable = Table({"id": [9], "zzz": ["totally different text"]})
        l_path, r_path = tmp_path / "A.csv", tmp_path / "B.csv"
        write_csv(ltable, l_path)
        write_csv(rtable, r_path)
        assert main(["schema-match", str(l_path), str(r_path)]) == 1


class TestServe:
    def test_serve_answers_query_file(self, tmp_path, capsys):
        import json

        corpus = Table(
            {
                "id": ["b1", "b2", "b3"],
                "name": ["dave smith", "dave smith jr", "ann chen"],
            }
        )
        corpus_path = tmp_path / "corpus.csv"
        write_csv(corpus, corpus_path)
        queries_path = tmp_path / "queries.txt"
        queries_path.write_text("dave smith\nalice\tann chen\n", encoding="utf-8")
        metrics_path = tmp_path / "serve-metrics.jsonl"
        code = main([
            "serve", str(corpus_path), "--column", "name",
            "--threshold", "0.4", "--queries", str(queries_path),
            "--metrics", str(metrics_path),
        ])
        assert code == 0
        out_lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        answers = [json.loads(line) for line in out_lines]
        assert len(answers) == 2
        first = answers[0]
        assert first["query"] == "dave smith"
        assert [c[0] for c in first["candidates"]][0] == "b1"
        assert answers[1]["tenant"] == "alice"
        assert [c[0] for c in answers[1]["candidates"]] == ["b3"]
        assert metrics_path.exists()
        names = {
            json.loads(line)["name"]
            for line in metrics_path.read_text().splitlines()
        }
        assert "serve_requests_total" in names
        assert "serve_request_seconds" in names


class TestIndexCli:
    @pytest.fixture
    def live_cache(self, tmp_path):
        from repro.index import IndexStore, LiveIndex

        corpus = Table(
            {
                "id": ["b1", "b2", "b3"],
                "name": ["dave smith", "dave smith jr", "ann chen"],
            }
        )
        cache_dir = tmp_path / "cache"
        store = IndexStore(cache_dir=cache_dir)
        live = LiveIndex.from_table(
            corpus, "id", "name", threshold=0.4, store=store, name="corpus-name"
        )
        live.upsert("b4", "dave m smith")
        live.delete("b3")
        live.save()
        return cache_dir

    def test_inspect_reports_delta_state(self, live_cache, capsys):
        assert main(["index", "inspect", "--cache-dir", str(live_cache)]) == 0
        out = capsys.readouterr().out
        assert "live index" in out
        assert "corpus-name" in out
        assert "tombstones" in out
        # Fingerprinted base artifacts are listed too.
        assert "records" in out and "prefix" in out

    def test_compact_folds_and_resaves(self, live_cache, capsys):
        from repro.index import list_live_indexes

        assert main(["index", "compact", "--cache-dir", str(live_cache)]) == 0
        out = capsys.readouterr().out
        assert "compacted 'corpus-name'" in out
        [manifest] = list_live_indexes(live_cache)
        assert manifest["delta_rows"] == 0
        assert manifest["tombstones"] == 0
        assert manifest["compactions"] == 1
        assert manifest["live_rows"] == 3

    def test_compact_without_live_indexes_errors(self, tmp_path, capsys):
        assert main(["index", "compact", "--cache-dir", str(tmp_path)]) == 1
        assert "no live indexes" in capsys.readouterr().out

    def test_compacted_index_still_answers(self, live_cache):
        from repro.index import IndexStore, LiveIndex

        main(["index", "compact", "--cache-dir", str(live_cache)])
        loaded = LiveIndex.load(
            "corpus-name", store=IndexStore(cache_dir=live_cache)
        )
        matches, _ = loaded.search("dave smith")
        assert [key for key, _ in matches] == ["b1", "b2", "b4"]
        assert "b3" not in loaded
