"""Tests for workflow capture, production execution, and the guide."""

import logging

import pytest

from repro.exceptions import ConfigurationError, WorkflowError
from repro.pipeline import (
    DEVELOPMENT_GUIDE,
    PRODUCTION_GUIDE,
    CheckpointedRun,
    MagellanWorkflow,
    command_counts,
    package_inventory,
    parallel_map_partitions,
    partition_table,
    resolve_command,
)
from repro.table import Table


def numbers_table(n=20):
    return Table({"id": list(range(n)), "v": [i * 2 for i in range(n)]})


def double_v(part: Table) -> Table:
    """Module-level so it is picklable for the process pool."""
    return Table({"id": part.column("id"), "v": [x * 2 for x in part.column("v")]})


class TestWorkflowCapture:
    def test_runs_steps_in_order(self):
        workflow = MagellanWorkflow("w")
        workflow.add_step("one", lambda art: art.setdefault("trace", []).append(1))
        workflow.add_step("two", lambda art: art["trace"].append(2))
        artifacts = workflow.run()
        assert artifacts["trace"] == [1, 2]
        assert all(record.ok for record in workflow.records)
        assert workflow.total_seconds() >= 0

    def test_duplicate_step_rejected(self):
        workflow = MagellanWorkflow("w").add_step("a", lambda art: None)
        with pytest.raises(WorkflowError):
            workflow.add_step("a", lambda art: None)

    def test_failure_recorded_and_raised(self, caplog):
        workflow = MagellanWorkflow("w")
        workflow.add_step("boom", lambda art: 1 / 0)
        with caplog.at_level(logging.ERROR, logger="repro.pipeline"):
            with pytest.raises(ZeroDivisionError):
                workflow.run()
        assert workflow.records[-1].ok is False
        assert "ZeroDivisionError" in workflow.records[-1].error

    def test_continue_on_error(self):
        workflow = MagellanWorkflow("w")
        workflow.add_step("boom", lambda art: 1 / 0)
        workflow.add_step("after", lambda art: art.__setitem__("ran", True))
        artifacts = workflow.run(stop_on_error=False)
        assert artifacts["ran"] is True


class TestPartitioning:
    def test_partition_covers_all_rows(self):
        parts = partition_table(numbers_table(23), 4)
        assert sum(part.num_rows for part in parts) == 23
        recombined = [v for part in parts for v in part.column("id")]
        assert recombined == list(range(23))

    def test_partition_more_than_rows(self):
        parts = partition_table(numbers_table(3), 10)
        assert sum(part.num_rows for part in parts) == 3

    def test_partition_validation(self):
        with pytest.raises(ConfigurationError):
            partition_table(numbers_table(), 0)

    def test_serial_map(self):
        result = parallel_map_partitions(numbers_table(10), double_v, n_workers=1)
        assert result.column("v") == [i * 4 for i in range(10)]

    def test_parallel_map_matches_serial(self):
        table = numbers_table(50)
        serial = parallel_map_partitions(table, double_v, n_workers=1)
        parallel = parallel_map_partitions(table, double_v, n_workers=3)
        assert serial == parallel

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            parallel_map_partitions(numbers_table(), double_v, n_workers=0)


class TestCheckpointing:
    def test_full_run_writes_checkpoints(self, tmp_path):
        run = CheckpointedRun("job1", tmp_path)
        result = run.execute(numbers_table(12), double_v, n_partitions=3)
        assert result.column("v") == [i * 4 for i in range(12)]
        assert run.completed_partitions() == {0, 1, 2}
        assert (tmp_path / "job1" / "part_0.csv").exists()

    def test_crash_recovery_skips_done_partitions(self, tmp_path):
        calls = []

        def fn(part: Table) -> Table:
            calls.append(part.column("id")[0])
            if len(calls) == 3 and not getattr(fn, "healed", False):
                raise RuntimeError("simulated crash")
            return double_v(part)

        run = CheckpointedRun("job2", tmp_path)
        with pytest.raises(RuntimeError):
            run.execute(numbers_table(16), fn, n_partitions=4)
        assert run.completed_partitions() == {0, 1}

        # "Restart the process": resume; partitions 0-1 come from disk.
        fn.healed = True
        calls.clear()
        result = run.execute(numbers_table(16), fn, n_partitions=4)
        assert result.column("v") == [i * 4 for i in range(16)]
        assert calls == [8, 12]  # only partitions 2 and 3 recomputed

    def test_resume_with_different_partitioning_rejected(self, tmp_path):
        run = CheckpointedRun("job3", tmp_path)
        run.execute(numbers_table(8), double_v, n_partitions=2)
        with pytest.raises(WorkflowError):
            run.execute(numbers_table(8), double_v, n_partitions=4)


class TestGuide:
    def test_every_command_resolves(self):
        for guide in (DEVELOPMENT_GUIDE, PRODUCTION_GUIDE):
            for step in guide:
                for command in step.commands:
                    assert resolve_command(command) is not None

    def test_guide_covers_table3_steps(self):
        names = [step.name for step in DEVELOPMENT_GUIDE]
        for expected in (
            "read_write_data", "down_sample", "data_exploration", "blocking",
            "sampling", "labeling", "feature_vectors", "matching",
            "computing_accuracy", "adding_rules", "managing_metadata",
        ):
            assert expected in names

    def test_command_counts_positive(self):
        counts = command_counts()
        assert all(count > 0 for count in counts.values())
        assert counts["blocking"] >= 15  # the richest step, as in the paper

    def test_package_inventory(self):
        inventory = package_inventory()
        assert "repro.blocking" in inventory
        assert sum(inventory.values()) >= 60

    def test_steps_have_instructions(self):
        for step in DEVELOPMENT_GUIDE + PRODUCTION_GUIDE:
            assert step.instruction
