"""Tests for CloudMatcher: services, DAGs, fragments, engines, facade."""

import pytest

from repro.cloud import (
    DEFAULT_REGISTRY,
    CloudMatcher01,
    CloudMatcher10,
    CloudMatcher20,
    CostModel,
    EMWorkflow,
    MetaManager,
    ServiceKind,
    ServiceRegistry,
    WorkflowContext,
    build_falcon_workflow,
    decompose_fragments,
)
from repro.cloud.services import Service
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.exceptions import ServiceError, WorkflowError
from repro.falcon import FalconConfig
from repro.labeling import LabelingSession, OracleLabeler


def small_dataset(seed=0, n=150):
    return make_em_dataset(
        restaurant, n, n, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=seed, name=f"cloud-test-{seed}",
    )


def make_context(dataset, budget=400):
    session = LabelingSession(OracleLabeler(dataset.gold_pairs), budget=budget)
    return WorkflowContext(
        dataset=dataset,
        session=session,
        config=FalconConfig(sample_size=400, blocking_budget=100,
                            matching_budget=200, random_state=0),
        task_name=dataset.name,
    )


class TestRegistry:
    def test_table4_counts(self):
        """Appendix D: 18 basic services and 2 composite services."""
        core = [s for s in DEFAULT_REGISTRY.services() if s.core]
        assert len([s for s in core if not s.composite]) == 18
        assert len([s for s in core if s.composite]) == 2

    def test_composite_names(self):
        composites = DEFAULT_REGISTRY.names(composite=True)
        assert "falcon" in composites
        assert "get_blocking_rules" in composites

    def test_get_unknown(self):
        with pytest.raises(ServiceError):
            DEFAULT_REGISTRY.get("teleport")

    def test_duplicate_registration(self):
        registry = ServiceRegistry()
        service = Service("x", ServiceKind.BATCH, "d", lambda ctx: 0.0)
        registry.register(service)
        with pytest.raises(ServiceError):
            registry.register(service)

    def test_every_service_kind_valid(self):
        for service in DEFAULT_REGISTRY.services():
            assert isinstance(service.kind, ServiceKind)
            assert service.description


class TestContext:
    def test_put_get(self, small_person_dataset):
        context = make_context(small_person_dataset)
        context.put("x", 42)
        assert context.get("x") == 42
        assert context.has("x")

    def test_missing_artifact(self, small_person_dataset):
        context = make_context(small_person_dataset)
        with pytest.raises(ServiceError, match="not available"):
            context.get("nope")


class TestWorkflowDag:
    def test_falcon_workflow_builds(self):
        workflow = build_falcon_workflow("t", DEFAULT_REGISTRY)
        assert len(workflow) == 16
        order = [call.node_id for call in workflow.topological_calls()]
        assert order.index("upload") < order.index("sample")
        assert order.index("learn_blocking") < order.index("execute_rules")

    def test_duplicate_node_rejected(self):
        workflow = EMWorkflow("w")
        service = DEFAULT_REGISTRY.get("profile_dataset")
        workflow.add_call("a", service)
        with pytest.raises(WorkflowError):
            workflow.add_call("a", service)

    def test_unknown_predecessor(self):
        workflow = EMWorkflow("w")
        with pytest.raises(WorkflowError):
            workflow.add_call("a", DEFAULT_REGISTRY.get("profile_dataset"), after=["zzz"])

    def test_cycle_rejected(self):
        workflow = EMWorkflow("w")
        service = DEFAULT_REGISTRY.get("profile_dataset")
        workflow.add_call("a", service)
        workflow.add_call("b", service, after=["a"])
        workflow.graph.add_edge("b", "a")
        with pytest.raises(WorkflowError):
            workflow.add_call("c", service, after=["b"])

    def test_fragments_are_same_kind(self):
        workflow = build_falcon_workflow("t", DEFAULT_REGISTRY)
        fragments, fragment_dag = decompose_fragments(workflow)
        for fragment in fragments:
            kinds = {call.kind for call in fragment.calls}
            assert kinds == {fragment.kind}
        # every node lands in exactly one fragment
        all_nodes = [call.node_id for fragment in fragments for call in fragment.calls]
        assert sorted(all_nodes) == sorted(workflow.graph.nodes)

    def test_fragment_dag_acyclic_topological(self):
        import networkx as nx

        workflow = build_falcon_workflow("t", DEFAULT_REGISTRY)
        _, fragment_dag = decompose_fragments(workflow)
        assert nx.is_directed_acyclic_graph(fragment_dag)

    def test_crowd_variant_retags_learning(self):
        workflow = build_falcon_workflow("t", DEFAULT_REGISTRY, use_crowd=True)
        assert workflow.call("learn_blocking").kind == ServiceKind.CROWD
        assert workflow.call("learn_matching").kind == ServiceKind.CROWD
        assert workflow.call("upload").kind == ServiceKind.USER_INTERACTION


class TestEngines:
    def test_engine_rejects_wrong_kind(self, small_person_dataset):
        from repro.cloud.engines import ExecutionEngine

        workflow = build_falcon_workflow("t", DEFAULT_REGISTRY)
        fragments, _ = decompose_fragments(workflow)
        batch_fragment = next(f for f in fragments if f.kind == ServiceKind.BATCH)
        engine = ExecutionEngine(ServiceKind.CROWD)
        with pytest.raises(WorkflowError):
            engine.execute(batch_fragment, make_context(small_person_dataset), 0.0)

    def test_metamanager_single_workflow(self):
        dataset = small_dataset(seed=1)
        manager = MetaManager()
        context = make_context(dataset)
        manager.submit(build_falcon_workflow(dataset.name, DEFAULT_REGISTRY), context)
        makespan = manager.run_all()
        assert makespan > 0
        assert context.has("matches")

    def test_interleaving_beats_serial(self):
        def run(interleave):
            manager = MetaManager(interleave=interleave)
            for seed in (1, 2):
                dataset = small_dataset(seed=seed)
                manager.submit(
                    build_falcon_workflow(dataset.name, DEFAULT_REGISTRY),
                    make_context(dataset),
                )
            return manager.run_all()

        serial = run(False)
        interleaved = run(True)
        assert interleaved < serial

    def test_empty_manager(self):
        assert MetaManager().run_all() == 0.0

    def test_user_engines_are_per_run(self):
        manager = MetaManager()
        run_a = manager.submit(build_falcon_workflow("a", DEFAULT_REGISTRY),
                               make_context(small_dataset(seed=3)))
        run_b = manager.submit(build_falcon_workflow("b", DEFAULT_REGISTRY),
                               make_context(small_dataset(seed=4)))
        engine_a = manager.engine_for(run_a, ServiceKind.USER_INTERACTION)
        engine_b = manager.engine_for(run_b, ServiceKind.USER_INTERACTION)
        assert engine_a is not engine_b
        assert manager.engine_for(run_a, ServiceKind.BATCH) is manager.engine_for(
            run_b, ServiceKind.BATCH
        )


class TestCloudMatcherFacade:
    def test_cm01_end_to_end(self):
        dataset = small_dataset(seed=5)
        matcher = CloudMatcher01()
        result = matcher.match(
            dataset,
            LabelingSession(OracleLabeler(dataset.gold_pairs), budget=400),
            FalconConfig(sample_size=400, blocking_budget=100,
                         matching_budget=200, random_state=0),
        )
        assert result.accuracy["precision"] > 0.8
        row = result.cost.as_row()
        assert row["Crowd"] == "-"  # single user, no crowd dollars
        assert int(row["Questions"]) <= 400

    def test_cm10_concurrent_results(self):
        matcher = CloudMatcher10()
        for seed in (6, 7):
            dataset = small_dataset(seed=seed)
            matcher.submit(
                dataset,
                LabelingSession(OracleLabeler(dataset.gold_pairs), budget=400),
                FalconConfig(sample_size=400, blocking_budget=100,
                             matching_budget=200, random_state=0),
            )
        makespan, results = matcher.run()
        assert len(results) == 2
        assert all(r.accuracy is not None for r in results)
        assert all(r.extras["finish_time"] <= makespan + 1e-9 for r in results)

    def test_cm20_custom_workflow(self):
        """The 2.0 story: a user who already knows the blocking rules can
        skip learning them."""
        dataset = small_dataset(seed=8)
        matcher = CloudMatcher20()
        context = make_context(dataset)
        # Pre-seed rules: empty -> the execute service falls back to an
        # overlap blocker; this is the 'user skips rule learning' path.
        context.put("rules", [])
        workflow = EMWorkflow("custom")
        registry = matcher.registry
        workflow.add_call("upload", registry.get("upload_tables"))
        workflow.add_call("block", registry.get("execute_blocking_rules"), after=["upload"])
        workflow.add_call("features", registry.get("generate_matching_features"), after=["upload"])
        workflow.add_call("vectors", registry.get("extract_candidate_vectors"), after=["block", "features"])
        workflow.add_call("learn", registry.get("active_learn_matching"), after=["vectors"])
        workflow.add_call("train", registry.get("train_classifier"), after=["learn"])
        workflow.add_call("apply", registry.get("apply_classifier"), after=["train"])
        matcher.submit_custom(workflow, context)
        makespan, results = matcher.run()
        assert results[0].accuracy["precision"] > 0.7
        assert context.get("used_fallback") is True

    def test_cm20_label_only_service(self):
        dataset = small_dataset(seed=9)
        matcher = CloudMatcher20()
        context = make_context(dataset)
        context.put("pairs_to_label", sorted(dataset.gold_pairs)[:5])
        matcher.invoke_service("label_pairs", context)
        assert context.get("labels") == [1, 1, 1, 1, 1]

    def test_cost_model(self):
        model = CostModel(aws_dollars_per_hour=3.6)
        assert model.compute_cost(3600, on_cloud=True) == pytest.approx(3.6)
        assert model.compute_cost(3600, on_cloud=False) == 0.0
        assert model.crowd_cost(100) == pytest.approx(2.0)

    def test_cost_report_rendering(self):
        from repro.cloud import TaskCostReport

        report = TaskCostReport(
            questions=200, crowd_dollars=1.5, compute_dollars=None,
            labeling_seconds=7200, machine_seconds=90,
        )
        row = report.as_row()
        assert row["Crowd"] == "$1.50"
        assert row["Compute"] == "-"
        assert row["User/Crowd"] == "2.0h"
        assert row["Machine"] == "2m"
