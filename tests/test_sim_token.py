"""Tests for token-based, hybrid, phonetic, and generic similarity."""

import math

import pytest

from repro.text.sim import (
    Cosine,
    Dice,
    GeneralizedJaccard,
    Jaccard,
    MongeElkan,
    Overlap,
    OverlapCoefficient,
    Soundex,
    SoftTfIdf,
    TfIdf,
    TverskyIndex,
    abs_norm,
    exact_match,
    rel_diff,
    soundex_code,
)


class TestSetMeasures:
    def test_jaccard(self):
        assert Jaccard().get_raw_score({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_jaccard_lists(self):
        assert Jaccard().get_raw_score(["a", "a", "b"], ["b"]) == 0.5

    def test_dice(self):
        assert Dice().get_raw_score({"a", "b"}, {"b", "c"}) == 0.5

    def test_overlap_coefficient(self):
        assert OverlapCoefficient().get_raw_score({"a", "b", "c"}, {"b"}) == 1.0

    def test_overlap_raw(self):
        assert Overlap().get_raw_score({"a", "b"}, {"b", "c"}) == 1

    def test_cosine(self):
        result = Cosine().get_raw_score({"a", "b"}, {"b", "c"})
        assert result == pytest.approx(1 / 2)

    @pytest.mark.parametrize("cls", [Jaccard, Dice, OverlapCoefficient, Cosine])
    def test_empty_conventions(self, cls):
        assert cls().get_raw_score(set(), set()) == 1.0
        assert cls().get_raw_score({"a"}, set()) == 0.0

    def test_tversky_reduces_to_jaccard(self):
        left, right = {"a", "b", "c"}, {"b", "c", "d"}
        tversky = TverskyIndex(alpha=1.0, beta=1.0)
        assert tversky.get_raw_score(left, right) == pytest.approx(
            Jaccard().get_raw_score(left, right)
        )

    def test_tversky_reduces_to_dice(self):
        left, right = {"a", "b", "c"}, {"b", "c", "d"}
        tversky = TverskyIndex(alpha=0.5, beta=0.5)
        assert tversky.get_raw_score(left, right) == pytest.approx(
            Dice().get_raw_score(left, right)
        )

    def test_tversky_invalid(self):
        with pytest.raises(ValueError):
            TverskyIndex(alpha=-1)


class TestTfIdf:
    def test_no_corpus_is_tf_cosine(self):
        assert TfIdf().get_raw_score(["a"], ["a"]) == pytest.approx(1.0)

    def test_rare_token_dominates(self):
        corpus = [["common", "rare"], ["common"], ["common"], ["common"]]
        measure = TfIdf(corpus)
        rare_match = measure.get_raw_score(["rare", "x"], ["rare", "y"])
        common_match = measure.get_raw_score(["common", "x"], ["common", "y"])
        assert rare_match > common_match

    def test_disjoint(self):
        assert TfIdf().get_raw_score(["a"], ["b"]) == 0.0

    def test_empty(self):
        assert TfIdf().get_raw_score([], []) == 1.0
        assert TfIdf().get_raw_score(["a"], []) == 0.0

    def test_token_everywhere_has_zero_idf(self):
        corpus = [["x"], ["x"]]
        assert TfIdf(corpus).get_raw_score(["x"], ["x"]) == 0.0


class TestHybrid:
    def test_monge_elkan_identical(self):
        assert MongeElkan().get_raw_score(["dave", "smith"], ["dave", "smith"]) == 1.0

    def test_monge_elkan_asymmetric(self):
        measure = MongeElkan()
        forward = measure.get_raw_score(["dave"], ["dave", "junk"])
        backward = measure.get_raw_score(["dave", "junk"], ["dave"])
        assert forward != backward

    def test_monge_elkan_empty(self):
        assert MongeElkan().get_raw_score([], []) == 1.0
        assert MongeElkan().get_raw_score(["a"], []) == 0.0

    def test_generalized_jaccard_exact(self):
        assert GeneralizedJaccard().get_raw_score({"dave"}, {"dave"}) == 1.0

    def test_generalized_jaccard_soft_match(self):
        hard = Jaccard().get_raw_score({"daev", "smith"}, {"dave", "smith"})
        soft = GeneralizedJaccard().get_raw_score({"daev", "smith"}, {"dave", "smith"})
        assert soft > hard

    def test_soft_tfidf_at_least_exact_overlap(self):
        measure = SoftTfIdf()
        assert measure.get_raw_score(["dave", "smith"], ["daev", "smith"]) > 0.5

    def test_soft_tfidf_empty(self):
        assert SoftTfIdf().get_raw_score([], []) == 1.0


class TestPhonetic:
    @pytest.mark.parametrize(
        "word,code",
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
        ],
    )
    def test_soundex_codes(self, word, code):
        assert soundex_code(word) == code

    def test_soundex_measure(self):
        assert Soundex().get_raw_score("Robert", "Rupert") == 1.0
        assert Soundex().get_raw_score("Robert", "Wilson") == 0.0
        assert Soundex().get_raw_score("123", "Robert") == 0.0


class TestGeneric:
    def test_exact_match(self):
        assert exact_match(1, 1) == 1.0
        assert exact_match("a", "b") == 0.0
        assert math.isnan(exact_match(None, 1))
        assert math.isnan(exact_match(1, float("nan")))

    def test_abs_norm(self):
        assert abs_norm(10, 10) == 1.0
        assert abs_norm(0, 0) == 1.0
        assert abs_norm(10, 5) == 0.5
        assert math.isnan(abs_norm(None, 5))
        assert math.isnan(abs_norm("not a number", 5))

    def test_rel_diff(self):
        assert rel_diff(10, 10) == 0.0
        assert rel_diff(0, 0) == 0.0
        assert rel_diff(10, 5) == pytest.approx(5 / 7.5)
        assert math.isnan(rel_diff(None, 5))
