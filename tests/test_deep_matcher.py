"""Tests for the DeepMatcher substitute (numpy MLP over raw text)."""

import numpy as np
import pytest

from repro.blocking import OverlapBlocker
from repro.exceptions import ConfigurationError, NotFittedError
from repro.matchers import DeepMatcher


@pytest.fixture
def labeled_candset(small_person_dataset):
    ds = small_person_dataset
    candset = OverlapBlocker("name", overlap_size=1).block_tables(
        ds.ltable, ds.rtable, "id", "id"
    )
    labels = [
        1 if pair in ds.gold_pairs else 0
        for pair in zip(candset["ltable_id"], candset["rtable_id"])
    ]
    candset.add_column("label", labels)
    return ds, candset


class TestDeepMatcher:
    def test_learns_textual_matching(self, labeled_candset):
        ds, candset = labeled_candset
        matcher = DeepMatcher(attributes=["name", "city"], epochs=80, random_state=0)
        matcher.fit(candset)
        result = matcher.predict(candset, append=False, output_column="p")
        gold = np.array(candset.column("label"))
        predicted = np.array(result.column("p"))
        tp = int(np.sum((gold == 1) & (predicted == 1)))
        precision = tp / max(int(predicted.sum()), 1)
        recall = tp / max(int(gold.sum()), 1)
        assert precision > 0.8
        assert recall > 0.6

    def test_predict_before_fit(self, labeled_candset):
        _, candset = labeled_candset
        with pytest.raises(NotFittedError):
            DeepMatcher(attributes=["name"]).predict(candset)

    def test_proba_in_unit_interval(self, labeled_candset):
        _, candset = labeled_candset
        matcher = DeepMatcher(attributes=["name"], epochs=20, random_state=0)
        matcher.fit(candset)
        proba = matcher.predict_proba(candset)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_deterministic_given_seed(self, labeled_candset):
        _, candset = labeled_candset
        a = DeepMatcher(attributes=["name"], epochs=15, random_state=5).fit(candset)
        b = DeepMatcher(attributes=["name"], epochs=15, random_state=5).fit(candset)
        assert np.allclose(a.predict_proba(candset), b.predict_proba(candset))

    def test_requires_attributes(self):
        with pytest.raises(ConfigurationError):
            DeepMatcher(attributes=[])

    def test_handles_missing_values(self, small_person_dataset):
        ds = small_person_dataset
        # knock out some names
        names = list(ds.rtable.column("name"))
        names[0] = None
        ds.rtable.add_column("name", names)
        candset = OverlapBlocker("city", overlap_size=1).block_tables(
            ds.ltable, ds.rtable, "id", "id"
        )
        labels = [
            1 if pair in ds.gold_pairs else 0
            for pair in zip(candset["ltable_id"], candset["rtable_id"])
        ]
        candset.add_column("label", labels)
        matcher = DeepMatcher(attributes=["name"], epochs=10, random_state=0)
        matcher.fit(candset)  # must not crash on None
        assert matcher.predict_proba(candset).shape[0] == candset.num_rows
