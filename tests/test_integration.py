"""Integration tests: the full PyMatcher guide workflow, end to end.

This is Figure 2 of the paper as a test: down-sample -> block -> sample ->
label -> features -> cross-validate matchers -> predict -> evaluate.
"""

import pytest

from repro.blocking import OverlapBlocker, blocking_recall, candset_union
from repro.catalog import get_catalog
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.matchers import DTMatcher, RFMatcher, eval_matches, select_matcher
from repro.pipeline import MagellanWorkflow
from repro.sampling import down_sample, weighted_sample_candset


@pytest.fixture(scope="module")
def dataset():
    return make_em_dataset(
        restaurant, 400, 400, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=99, name="integration",
    )


def test_guide_workflow_end_to_end(dataset):
    ds = dataset
    ds.register()

    # Step 1: down-sample (tables here are small; exercise the call anyway).
    l_dev, r_dev = down_sample(ds.ltable, ds.rtable, 300, seed=0)
    assert l_dev.num_rows <= ds.ltable.num_rows

    # Step 2: block, combining two blockers as the guide suggests.
    by_name = OverlapBlocker("name", overlap_size=1).block_tables(
        ds.ltable, ds.rtable, "id", "id"
    )
    by_street = OverlapBlocker("street", overlap_size=2).block_tables(
        ds.ltable, ds.rtable, "id", "id"
    )
    candset = candset_union(by_name, by_street)
    assert blocking_recall(candset, ds.gold_pairs) > 0.9

    # Step 3-4: sample and label.  The sample must contain enough
    # borderline non-matches for the learner to place the boundary; 600
    # labels is within the paper's reported labeling effort.
    sample = weighted_sample_candset(candset, 600, seed=0)
    session = LabelingSession(OracleLabeler(ds.gold_pairs))
    session.label_candset(sample)
    assert 0 < sum(sample["label"]) < sample.num_rows

    # Step 5: features + vectors.
    features = get_features_for_matching(ds.ltable, ds.rtable)
    fv = extract_feature_vecs(sample, features, label_column="label")

    # Step 6: cross-validate matchers and pick the best (the paper's
    # example selects matcher V with F1 = 0.93; we assert the same band).
    selection = select_matcher(
        [DTMatcher(), RFMatcher(n_estimators=10, random_state=0)],
        fv, features.names(), n_splits=4,
    )
    assert selection.best_score > 0.85

    # Step 7: predict on the full candidate set and evaluate against gold.
    fv_all = extract_feature_vecs(candset, features)
    predictions = selection.best_matcher.predict(fv_all)
    meta = get_catalog().get_candset_metadata(candset)
    gold_labels = [
        1 if pair in ds.gold_pairs else 0
        for pair in zip(candset[meta.fk_ltable], candset[meta.fk_rtable])
    ]
    predictions.add_column("label", gold_labels)
    report = eval_matches(predictions)
    assert report["precision"] > 0.85
    assert report["recall"] > 0.8
    assert report["f1"] > 0.85


def test_guide_workflow_as_captured_script(dataset):
    """The production stage: the same workflow captured as a script object."""
    ds = dataset
    ds.register()
    workflow = MagellanWorkflow("production-em")

    def block(art):
        art["candset"] = OverlapBlocker("name", overlap_size=1).block_tables(
            ds.ltable, ds.rtable, "id", "id"
        )

    def label_sample(art):
        sample = weighted_sample_candset(art["candset"], 250, seed=1)
        LabelingSession(OracleLabeler(ds.gold_pairs)).label_candset(sample)
        art["sample"] = sample

    def train(art):
        features = get_features_for_matching(ds.ltable, ds.rtable)
        fv = extract_feature_vecs(art["sample"], features, label_column="label")
        matcher = RFMatcher(n_estimators=10, random_state=0).fit(fv, features.names())
        art["features"], art["matcher"] = features, matcher

    def predict(art):
        fv_all = extract_feature_vecs(art["candset"], art["features"])
        art["predictions"] = art["matcher"].predict(fv_all, append=False)

    workflow.add_step("block", block)
    workflow.add_step("label", label_sample)
    workflow.add_step("train", train)
    workflow.add_step("predict", predict)
    artifacts = workflow.run()
    assert "predicted" in artifacts["predictions"].columns
    assert len(workflow.records) == 4
    assert all(record.ok for record in workflow.records)
