"""Unit tests for individual CloudMatcher services and the Falcon sampler."""

import pytest

from repro.cloud import DEFAULT_REGISTRY, ServiceKind, WorkflowContext
from repro.datasets import DirtinessConfig, make_em_dataset
from repro.datasets.entities import restaurant
from repro.exceptions import ServiceError
from repro.falcon import FalconConfig
from repro.falcon.falcon import _sample_pairs
from repro.catalog import get_catalog
from repro.labeling import LabelingSession, OracleLabeler


@pytest.fixture
def context():
    dataset = make_em_dataset(
        restaurant, 150, 150, match_fraction=0.5,
        dirtiness=DirtinessConfig.light(), seed=31, name="svc-test",
    )
    return WorkflowContext(
        dataset=dataset,
        session=LabelingSession(OracleLabeler(dataset.gold_pairs), budget=400),
        config=FalconConfig(sample_size=300, blocking_budget=80,
                            matching_budget=120, random_state=0),
        task_name="svc-test",
    )


def run_service(name, context):
    return DEFAULT_REGISTRY.get(name).run(context)


class TestBasicServices:
    def test_upload_registers_tables(self, context):
        human = run_service("upload_tables", context)
        assert human > 0  # uploading costs user time
        assert context.get("ltable") is context.dataset.ltable

    def test_profile(self, context):
        run_service("upload_tables", context)
        run_service("profile_dataset", context)
        profile = context.get("profile")
        assert profile["l_rows"] == 150
        assert "name" in profile["l_schema"]

    def test_edit_metadata(self, context):
        run_service("edit_metadata", context)
        assert get_catalog().get_key(context.dataset.ltable) == "id"

    def test_down_sample_small_table_passthrough(self, context):
        run_service("down_sample", context)
        assert context.get("l_dev") is context.dataset.ltable

    def test_sample_pairs_contains_matches(self, context):
        run_service("sample_pairs", context)
        sample = context.get("sample")
        pairs = set(zip(sample["ltable_id"], sample["rtable_id"]))
        assert len(pairs & context.dataset.gold_pairs) >= 10

    def test_label_pairs(self, context):
        context.put("pairs_to_label", sorted(context.dataset.gold_pairs)[:3])
        human = run_service("label_pairs", context)
        assert context.get("labels") == [1, 1, 1]
        assert human > 0

    def test_undo_labels(self, context):
        context.session.ask(sorted(context.dataset.gold_pairs)[0])
        context.put("undo_count", 1)
        run_service("undo_labels", context)
        assert context.session.questions_asked == 0
        assert len(context.get("undone")) == 1

    def test_monitor(self, context):
        run_service("monitor_workflow", context)
        status = context.get("status")
        assert status["questions_asked"] == 0
        assert status["remaining_budget"] == 400

    def test_crowdsource_reports_cost(self, context):
        run_service("crowdsource_labels", context)
        assert context.get("crowd_cost")["dollars"] == 0.0  # oracle, not crowd

    def test_dependency_error_when_out_of_order(self, context):
        with pytest.raises(ServiceError, match="not available"):
            run_service("extract_blocking_rules", context)


class TestCompositeServices:
    def test_get_blocking_rules(self, context):
        run_service("get_blocking_rules", context)
        assert context.has("rules")
        assert context.has("rule_evaluations")
        # only the blocking stage labeled
        assert context.session.questions_asked <= context.config.blocking_budget

    def test_falcon_produces_matches(self, context):
        run_service("falcon", context)
        assert context.get("matches").num_rows > 0
        assert context.has("export")


class TestSamplePairs:
    def test_pool_has_both_classes(self):
        dataset = make_em_dataset(
            restaurant, 200, 200, match_fraction=0.5,
            dirtiness=DirtinessConfig.moderate(), seed=32,
        )
        sample = _sample_pairs(dataset, 400, seed=0, catalog=get_catalog())
        pairs = set(zip(sample["ltable_id"], sample["rtable_id"]))
        matches = len(pairs & dataset.gold_pairs)
        assert matches >= 20  # likely-match half is effective
        assert matches <= len(pairs) - 20  # random half provides negatives

    def test_sample_size_respected(self):
        dataset = make_em_dataset(
            restaurant, 100, 100, match_fraction=0.5, seed=33,
        )
        sample = _sample_pairs(dataset, 250, seed=0, catalog=get_catalog())
        assert sample.num_rows <= 250 + 125  # probing half may overshoot slightly

    def test_registered_in_catalog(self):
        dataset = make_em_dataset(restaurant, 80, 80, seed=34)
        sample = _sample_pairs(dataset, 100, seed=0, catalog=get_catalog())
        assert get_catalog().get_candset_metadata(sample).ltable is dataset.ltable


class TestServiceKinds:
    def test_labeling_services_are_user_kind(self):
        for name in ("label_pairs", "active_learn_blocking", "active_learn_matching"):
            assert DEFAULT_REGISTRY.get(name).kind == ServiceKind.USER_INTERACTION

    def test_heavy_services_are_batch_kind(self):
        for name in ("execute_blocking_rules", "extract_candidate_vectors",
                     "apply_classifier"):
            assert DEFAULT_REGISTRY.get(name).kind == ServiceKind.BATCH
