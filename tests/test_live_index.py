"""Tests for repro.index.delta: the base + delta LiveIndex.

The load-bearing assertion is the incremental == rebuilt-from-scratch
contract: after ANY interleaving of upserts, deletes, and compactions, a
live index answers every probe — point searches and whole-table joins,
serial and sharded-parallel — with exactly the candidates and float
scores of an index rebuilt from scratch over its current records.  The
hypothesis property test below drives randomized interleavings, the
mirror of the store's warm==cold test.
"""

import pickle
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import OverlapBlocker
from repro.exceptions import ConfigurationError, KeyConstraintError, ServiceError
from repro.index import IndexStore, LiveIndex, list_live_indexes, use_index_store
from repro.obs import use_registry
from repro.simjoin import set_sim_join
from repro.table import Table
from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

VALUES = [
    "dave smith",
    "dan smith",
    "dave m smith",
    "joe wilson",
    "joe b wilson",
    "mary jones",
    "ann chen",
    "sue miller park",
    "",
    None,
]
KEYS = [f"k{i}" for i in range(8)]


def make_table(n: int = 40, seed: int = 0) -> Table:
    rng = random.Random(seed)
    first = ["dave", "dan", "joe", "mary", "ann", "sue"]
    last = ["smith", "wilson", "jones", "miller"]
    return Table(
        {
            "id": [f"b{i}" for i in range(n)],
            "v": [f"{rng.choice(first)} {rng.choice(last)}" for _ in range(n)],
        }
    )


def reference_table(model: dict) -> Table:
    """The live records a from-scratch rebuild should cover.

    The model dict mirrors live canonical order: upserts re-insert at
    the end (delete-then-set), deletes remove.
    """
    return Table({"id": list(model), "v": [model[k] for k in model]})


def apply_op(live: LiveIndex, model: dict, op: tuple) -> None:
    kind = op[0]
    if kind == "upsert":
        _, key, value = op
        model.pop(key, None)
        model[key] = value
        live.upsert(key, value)
    elif kind == "delete":
        model.pop(op[1], None)
        live.delete(op[1])
    else:
        live.compact()


# One op: upsert (key, value), delete (key), or compact.
OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"),
            st.sampled_from(KEYS),
            st.sampled_from(VALUES),
        ),
        st.tuples(st.just("delete"), st.sampled_from(KEYS)),
        st.tuples(st.just("compact")),
    ),
    min_size=0,
    max_size=20,
)


class TestIncrementalEqualsRebuilt:
    @given(ops=OPS, base_size=st.integers(0, 6), threshold=st.sampled_from([0.3, 0.6]))
    @settings(max_examples=30, deadline=None)
    def test_interleaved_ops_match_rebuild(self, ops, base_size, threshold):
        base = Table(
            {"id": [f"base{i}" for i in range(base_size)], "v": VALUES[:base_size]}
        )
        model = {
            key: value
            for key, value in zip(base.column("id"), base.column("v"))
        }
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(
                base, "id", "v", threshold=threshold, store=IndexStore()
            )
            for op in ops:
                apply_op(live, model, op)

            rebuilt = LiveIndex.from_table(
                reference_table(model), "id", "v", threshold=threshold,
                store=IndexStore(),
            )
            # Same survivors, same scores, same order for every probe —
            # including values only a delta or only a base could know.
            # (Pre-verification candidate counts may differ: the delta's
            # token ordering extends the base's rather than re-ranking,
            # so its — equally sound — prefix filter can admit a
            # different candidate set.  Verification is exact, so the
            # survivors cannot differ.)
            for value in VALUES:
                assert live.search(value)[0] == rebuilt.search(value)[0]

            # Whole-table join equals the batch join over the rebuilt
            # records, serial and sharded-parallel.
            probe = Table(
                {"qid": [f"q{i}" for i in range(len(VALUES))], "txt": list(VALUES)}
            )
            joined = live.join_table(probe, "qid", "txt")
            for n_jobs in (1, 2):
                batch = set_sim_join(
                    probe, reference_table(model), "qid", "id", "txt", "v",
                    WhitespaceTokenizer(return_set=True), "jaccard", threshold,
                    n_jobs=n_jobs,
                )
                assert [joined.column(c) for c in joined.columns] == [
                    batch.column(c) for c in batch.columns
                ]

    def test_concurrent_writers_converge_to_rebuild(self):
        """Parallel mutation: racing upserts/deletes never corrupt the
        segments — the final index answers like a rebuild of whatever
        final state the race produced."""
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(
                make_table(30), "id", "v", threshold=0.4, store=IndexStore()
            )
            errors: list[BaseException] = []

            def mutate(seed: int) -> None:
                rng = random.Random(seed)
                try:
                    for i in range(60):
                        key = f"w{seed}-{rng.randint(0, 9)}"
                        if rng.random() < 0.25:
                            live.delete(key)
                        else:
                            live.upsert(key, rng.choice(VALUES[:8]))
                        if i % 10 == 0:
                            live.search("dave smith")
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=mutate, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            rebuilt = LiveIndex.from_table(
                live.to_table(), "id", "v", threshold=0.4, store=IndexStore()
            )
            for value in VALUES:
                assert live.search(value)[0] == rebuilt.search(value)[0]


class TestLiveSemantics:
    def test_upsert_visible_to_next_probe(self):
        with use_registry(), use_index_store():
            live = LiveIndex.empty("id", "v", threshold=0.4)
            assert live.search("dave smith") == ([], 0)
            live.upsert("k1", "dave smith")
            matches, _ = live.search("dave smith")
            assert matches == [("k1", 1.0)]

    def test_delete_tombstones_base_and_delta(self):
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(
                Table({"id": ["a"], "v": ["dave smith"]}), "id", "v", threshold=0.4
            )
            live.upsert("b", "dave smith")
            assert [k for k, _ in live.search("dave smith")[0]] == ["a", "b"]
            assert live.delete("a") and live.delete("b")
            assert live.search("dave smith") == ([], 0)
            assert len(live) == 0
            assert "a" not in live and "b" not in live
            # Deleting again reports absence.
            assert not live.delete("a")

    def test_upsert_replaces_and_moves_to_delta_order(self):
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(
                Table({"id": ["a", "b"], "v": ["dave smith", "ann chen"]}),
                "id", "v", threshold=0.4,
            )
            live.upsert("a", "mary jones")
            assert live.search("dave smith") == ([], 0)
            assert [k for k, _ in live.search("mary jones")[0]] == ["a"]
            assert live.records() == [("b", "ann chen"), ("a", "mary jones")]
            assert len(live) == 2

    def test_missing_value_upsert_acts_as_delete(self):
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(
                Table({"id": ["a"], "v": ["dave smith"]}), "id", "v", threshold=0.4
            )
            assert live.upsert("a", None) is False
            assert live.search("dave smith") == ([], 0)
            assert "a" not in live

    def test_new_tokens_extend_universe_and_match(self):
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(
                Table({"id": ["a"], "v": ["dave smith"]}), "id", "v", threshold=0.4
            )
            # Every token here is outside the base universe.
            live.upsert("z", "zelda zimmerman")
            matches, _ = live.search("zelda zimmerman")
            assert matches == [("z", 1.0)]
            assert live.stats()["universe_size"] > 2

    def test_duplicate_base_keys_rejected(self):
        with use_registry(), use_index_store():
            with pytest.raises(KeyConstraintError):
                LiveIndex.from_table(
                    Table({"id": ["a", "a"], "v": ["x y", "y z"]}),
                    "id", "v", threshold=0.4,
                )

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            LiveIndex.empty(threshold=1.5)
        with pytest.raises(ConfigurationError):
            LiveIndex.empty(measure="nope")
        with pytest.raises(ConfigurationError):
            LiveIndex.empty(kernel="simd")

    def test_generation_counts_every_mutation(self):
        with use_registry(), use_index_store():
            live = LiveIndex.empty("id", "v", threshold=0.4)
            assert live.generation == 0
            live.upsert("a", "x y")
            live.delete("a")
            live.compact()
            assert live.generation == 3


class TestCompaction:
    def test_compact_folds_delta_and_tombstones(self):
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(make_table(20), "id", "v", threshold=0.4)
            live.upsert("n1", "dave smith")
            live.delete("b0")
            before = live.search("dave smith")
            stats = live.compact()
            assert stats["delta_rows"] == 0
            assert stats["tombstones"] == 0
            assert stats["compactions"] == 1
            assert stats["base_rows"] == 20  # 20 base - 1 deleted + 1 upserted
            assert live.search("dave smith") == before

    def test_compact_does_not_block_readers(self):
        """Queries succeed while the compaction rebuild is in flight."""
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(make_table(30), "id", "v", threshold=0.4)
            live.upsert("n1", "dave smith")
            expected = live.search("dave smith")
            in_build = threading.Event()
            release = threading.Event()
            original = LiveIndex._build_base

            def slow_build(self, table):
                segment = original(self, table)
                if in_build.is_set() or not release.is_set():
                    in_build.set()
                    release.wait(5)
                return segment

            LiveIndex._build_base = slow_build
            try:
                worker = threading.Thread(target=live.compact)
                worker.start()
                assert in_build.wait(5)
                # Rebuild is parked mid-compaction: reads still answer
                # from the old segments, writes still land.
                assert live.search("dave smith") == expected
                live.upsert("n2", "dave smith")
                assert len(live.search("dave smith")[0]) == len(expected[0]) + 1
            finally:
                release.set()
                worker.join(10)
                LiveIndex._build_base = original
            # The op that raced the rebuild survived the swap.
            assert "n2" in live
            assert len(live.search("dave smith")[0]) == len(expected[0]) + 1
            assert live.stats()["compactions"] == 1

    def test_concurrent_compact_rejected(self):
        with use_registry(), use_index_store():
            live = LiveIndex.from_table(make_table(10), "id", "v", threshold=0.4)
            with live._lock:
                live._compacting = True
            with pytest.raises(ServiceError):
                live.compact()


class TestPersistence:
    def test_round_trip_with_ops(self, tmp_path):
        with use_registry():
            store = IndexStore(cache_dir=tmp_path)
            live = LiveIndex.from_table(
                make_table(20), "id", "v", threshold=0.4, store=store, name="rt"
            )
            live.upsert("n1", "dave smith")
            live.delete("b1")
            live.save()
            loaded = LiveIndex.load("rt", store=IndexStore(cache_dir=tmp_path))
            assert loaded.records() == live.records()
            assert loaded.generation == live.generation
            for value in ("dave smith", "ann chen", ""):
                assert loaded.search(value) == live.search(value)

    def test_round_trip_of_compacted_base(self, tmp_path):
        # Compaction persists a fresh fingerprinted base through the
        # store; a reload must find it on disk and replay zero ops.
        with use_registry():
            store = IndexStore(cache_dir=tmp_path)
            live = LiveIndex.from_table(
                make_table(20), "id", "v", threshold=0.4, store=store, name="ct"
            )
            live.upsert("n1", "dave smith")
            live.delete("b1")
            live.compact()
            live.save()
            manifest = [
                m for m in list_live_indexes(tmp_path) if m["name"] == "ct"
            ][0]
            assert manifest["delta_rows"] == 0
            assert manifest["tombstones"] == 0
            assert manifest["compactions"] == 1
            with use_registry() as registry:
                loaded = LiveIndex.load("ct", store=IndexStore(cache_dir=tmp_path))
                from tests.test_index import counter_total

                # The compacted base came straight off the disk tier.
                assert counter_total(registry, "index_builds_total") == 0
                assert counter_total(registry, "index_reuses_total", tier="disk") > 0
            assert loaded.records() == live.records()
            assert loaded.search("dave smith") == live.search("dave smith")

    def test_corrupt_live_file_rejected(self, tmp_path):
        (tmp_path / "live-bad.pkl").write_bytes(b"\x80\x04 not a pickle")
        with pytest.raises(ConfigurationError):
            LiveIndex.load("bad", store=IndexStore(cache_dir=tmp_path))

    def test_stale_format_rejected(self, tmp_path):
        state = {"format": -1}
        (tmp_path / "live-old.pkl").write_bytes(pickle.dumps(state))
        with pytest.raises(ConfigurationError):
            LiveIndex.load("old", store=IndexStore(cache_dir=tmp_path))

    def test_clear_disk_removes_live_segments(self, tmp_path):
        with use_registry():
            store = IndexStore(cache_dir=tmp_path)
            live = LiveIndex.from_table(
                make_table(10), "id", "v", threshold=0.4, store=store, name="gone"
            )
            live.upsert("n1", "dave smith")
            live.save()
            assert (tmp_path / "live-gone.pkl").exists()
            assert (tmp_path / "live-gone.json").exists()
            store.clear(disk=True)
            assert not (tmp_path / "live-gone.pkl").exists()
            assert not (tmp_path / "live-gone.json").exists()
            assert list_live_indexes(tmp_path) == []

    def test_live_segments_hidden_from_disk_artifacts(self, tmp_path):
        with use_registry():
            store = IndexStore(cache_dir=tmp_path)
            live = LiveIndex.from_table(
                make_table(10), "id", "v", threshold=0.4, store=store, name="x"
            )
            live.save()
            kinds = {row["kind"] for row in store.disk_artifacts()}
            assert "live" not in kinds
            assert {"records", "tokens", "encoding", "prefix", "masks"} <= kinds


class TestBlockerIntegration:
    def test_block_live_equals_block_tables(self):
        ltable = make_table(25, seed=3)
        rtable = make_table(25, seed=4)
        blocker = OverlapBlocker("v", overlap_size=1)
        with use_registry(), use_index_store():
            reference = blocker.block_tables(ltable, rtable, "id", "id")
            live = blocker.live_index(rtable, "id")
            got = blocker.block_live(ltable, live, "id", rtable=rtable)
            assert [got.column(c) for c in got.columns] == [
                reference.column(c) for c in reference.columns
            ]

    def test_block_live_tracks_right_side_churn(self):
        ltable = make_table(20, seed=5)
        rtable = make_table(20, seed=6)
        blocker = OverlapBlocker("v", overlap_size=2)
        with use_registry(), use_index_store():
            live = blocker.live_index(rtable, "id")
            live.upsert("new1", rtable.column("v")[0].upper())  # lowercased on entry
            live.delete("b0")
            current = live.to_table()
            reference = blocker.block_tables(ltable, current, "id", "id")
            got = blocker.block_live(ltable, live, "id")
            assert [got.column(c) for c in got.columns] == [
                reference.column(c) for c in reference.columns
            ]

    def test_qgram_blocker_live_equality(self):
        ltable = make_table(15, seed=7)
        rtable = make_table(15, seed=8)
        blocker = OverlapBlocker("v", overlap_size=3, word_level=False, q=3)
        with use_registry(), use_index_store():
            reference = blocker.block_tables(ltable, rtable, "id", "id")
            live = blocker.live_index(rtable, "id")
            got = blocker.block_live(ltable, live, "id", rtable=rtable)
            assert [got.column(c) for c in got.columns] == [
                reference.column(c) for c in reference.columns
            ]


class TestObservability:
    def test_delta_metrics(self):
        from tests.test_index import counter_total

        with use_registry() as registry, use_index_store():
            live = LiveIndex.from_table(
                make_table(10), "id", "v", threshold=0.4, name="obs"
            )
            live.upsert("n1", "dave smith")
            live.upsert("n2", "ann chen")
            live.delete("b0")
            live.search("dave smith")
            live.compact()
            assert counter_total(registry, "index_delta_ops_total", op="upsert") == 2
            assert counter_total(registry, "index_delta_ops_total", op="delete") == 1
            assert counter_total(registry, "index_compactions_total", index="obs") == 1
            assert registry.histogram("index_delta_probe_seconds").count >= 1
            gauge = registry.get("index_tombstones", index="obs")
            assert gauge is not None and gauge.value == 0  # reset by compaction

    def test_mask_and_merge_kernels_agree_with_delta(self):
        results = {}
        for kernel in ("mask", "merge"):
            with use_registry(), use_index_store():
                live = LiveIndex.from_table(
                    make_table(20), "id", "v", threshold=0.4, kernel=kernel
                )
                live.upsert("n1", "dave smith")
                live.delete("b0")
                results[kernel] = [live.search(v) for v in VALUES]
        assert results["mask"] == results["merge"]

    def test_qgram_tokenizer_round_trip(self):
        with use_registry(), use_index_store():
            tokenizer = QgramTokenizer(q=3, return_set=True)
            live = LiveIndex.from_table(
                make_table(15), "id", "v", tokenizer=tokenizer,
                measure="cosine", threshold=0.5,
            )
            live.upsert("n1", "dave smith")
            rebuilt = LiveIndex.from_table(
                live.to_table(), "id", "v", tokenizer=tokenizer,
                measure="cosine", threshold=0.5, store=IndexStore(),
            )
            for value in VALUES:
                assert live.search(value)[0] == rebuilt.search(value)[0]
