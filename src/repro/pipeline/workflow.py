"""EM workflow capture: the guide's development-stage output.

After the development stage the user has "an accurate EM workflow W,
captured as a Python script (of a sequence of commands)".
:class:`MagellanWorkflow` is that script as an object: an ordered list of
named steps (each an arbitrary callable over a shared artifact store).

Execution is no longer a private loop: the step list compiles to a
chain-shaped :class:`repro.runtime.OperatorGraph` and runs on the shared
runtime core, so captured workflows get the same structured event stream,
memoization, and DAG checkpointing as the cloud metamanager and Falcon.
The public API (``add_step`` / ``run`` / ``records`` / ``total_seconds``)
is unchanged.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import WorkflowError
from repro.runtime import (
    EventStream,
    GraphCheckpoint,
    NodeMemo,
    OperatorGraph,
    chain_graph,
    run_graph,
)
from repro.runtime.events import NODE_FAIL, NODE_FINISH, NODE_START, RunEvent

logger = logging.getLogger("repro.pipeline")


@dataclass
class StepRecord:
    """Execution record of one workflow step."""

    name: str
    seconds: float
    ok: bool
    error: str | None = None


@dataclass
class WorkflowStep:
    """One step: ``fn(artifacts)`` reads/writes the shared artifact dict.

    ``commutes`` is the optional commutativity-group label forwarded to
    the compiled :class:`repro.runtime.Operator` — adjacent steps sharing
    a non-empty label declare themselves order-independent (the
    candidate-set-filter contract), which lets the :mod:`repro.plan`
    optimizer reorder them most-selective-first under ``optimize=True``.
    """

    name: str
    fn: Callable[[dict[str, Any]], None]
    description: str = ""
    commutes: str = ""


def _log_sink(workflow_name: str) -> Callable[[RunEvent], None]:
    """An event sink reproducing the historical per-step log lines."""

    def sink(event: RunEvent) -> None:
        if event.event == NODE_START:
            logger.info("workflow %s: step %s starting", workflow_name, event.node)
        elif event.event == NODE_FINISH:
            logger.info(
                "workflow %s: step %s finished in %.3fs",
                workflow_name, event.node, event.wall_seconds,
            )
        elif event.event == NODE_FAIL:
            logger.error(
                "workflow %s: step %s failed after %.3fs: %s",
                workflow_name, event.node, event.wall_seconds, event.error,
            )

    return sink


class MagellanWorkflow:
    """An ordered, re-runnable sequence of EM steps."""

    def __init__(self, name: str):
        self.name = name
        self.steps: list[WorkflowStep] = []
        self.artifacts: dict[str, Any] = {}
        self.records: list[StepRecord] = []
        self.events: EventStream | None = None  # stream of the last run

    def add_step(
        self,
        name: str,
        fn: Callable[[dict[str, Any]], None],
        description: str = "",
        commutes: str = "",
    ) -> "MagellanWorkflow":
        """Append a step; returns self for chaining."""
        if any(step.name == name for step in self.steps):
            raise WorkflowError(f"duplicate step name {name!r}")
        self.steps.append(WorkflowStep(name, fn, description, commutes))
        return self

    def to_runtime_graph(self) -> OperatorGraph:
        """Compile the step list to a chain-shaped runtime graph."""
        if not any(step.commutes for step in self.steps):
            return chain_graph(self.name, [(step.name, step.fn) for step in self.steps])
        graph = OperatorGraph(self.name)
        previous: tuple[str, ...] = ()
        for step in self.steps:
            graph.add(
                step.name,
                step.fn,
                deps=previous,
                description=step.description,
                commutes=step.commutes,
            )
            previous = (step.name,)
        return graph

    def run(
        self,
        stop_on_error: bool = True,
        events: EventStream | None = None,
        memo: NodeMemo | None = None,
        checkpoint: GraphCheckpoint | None = None,
        optimize: bool = False,
    ) -> dict[str, Any]:
        """Execute all steps in order; returns the artifact store.

        Each step is timed, logged, and emitted on the structured event
        stream.  On failure, the error is recorded; with ``stop_on_error``
        (default) execution halts and the exception propagates after
        recording — production runs want the failure loud, not swallowed.

        ``events``, ``memo``, and ``checkpoint`` are passed through to the
        runtime core: pass a :class:`repro.runtime.GraphCheckpoint` to
        make a crashed production run resume at the first non-checkpointed
        step (steps must declare no out-of-store effects for that to be
        sound), or an :class:`repro.runtime.EventStream` to share one
        stream across many workflow runs.

        ``optimize=True`` runs the compiled graph through the
        :mod:`repro.plan` cost-based optimizer: statistics of prior runs
        are recorded into the process stats store and used to reorder
        commuting steps and pick per-step execution; with no stats yet
        the plan is a no-op and behaviour is unchanged.
        """
        self.events = events if events is not None else EventStream()
        sink = self.events.subscribe(_log_sink(self.name))
        self.records = []
        try:
            if optimize:
                from repro.plan import run_planned

                result = run_planned(
                    self.to_runtime_graph(),
                    self.artifacts,
                    events=self.events,
                    memo=memo,
                    checkpoint=checkpoint,
                    on_error="halt" if stop_on_error else "continue",
                )
            else:
                result = run_graph(
                    self.to_runtime_graph(),
                    self.artifacts,
                    events=self.events,
                    memo=memo,
                    checkpoint=checkpoint,
                    on_error="halt" if stop_on_error else "continue",
                )
        finally:
            self.events.unsubscribe(sink)
        self.records = [
            StepRecord(record.name, record.seconds, record.ok, record.error)
            for record in result.records.values()
        ]
        if stop_on_error and result.first_error is not None:
            raise result.first_error
        return self.artifacts

    def total_seconds(self) -> float:
        """Wall time of the last run."""
        return sum(record.seconds for record in self.records)
