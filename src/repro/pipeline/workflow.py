"""EM workflow capture: the guide's development-stage output.

After the development stage the user has "an accurate EM workflow W,
captured as a Python script (of a sequence of commands)".
:class:`MagellanWorkflow` is that script as an object: an ordered list of
named steps (each an arbitrary callable over a shared artifact store) that
can be re-executed in production, logged, and timed step by step.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import WorkflowError

logger = logging.getLogger("repro.pipeline")


@dataclass
class StepRecord:
    """Execution record of one workflow step."""

    name: str
    seconds: float
    ok: bool
    error: str | None = None


@dataclass
class WorkflowStep:
    """One step: ``fn(artifacts)`` reads/writes the shared artifact dict."""

    name: str
    fn: Callable[[dict[str, Any]], None]
    description: str = ""


class MagellanWorkflow:
    """An ordered, re-runnable sequence of EM steps."""

    def __init__(self, name: str):
        self.name = name
        self.steps: list[WorkflowStep] = []
        self.artifacts: dict[str, Any] = {}
        self.records: list[StepRecord] = []

    def add_step(
        self,
        name: str,
        fn: Callable[[dict[str, Any]], None],
        description: str = "",
    ) -> "MagellanWorkflow":
        """Append a step; returns self for chaining."""
        if any(step.name == name for step in self.steps):
            raise WorkflowError(f"duplicate step name {name!r}")
        self.steps.append(WorkflowStep(name, fn, description))
        return self

    def run(self, stop_on_error: bool = True) -> dict[str, Any]:
        """Execute all steps in order; returns the artifact store.

        Each step is timed and logged.  On failure, the error is recorded;
        with ``stop_on_error`` (default) execution halts and the exception
        propagates after recording — production runs want the failure
        loud, not swallowed.
        """
        self.records = []
        for step in self.steps:
            logger.info("workflow %s: step %s starting", self.name, step.name)
            started = time.perf_counter()
            try:
                step.fn(self.artifacts)
            except Exception as exc:
                seconds = time.perf_counter() - started
                self.records.append(StepRecord(step.name, seconds, False, repr(exc)))
                logger.exception(
                    "workflow %s: step %s failed after %.3fs",
                    self.name,
                    step.name,
                    seconds,
                )
                if stop_on_error:
                    raise
                continue
            seconds = time.perf_counter() - started
            self.records.append(StepRecord(step.name, seconds, True))
            logger.info(
                "workflow %s: step %s finished in %.3fs", self.name, step.name, seconds
            )
        return self.artifacts

    def total_seconds(self) -> float:
        """Wall time of the last run."""
        return sum(record.seconds for record in self.records)
