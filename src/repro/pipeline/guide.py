"""The how-to guide and the ecosystem's command inventory (Table 3).

A how-to guide "is not a user manual on how to use a tool.  Rather, it is
a step-by-step instruction to the user ... an (often complex) algorithm
for the user to follow."  :data:`DEVELOPMENT_GUIDE` encodes the
development-stage guide of Figure 2 and :data:`PRODUCTION_GUIDE` the
production-stage one; each step lists the *commands* (public callables of
this ecosystem) that support it, mirroring the paper's Table 3, whose
reproduction simply counts this inventory.

Every command entry names a real attribute path; :func:`resolve_command`
imports it, so the inventory cannot drift from the code (a test asserts
resolvability of every entry).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Command:
    """One user-facing tool: a public callable of some package."""

    name: str
    path: str  # "module:attr" or "module:attr.method"
    package: str  # the ecosystem package it ships in


@dataclass(frozen=True)
class GuideStep:
    """One step of a how-to guide."""

    name: str
    instruction: str
    commands: tuple[Command, ...] = field(default_factory=tuple)


def resolve_command(command: Command) -> Any:
    """Import and return the object a command entry points to."""
    module_name, _, attr_path = command.path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    return obj


def _cmd(name: str, path: str, package: str) -> Command:
    return Command(name, path, package)


_TBL = "repro.table"
_CAT = "repro.catalog"
_TXT = "repro.text"
_SJN = "repro.simjoin"
_SMP = "repro.sampling"
_BLK = "repro.blocking"
_FTR = "repro.features"
_MCH = "repro.matchers"
_LBL = "repro.labeling"
_MLP = "repro.ml"


DEVELOPMENT_GUIDE: tuple[GuideStep, ...] = (
    GuideStep(
        "read_write_data",
        "Load tables A and B into generic tables; record key metadata.",
        (
            _cmd("read_csv", "repro.table:read_csv", _TBL),
            _cmd("write_csv", "repro.table:write_csv", _TBL),
            _cmd("read_csv_metadata", "repro.table:read_csv_metadata", _TBL),
            _cmd("write_csv_metadata", "repro.table:write_csv_metadata", _TBL),
            _cmd("Table.from_rows", "repro.table:Table.from_rows", _TBL),
            _cmd("Table.to_rows", "repro.table:Table.to_rows", _TBL),
        ),
    ),
    GuideStep(
        "down_sample",
        "If A and B are large, down-sample them so matches survive.",
        (
            _cmd("down_sample", "repro.sampling:down_sample", _SMP),
            _cmd("naive_down_sample", "repro.sampling:naive_down_sample", _SMP),
        ),
    ),
    GuideStep(
        "data_exploration",
        "Profile schemas, types, value distributions; detect dirty data.",
        (
            _cmd("infer_schema", "repro.table:infer_schema", _TBL),
            _cmd("infer_column_type", "repro.table:infer_column_type", _TBL),
            _cmd("Table.unique_values", "repro.table:Table.unique_values", _TBL),
            _cmd("Table.head", "repro.table:Table.head", _TBL),
            _cmd("profile_missingness", "repro.cleaning:profile_missingness", "repro.cleaning"),
            _cmd("detect_generic_values", "repro.cleaning:detect_generic_values", "repro.cleaning"),
            _cmd("isolate_rows", "repro.cleaning:isolate_rows", "repro.cleaning"),
            _cmd("clean_em_dataset", "repro.cleaning:clean_em_dataset", "repro.cleaning"),
        ),
    ),
    GuideStep(
        "blocking",
        "Experiment with blockers; combine and debug their outputs.",
        (
            _cmd("AttrEquivalenceBlocker", "repro.blocking:AttrEquivalenceBlocker", _BLK),
            _cmd("HashBlocker", "repro.blocking:HashBlocker", _BLK),
            _cmd("OverlapBlocker", "repro.blocking:OverlapBlocker", _BLK),
            _cmd("RuleBasedBlocker", "repro.blocking:RuleBasedBlocker", _BLK),
            _cmd("SortedNeighborhoodBlocker", "repro.blocking:SortedNeighborhoodBlocker", _BLK),
            _cmd("BlackBoxBlocker", "repro.blocking:BlackBoxBlocker", _BLK),
            _cmd("CanopyBlocker", "repro.blocking:CanopyBlocker", _BLK),
            _cmd("candset_union", "repro.blocking:candset_union", _BLK),
            _cmd("candset_intersection", "repro.blocking:candset_intersection", _BLK),
            _cmd("candset_difference", "repro.blocking:candset_difference", _BLK),
            _cmd("debug_blocker", "repro.blocking:debug_blocker", _BLK),
            _cmd("blocking_recall", "repro.blocking:blocking_recall", _BLK),
            _cmd("set_sim_join", "repro.simjoin:set_sim_join", _SJN),
            _cmd("edit_distance_join", "repro.simjoin:edit_distance_join", _SJN),
            _cmd("WhitespaceTokenizer", "repro.text:WhitespaceTokenizer", _TXT),
            _cmd("QgramTokenizer", "repro.text:QgramTokenizer", _TXT),
            _cmd("AlphabeticTokenizer", "repro.text:AlphabeticTokenizer", _TXT),
            _cmd("AlphanumericTokenizer", "repro.text:AlphanumericTokenizer", _TXT),
            _cmd("DelimiterTokenizer", "repro.text:DelimiterTokenizer", _TXT),
            _cmd("Jaccard", "repro.text:sim.Jaccard", _TXT),
            _cmd("Levenshtein", "repro.text:sim.Levenshtein", _TXT),
            _cmd("JaroWinkler", "repro.text:sim.JaroWinkler", _TXT),
        ),
    ),
    GuideStep(
        "sampling",
        "Take a sample S from the candidate set C for labeling.",
        (
            _cmd("sample_candset", "repro.sampling:sample_candset", _SMP),
            _cmd("weighted_sample_candset", "repro.sampling:weighted_sample_candset", _SMP),
        ),
    ),
    GuideStep(
        "labeling",
        "Label the sampled pairs match/no-match (with undo and budget).",
        (
            _cmd("LabelingSession", "repro.labeling:LabelingSession", _LBL),
            _cmd("LabelingSession.label_candset", "repro.labeling:LabelingSession.label_candset", _LBL),
            _cmd("LabelingSession.undo", "repro.labeling:LabelingSession.undo", _LBL),
            _cmd("ConsensusLabeler", "repro.labeling:ConsensusLabeler", _LBL),
            _cmd("ConsoleLabeler", "repro.labeling:ConsoleLabeler", _LBL),
        ),
    ),
    GuideStep(
        "feature_vectors",
        "Generate features automatically, customize F, extract vectors.",
        (
            _cmd("get_attr_corres", "repro.features:get_attr_corres", _FTR),
            _cmd("get_features_for_matching", "repro.features:get_features_for_matching", _FTR),
            _cmd("get_features_for_blocking", "repro.features:get_features_for_blocking", _FTR),
            _cmd("FeatureTable.add", "repro.features:FeatureTable.add", _FTR),
            _cmd("FeatureTable.remove", "repro.features:FeatureTable.remove", _FTR),
            _cmd("make_token_feature", "repro.features:make_token_feature", _FTR),
            _cmd("make_string_feature", "repro.features:make_string_feature", _FTR),
            _cmd("make_exact_feature", "repro.features:make_exact_feature", _FTR),
            _cmd("make_numeric_feature", "repro.features:make_numeric_feature", _FTR),
            _cmd("make_blackbox_feature", "repro.features:make_blackbox_feature", _FTR),
            _cmd("extract_feature_vecs", "repro.features:extract_feature_vecs", _FTR),
            _cmd("feature_matrix", "repro.features:feature_matrix", _FTR),
            _cmd("match_schemas", "repro.schema_matching:match_schemas", "repro.schema_matching"),
            _cmd("suggest_attr_corres", "repro.schema_matching:suggest_attr_corres", "repro.schema_matching"),
        ),
    ),
    GuideStep(
        "matching",
        "Cross-validate candidate matchers, select and apply the best.",
        (
            _cmd("DTMatcher", "repro.matchers:DTMatcher", _MCH),
            _cmd("RFMatcher", "repro.matchers:RFMatcher", _MCH),
            _cmd("LogRegMatcher", "repro.matchers:LogRegMatcher", _MCH),
            _cmd("SVMMatcher", "repro.matchers:SVMMatcher", _MCH),
            _cmd("NBMatcher", "repro.matchers:NBMatcher", _MCH),
            _cmd("XGMatcher", "repro.matchers:XGMatcher", _MCH),
            _cmd("KNNMatcher", "repro.matchers:KNNMatcher", _MCH),
            _cmd("DeepMatcher", "repro.matchers:DeepMatcher", _MCH),
            _cmd("select_matcher", "repro.matchers:select_matcher", _MCH),
            _cmd("cross_validate", "repro.ml:cross_validate", _MLP),
            _cmd("debug_wrong_predictions", "repro.matchers:debug_wrong_predictions", _MCH),
            _cmd("feature_separation_report", "repro.matchers:feature_separation_report", _MCH),
            _cmd("cluster_matches", "repro.postprocess:cluster_matches", "repro.postprocess"),
            _cmd("enforce_one_to_one", "repro.postprocess:enforce_one_to_one", "repro.postprocess"),
            _cmd("merge_matches", "repro.postprocess:merge_matches", "repro.postprocess"),
            _cmd("dedupe_table", "repro.postprocess:dedupe_table", "repro.postprocess"),
            _cmd("self_block_table", "repro.postprocess:self_block_table", "repro.postprocess"),
        ),
    ),
    GuideStep(
        "computing_accuracy",
        "Check quality on a labeled hold-out; iterate on earlier steps.",
        (
            _cmd("eval_matches", "repro.matchers:eval_matches", _MCH),
            _cmd("precision_score", "repro.ml:precision_score", _MLP),
            _cmd("recall_score", "repro.ml:recall_score", _MLP),
            _cmd("f1_score", "repro.ml:f1_score", _MLP),
        ),
    ),
    GuideStep(
        "adding_rules",
        "Add hand-crafted rules before/after the ML matcher.",
        (
            _cmd("BooleanRuleMatcher", "repro.matchers:BooleanRuleMatcher", _MCH),
            _cmd("ThresholdMatcher", "repro.matchers:ThresholdMatcher", _MCH),
            _cmd("MLRuleMatcher", "repro.matchers:MLRuleMatcher", _MCH),
            _cmd("MatchRule.parse", "repro.matchers:MatchRule.parse", _MCH),
            _cmd("parse_rule", "repro.blocking:parse_rule", _BLK),
            _cmd("parse_predicate", "repro.blocking:parse_predicate", _BLK),
        ),
    ),
    GuideStep(
        "managing_metadata",
        "Keep keys and FK constraints valid in the standalone catalog.",
        (
            _cmd("get_catalog", "repro.catalog:get_catalog", _CAT),
            _cmd("Catalog.set_key", "repro.catalog:Catalog.set_key", _CAT),
            _cmd("Catalog.get_key", "repro.catalog:Catalog.get_key", _CAT),
            _cmd("Catalog.set_candset_metadata", "repro.catalog:Catalog.set_candset_metadata", _CAT),
            _cmd("Catalog.get_candset_metadata", "repro.catalog:Catalog.get_candset_metadata", _CAT),
            _cmd("Catalog.copy_metadata", "repro.catalog:Catalog.copy_metadata", _CAT),
            _cmd("Catalog.set_property", "repro.catalog:Catalog.set_property", _CAT),
            _cmd("Catalog.get_property", "repro.catalog:Catalog.get_property", _CAT),
            _cmd("validate_candset", "repro.catalog:validate_candset", _CAT),
            _cmd("check_fk_constraint", "repro.catalog:check_fk_constraint", _CAT),
        ),
    ),
)


PRODUCTION_GUIDE: tuple[GuideStep, ...] = (
    GuideStep(
        "capture_workflow",
        "Capture the accurate development workflow as a runnable script.",
        (
            _cmd("MagellanWorkflow", "repro.pipeline:MagellanWorkflow", "repro.pipeline"),
            _cmd("MagellanWorkflow.add_step", "repro.pipeline:MagellanWorkflow.add_step", "repro.pipeline"),
            _cmd("MagellanWorkflow.run", "repro.pipeline:MagellanWorkflow.run", "repro.pipeline"),
        ),
    ),
    GuideStep(
        "scale_out",
        "Partition the data and execute on multiple cores.",
        (
            _cmd("partition_table", "repro.pipeline:partition_table", "repro.pipeline"),
            _cmd("parallel_map_partitions", "repro.pipeline:parallel_map_partitions", "repro.pipeline"),
        ),
    ),
    GuideStep(
        "orchestrate",
        "Express the workflow as an operator DAG on the shared runtime.",
        (
            _cmd("OperatorGraph", "repro.runtime:OperatorGraph", "repro.runtime"),
            _cmd("OperatorGraph.add", "repro.runtime:OperatorGraph.add", "repro.runtime"),
            _cmd("chain_graph", "repro.runtime:chain_graph", "repro.runtime"),
            _cmd("run_graph", "repro.runtime:run_graph", "repro.runtime"),
            _cmd("SerialExecutor", "repro.runtime:SerialExecutor", "repro.runtime"),
            _cmd("ParallelExecutor", "repro.runtime:ParallelExecutor", "repro.runtime"),
            _cmd("EventStream", "repro.runtime:EventStream", "repro.runtime"),
            _cmd("EventStream.write_jsonl", "repro.runtime:EventStream.write_jsonl", "repro.runtime"),
            _cmd("NodeMemo", "repro.runtime:NodeMemo", "repro.runtime"),
            _cmd("GraphCheckpoint", "repro.runtime:GraphCheckpoint", "repro.runtime"),
        ),
    ),
    GuideStep(
        "operate",
        "Log, checkpoint, recover from crashes, monitor progress.",
        (
            _cmd("CheckpointedRun", "repro.pipeline:CheckpointedRun", "repro.pipeline"),
            _cmd("CheckpointedRun.execute", "repro.pipeline:CheckpointedRun.execute", "repro.pipeline"),
            _cmd("CheckpointedRun.completed_partitions", "repro.pipeline:CheckpointedRun.completed_partitions", "repro.pipeline"),
        ),
    ),
    GuideStep(
        "cope_with_new_data",
        "Match arriving data batches against the frozen workflow.",
        (
            _cmd("IncrementalMatcher", "repro.pipeline:IncrementalMatcher", "repro.pipeline"),
            _cmd("IncrementalMatcher.process_batch", "repro.pipeline:IncrementalMatcher.process_batch", "repro.pipeline"),
        ),
    ),
)


def command_counts(guide: tuple[GuideStep, ...] = DEVELOPMENT_GUIDE) -> dict[str, int]:
    """Number of commands per guide step (Table 3's Column E)."""
    return {step.name: len(step.commands) for step in guide}


def package_inventory(
    guides: tuple[tuple[GuideStep, ...], ...] = (DEVELOPMENT_GUIDE, PRODUCTION_GUIDE),
) -> dict[str, int]:
    """Number of distinct commands each package contributes."""
    per_package: dict[str, set[str]] = {}
    for guide in guides:
        for step in guide:
            for command in step.commands:
                per_package.setdefault(command.package, set()).add(command.name)
    return {package: len(names) for package, names in sorted(per_package.items())}
