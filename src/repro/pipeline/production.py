"""Production-stage execution: partition parallelism, checkpoints, recovery.

PyMatcher's production story (Section 4.1): execute the captured workflow
"on a multi-core single machine, using customized code or Dask".  Dask is
unavailable here, so this module provides the same capability directly:

* :func:`partition_table` / :func:`parallel_map_partitions` — split a
  table into partitions and map a function over them on a process pool
  (the Dask substitute); both now live in :mod:`repro.perf.parallel`,
  the executor shared with the sim joins, the blockers, and feature
  extraction, and are re-exported here for compatibility;
* :class:`CheckpointedRun` — persist each finished partition to disk so a
  crashed production run resumes where it left off instead of restarting
  (the paper's "scaling, logging, crash recovery, monitoring" list).

Workers inherit the mapped function through ``fork``, so it does not
need to be picklable.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import WorkflowError
from repro.perf.parallel import (  # noqa: F401  (compatibility re-exports)
    concat_tables as _concat_all,
    parallel_map_partitions,
    partition_table,
    run_sharded,
)
from repro.runtime import atomic_write_text
from repro.table.io import read_csv, write_csv
from repro.table.table import Table

logger = logging.getLogger("repro.pipeline.production")


class CheckpointedRun:
    """A resumable partitioned run with on-disk progress.

    Every completed partition's output is written under
    ``directory/<run_id>/part_<i>.csv`` plus a manifest; ``execute`` skips
    partitions whose output already exists, so re-running after a crash
    completes only the remaining work.
    """

    def __init__(self, run_id: str, directory: str | Path):
        self.run_id = run_id
        self.directory = Path(directory) / run_id
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / "manifest.json"

    # ------------------------------------------------------------------
    def _manifest(self) -> dict[str, Any]:
        if self._manifest_path.exists():
            return json.loads(self._manifest_path.read_text(encoding="utf-8"))
        return {"run_id": self.run_id, "n_partitions": None, "completed": []}

    def _save_manifest(self, manifest: dict[str, Any]) -> None:
        # Atomic (temp file + rename): a crash mid-write must not leave a
        # truncated manifest that would poison the resume.
        atomic_write_text(self._manifest_path, json.dumps(manifest, indent=2))

    def completed_partitions(self) -> set[int]:
        """Indices of partitions already finished in a previous run."""
        return set(self._manifest()["completed"])

    # ------------------------------------------------------------------
    def execute(
        self,
        table: Table,
        fn: Callable[[Table], Table],
        n_partitions: int = 4,
        n_jobs: int = 1,
    ) -> Table:
        """Run ``fn`` over each partition, checkpointing each result.

        Deterministic partitioning means a resumed run sees the same
        partitions; already-checkpointed partitions are loaded from disk
        and not recomputed.

        With ``n_jobs`` > 1 the pending partitions are computed on a
        forked process pool; checkpoint files, the manifest, and the
        concatenated output are written by the parent in partition-index
        order, so they are byte-identical to a serial run.
        """
        manifest = self._manifest()
        if manifest["n_partitions"] not in (None, n_partitions):
            raise WorkflowError(
                f"run {self.run_id!r} was started with "
                f"{manifest['n_partitions']} partitions; cannot resume with "
                f"{n_partitions}"
            )
        manifest["n_partitions"] = n_partitions
        partitions = partition_table(table, n_partitions)
        completed = set(manifest["completed"])
        pending = [
            index
            for index in range(len(partitions))
            if not (index in completed and (self.directory / f"part_{index}.csv").exists())
        ]

        computed: dict[int, Table] = {}
        if n_jobs != 1 and len(pending) > 1:
            logger.info(
                "run %s: computing %d pending partitions on %d jobs",
                self.run_id, len(pending), n_jobs,
            )
            results = run_sharded(
                [partitions[index] for index in pending],
                fn,
                n_jobs=n_jobs,
            )
            computed = dict(zip(pending, results))

        outputs: list[Table] = []
        for index, partition in enumerate(partitions):
            part_path = self.directory / f"part_{index}.csv"
            if index not in pending:
                logger.info("run %s: partition %d restored from checkpoint", self.run_id, index)
                outputs.append(read_csv(part_path))
                continue
            if index in computed:
                result = computed[index]
            else:
                logger.info("run %s: partition %d computing", self.run_id, index)
                result = fn(partition)
            write_csv(result, part_path)
            completed.add(index)
            manifest["completed"] = sorted(completed)
            self._save_manifest(manifest)
            outputs.append(result)
        return _concat_all(outputs)
