"""Streaming dedupe: one-at-a-time records merged into live clusters.

The deployed counterpart of batch dedupe and the workload the live-index
refactor (:mod:`repro.index.delta`) exists for — Section 6's "coping
with new data" challenge.  Records arrive one at a time; each is matched
against every record seen so far through a :class:`LiveIndex` (same
filter-verify kernel, same scores as the batch join), upserted so later
arrivals can match *it*, and merged into entity clusters by an
incremental union-find.

The correctness contract mirrors the live index's own: after streaming N
unique records, :meth:`StreamingDeduper.clusters` equals the connected
components of the batch self-join over the same N records at the same
threshold (tested in ``tests/test_streaming.py``).  The one semantic
difference from batch is inherent to streaming: cluster merges are
permanent, so *re*-upserting a changed value under an existing key can
leave historical merges in place that the new value alone would not
produce.

Usage::

    deduper = StreamingDeduper(threshold=0.6, compact_every=5000)
    for record in feed:
        result = deduper.add(record["id"], record["name"])
        if result.matches:
            ...  # this record joined an existing entity
    entities = deduper.clusters(min_size=2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ConfigurationError
from repro.index.delta import LiveIndex
from repro.index.store import IndexStore
from repro.obs import get_registry
from repro.table.table import Table
from repro.text.tokenizers import Tokenizer


class UnionFind:
    """Disjoint sets with path compression and union by size."""

    def __init__(self):
        self._parent: dict[Any, Any] = {}
        self._size: dict[Any, int] = {}

    def add(self, item: Any) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Any) -> Any:
        root = item
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:  # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Any, b: Any) -> bool:
        """Merge the sets holding ``a`` and ``b``; False if already one."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def groups(self) -> list[set[Any]]:
        by_root: dict[Any, set[Any]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)


@dataclass
class StreamMatch:
    """What happened when one streamed record was absorbed.

    ``matches`` are the ``(existing key, score)`` pairs the record
    matched (scores bit-identical to the batch join); ``merged`` counts
    how many previously-distinct clusters this record fused.
    """

    key: Any
    matches: list[tuple[Any, float]] = field(default_factory=list)
    merged: int = 0
    indexed: bool = True


class StreamingDeduper:
    """Absorb records one at a time into a live, clustered corpus.

    Each :meth:`add` runs match-then-upsert: the record is probed against
    the live index *before* being inserted (so it never matches itself),
    then indexed so every later arrival sees it, then unioned with its
    matches.  Keys must be unique across the stream for the batch
    equivalence to hold; re-using a key replaces the record's value in
    the index but keeps its historical cluster merges.
    """

    def __init__(
        self,
        key: str = "id",
        column: str = "value",
        tokenizer: Tokenizer | None = None,
        measure: str = "jaccard",
        threshold: float = 0.7,
        store: IndexStore | None = None,
        name: str = "stream-dedupe",
        compact_every: int | None = None,
        seed_table: Table | None = None,
    ):
        if compact_every is not None and compact_every < 1:
            raise ConfigurationError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        if seed_table is None:
            self.index = LiveIndex.empty(
                key, column, tokenizer=tokenizer, measure=measure,
                threshold=threshold, store=store, name=name,
            )
        else:
            self.index = LiveIndex.from_table(
                seed_table, key, column, tokenizer=tokenizer, measure=measure,
                threshold=threshold, store=store, name=name,
            )
        self._uf = UnionFind()
        for row_key, _ in self.index.records():
            self._uf.add(row_key)
        self._pairs: list[tuple[Any, Any, float]] = []
        self._compact_every = compact_every
        self._since_compaction = 0

    def add(self, row_key: Any, value: Any) -> StreamMatch:
        """Match one arriving record against everything seen, then index it."""
        matches, _ = self.index.search(value)
        # Probe-before-upsert: a record never matches itself, and under
        # unique keys the pair set accumulates exactly one (earlier,
        # later) edge per matching pair — the batch join's upper triangle.
        indexed = self.index.upsert(row_key, value)
        self._uf.add(row_key)
        merged = 0
        for match_key, score in matches:
            if match_key == row_key:
                continue
            self._pairs.append((match_key, row_key, score))
            self._uf.add(match_key)
            if self._uf.union(match_key, row_key):
                merged += 1
        registry = get_registry()
        registry.counter("stream_records_total").inc()
        registry.counter("stream_matches_total").inc(len(matches))
        if self._compact_every is not None:
            self._since_compaction += 1
            if self._since_compaction >= self._compact_every:
                self.index.compact()
                self._since_compaction = 0
        return StreamMatch(key=row_key, matches=matches, merged=merged, indexed=indexed)

    def add_many(self, items: list[tuple[Any, Any]]) -> list[StreamMatch]:
        """Absorb a batch of records; equal results to looping :meth:`add`.

        The batch is probed against the pre-batch corpus with one
        :meth:`LiveIndex.search_batch` call (one columnar kernel pass
        when the array backend is on), indexed with one
        :meth:`LiveIndex.upsert_many`, and intra-batch pairs — record
        ``i`` matching an earlier batch record ``j < i``, which
        sequential adds would have found through the delta — are scored
        directly from the token sets with the index's scorer, so every
        :class:`StreamMatch` (scores, match order, merge counts) is
        identical to what one-at-a-time :meth:`add` calls would return.

        The batched path needs probe-before-upsert to be well defined
        per batch: if any batch key already exists in the index or
        repeats within the batch, the whole batch falls back to
        sequential :meth:`add` calls (same results, no batching).  With
        ``compact_every`` set, compaction runs at most once per batch,
        at the end — a coarser cadence than sequential adds, with
        byte-identical search results either way.
        """
        items = list(items)
        if not items:
            return []
        keys = [row_key for row_key, _ in items]
        if len(set(keys)) != len(keys) or any(row_key in self.index for row_key in keys):
            return [self.add(row_key, value) for row_key, value in items]

        index = self.index
        token_sets: list[set[str] | None] = []
        for _, value in items:
            prepared = index._prepare(value)
            token_sets.append(
                None
                if prepared is None
                else set(index.tokenizer.tokenize_cached(prepared))
            )
        searched = index.search_batch([value for _, value in items])
        index.upsert_many(items)

        scorer = index._scorer
        threshold = index.threshold
        results: list[StreamMatch] = []
        total_matches = 0
        for i, (row_key, _) in enumerate(items):
            matches = list(searched[i][0])
            tokens = token_sets[i]
            if tokens:
                # Matches against earlier batch records, in the delta
                # insertion order sequential adds would have seen them.
                for j in range(i):
                    other = token_sets[j]
                    if not other:
                        continue
                    overlap = len(tokens & other)
                    if not overlap:
                        continue
                    score = scorer(overlap, len(tokens), len(other))
                    if score >= threshold:
                        matches.append((keys[j], score))
            self._uf.add(row_key)
            merged = 0
            for match_key, score in matches:
                self._pairs.append((match_key, row_key, score))
                self._uf.add(match_key)
                if self._uf.union(match_key, row_key):
                    merged += 1
            total_matches += len(matches)
            results.append(
                StreamMatch(
                    key=row_key,
                    matches=matches,
                    merged=merged,
                    indexed=tokens is not None,
                )
            )
        registry = get_registry()
        registry.counter("stream_records_total").inc(len(items))
        registry.counter("stream_matches_total").inc(total_matches)
        if self._compact_every is not None:
            self._since_compaction += len(items)
            if self._since_compaction >= self._compact_every:
                self.index.compact()
                self._since_compaction %= self._compact_every
        return results

    def clusters(self, min_size: int = 1) -> list[set[Any]]:
        """Current entity clusters, largest first (ties by member repr)."""
        groups = [g for g in self._uf.groups() if len(g) >= min_size]
        groups.sort(key=lambda group: (-len(group), sorted(map(str, group))))
        return groups

    def matched_pairs(self) -> list[tuple[Any, Any, float]]:
        """Every ``(earlier key, later key, score)`` match edge, in arrival order."""
        return list(self._pairs)

    def stats(self) -> dict[str, Any]:
        """Stream + live-index stats for dashboards and benchmarks."""
        stats = self.index.stats()
        stats.update(
            records=len(self._uf),
            match_edges=len(self._pairs),
            clusters=len(self.clusters()),
        )
        return stats
