"""PyMatcher pipelines: workflow capture, production execution, guides."""

from repro.pipeline.guide import (
    DEVELOPMENT_GUIDE,
    PRODUCTION_GUIDE,
    Command,
    GuideStep,
    command_counts,
    package_inventory,
    resolve_command,
)
from repro.pipeline.incremental import BatchResult, IncrementalMatcher
from repro.pipeline.production import (
    CheckpointedRun,
    parallel_map_partitions,
    partition_table,
)
from repro.pipeline.streaming import StreamingDeduper, StreamMatch, UnionFind
from repro.pipeline.workflow import MagellanWorkflow, StepRecord, WorkflowStep

__all__ = [
    "BatchResult",
    "CheckpointedRun",
    "IncrementalMatcher",
    "StreamingDeduper",
    "StreamMatch",
    "UnionFind",
    "Command",
    "DEVELOPMENT_GUIDE",
    "GuideStep",
    "MagellanWorkflow",
    "PRODUCTION_GUIDE",
    "StepRecord",
    "WorkflowStep",
    "command_counts",
    "package_inventory",
    "parallel_map_partitions",
    "partition_table",
    "resolve_command",
]
