"""Incremental matching: coping with new data in production.

Section 6 names "coping with new data" among the challenges of deployed
ML-based EM.  A production EM pipeline receives table B in batches (new
vendors, new transactions); re-matching all of A x B per batch wastes the
work already done.  :class:`IncrementalMatcher` freezes the development
stage's outputs — blocker, feature table, trained matcher — and applies
them to each new batch of right-table rows, maintaining the cumulative
match set and, optionally, a one-to-one constraint against the matches
already committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.blocking.base import Blocker
from repro.catalog.catalog import Catalog, get_catalog
from repro.exceptions import ConfigurationError, SchemaError
from repro.features.extraction import extract_feature_vecs
from repro.features.feature import FeatureTable
from repro.postprocess.clustering import enforce_one_to_one
from repro.table.table import Table

Pair = tuple[Any, Any]


@dataclass
class BatchResult:
    """Outcome of matching one batch of new rows."""

    batch_size: int
    candidate_pairs: int
    new_matches: set[Pair] = field(default_factory=set)
    skipped_existing: int = 0  # suppressed by the one-to-one constraint


class IncrementalMatcher:
    """Applies a frozen EM workflow to arriving right-table batches.

    Parameters
    ----------
    ltable:
        The reference table A (assumed stable between batches).
    blocker, feature_table, matcher:
        The development stage's outputs; the matcher must be fitted and
        expose ``predict_proba`` over feature-vector tables.
    threshold:
        Match-probability cutoff.
    one_to_one:
        When True (default), a left tuple already matched in a previous
        batch cannot be matched again, and within a batch ties are broken
        by probability.
    """

    def __init__(
        self,
        ltable: Table,
        blocker: Blocker,
        feature_table: FeatureTable,
        matcher,
        l_key: str = "id",
        r_key: str = "id",
        threshold: float = 0.5,
        one_to_one: bool = True,
        catalog: Catalog | None = None,
    ):
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
        self.ltable = ltable
        self.blocker = blocker
        self.feature_table = feature_table
        self.matcher = matcher
        self.l_key = l_key
        self.r_key = r_key
        self.threshold = threshold
        self.one_to_one = one_to_one
        self.catalog = catalog if catalog is not None else get_catalog()
        self.catalog.set_key(ltable, l_key)
        self.matches: set[Pair] = set()
        self._matched_left: set[Any] = set()
        self._seen_right: set[Any] = set()
        self.history: list[BatchResult] = []

    def process_batch(self, new_rows: Table) -> BatchResult:
        """Match one batch of new right-table rows against A."""
        new_rows.require_columns([self.r_key])
        duplicate_keys = self._seen_right & set(new_rows.column(self.r_key))
        if duplicate_keys:
            raise SchemaError(
                f"batch re-uses right keys already processed: "
                f"{sorted(map(str, duplicate_keys))[:3]}"
            )
        self._seen_right.update(new_rows.column(self.r_key))

        candset = self.blocker.block_tables(
            self.ltable, new_rows, self.l_key, self.r_key, catalog=self.catalog
        )
        result = BatchResult(batch_size=new_rows.num_rows, candidate_pairs=candset.num_rows)
        if candset.num_rows == 0:
            self.history.append(result)
            return result

        fv = extract_feature_vecs(candset, self.feature_table, self.catalog)
        proba = self.matcher.predict_proba(fv)
        meta = self.catalog.get_candset_metadata(candset)
        scored = [
            (l_id, r_id, float(p))
            for l_id, r_id, p in zip(
                candset.column(meta.fk_ltable), candset.column(meta.fk_rtable), proba
            )
            if p >= self.threshold
        ]
        if self.one_to_one:
            available = [
                (l_id, r_id, p)
                for l_id, r_id, p in scored
                if l_id not in self._matched_left
            ]
            result.skipped_existing = len(scored) - len(available)
            accepted = enforce_one_to_one(available)
        else:
            accepted = {(l_id, r_id) for l_id, r_id, _ in scored}

        result.new_matches = accepted
        self.matches |= accepted
        self._matched_left.update(l_id for l_id, _ in accepted)
        self.history.append(result)
        return result

    @property
    def total_processed(self) -> int:
        """Right rows seen across all batches."""
        return len(self._seen_right)
