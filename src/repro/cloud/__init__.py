"""CloudMatcher: services, workflow DAGs, engines, metamanager, facade."""

from repro.cloud.cloudmatcher import (
    CloudMatcher01,
    CloudMatcher10,
    CloudMatcher20,
    TaskResult,
)
from repro.cloud.context import WorkflowContext
from repro.cloud.cost import CostModel, TaskCostReport
from repro.cloud.dag import (
    EMWorkflow,
    Fragment,
    ServiceCall,
    build_falcon_workflow,
    decompose_fragments,
)
from repro.cloud.engines import ExecutionEngine, FragmentExecution, MetaManager
from repro.cloud.services import (
    DEFAULT_REGISTRY,
    Service,
    ServiceKind,
    ServiceRegistry,
    build_default_registry,
)

__all__ = [
    "CloudMatcher01",
    "CloudMatcher10",
    "CloudMatcher20",
    "CostModel",
    "DEFAULT_REGISTRY",
    "EMWorkflow",
    "ExecutionEngine",
    "Fragment",
    "FragmentExecution",
    "MetaManager",
    "Service",
    "ServiceCall",
    "ServiceKind",
    "ServiceRegistry",
    "TaskCostReport",
    "TaskResult",
    "WorkflowContext",
    "build_default_registry",
    "build_falcon_workflow",
    "decompose_fragments",
]
