"""Execution engines and the metamanager (CloudMatcher 1.0's core).

Three engines — user interaction, crowd, batch — each execute fragments
of their kind, one fragment at a time.  The :class:`MetaManager`
"interleave[s] the execution of DAG fragments coming from different EM
workflows and coordinate[s] all of the activities": it is a discrete-event
scheduler over *simulated* time, where a fragment's duration is its
measured machine time plus the simulated human/crowd seconds its services
report.  Interleaving lets a batch fragment of one workflow run while
another workflow waits on its user — the source of the multi-tenant
throughput win benchmarked for Figure 5.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import networkx as nx

from repro.cloud.context import WorkflowContext
from repro.cloud.dag import EMWorkflow, Fragment, decompose_fragments
from repro.cloud.services import ServiceKind
from repro.exceptions import WorkflowError


@dataclass
class FragmentExecution:
    """Record of one fragment's execution."""

    fragment: Fragment
    start: float  # simulated seconds
    end: float
    machine_seconds: float
    human_seconds: float


class ExecutionEngine:
    """Runs fragments of one kind; tracks simulated busy time."""

    def __init__(self, kind: ServiceKind):
        self.kind = kind
        self.busy_until = 0.0
        self.executions: list[FragmentExecution] = []

    def execute(
        self, fragment: Fragment, context: WorkflowContext, now: float
    ) -> FragmentExecution:
        """Execute a fragment's services; returns the timing record.

        The services run for real (mutating the context); their machine
        time is measured and their human/crowd time is whatever they
        report.  Simulated start is max(now, engine free).
        """
        if fragment.kind != self.kind:
            raise WorkflowError(
                f"{self.kind.value} engine cannot run a {fragment.kind.value} fragment"
            )
        start = max(now, self.busy_until)
        human_seconds = 0.0
        wall_start = time.perf_counter()
        for call in fragment.calls:
            human_seconds += call.service.run(context)
        machine_seconds = time.perf_counter() - wall_start
        end = start + machine_seconds + human_seconds
        record = FragmentExecution(fragment, start, end, machine_seconds, human_seconds)
        self.busy_until = end
        self.executions.append(record)
        return record


@dataclass
class WorkflowRun:
    """One workflow admitted to the metamanager."""

    workflow: EMWorkflow
    context: WorkflowContext
    fragments: list[Fragment] = field(default_factory=list)
    fragment_dag: "nx.DiGraph | None" = None
    completed: set[str] = field(default_factory=set)
    finish_time: float = 0.0

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.fragments)


class MetaManager:
    """Schedules fragments from concurrent workflows onto the engines.

    A greedy list scheduler over simulated time: at each step, among all
    ready fragments (predecessors done), dispatch the one whose engine
    frees up first; ties go to the workflow admitted earlier.  With
    ``interleave=False`` it degrades to CloudMatcher 0.1 behaviour — one
    workflow runs to completion before the next starts.
    """

    def __init__(self, interleave: bool = True):
        self.interleave = interleave
        # The batch cluster and the crowd are shared infrastructure; user
        # interaction is not — each submitted task has its own owner
        # answering its questions, so every run gets a private
        # user-interaction engine.
        self.engines = {
            ServiceKind.BATCH: ExecutionEngine(ServiceKind.BATCH),
            ServiceKind.CROWD: ExecutionEngine(ServiceKind.CROWD),
        }
        self._user_engines: dict[int, ExecutionEngine] = {}
        self.runs: list[WorkflowRun] = []

    def engine_for(self, run: "WorkflowRun", kind: ServiceKind) -> ExecutionEngine:
        """The engine that executes this run's fragments of ``kind``."""
        if kind is ServiceKind.USER_INTERACTION:
            engine = self._user_engines.get(id(run))
            if engine is None:
                engine = self._user_engines[id(run)] = ExecutionEngine(kind)
            return engine
        return self.engines[kind]

    def all_engines(self) -> list[ExecutionEngine]:
        """Every engine, shared and per-user."""
        return list(self.engines.values()) + list(self._user_engines.values())

    def submit(self, workflow: EMWorkflow, context: WorkflowContext) -> WorkflowRun:
        """Admit a workflow; fragments are computed at admission."""
        run = WorkflowRun(workflow, context)
        run.fragments, run.fragment_dag = decompose_fragments(workflow)
        self.runs.append(run)
        return run

    # ------------------------------------------------------------------
    def _ready_fragments(self, run: WorkflowRun) -> list[Fragment]:
        by_id = {fragment.fragment_id: fragment for fragment in run.fragments}
        ready = []
        for fragment in run.fragments:
            if fragment.fragment_id in run.completed:
                continue
            predecessors = run.fragment_dag.predecessors(fragment.fragment_id)
            if all(p in run.completed for p in predecessors):
                ready.append(by_id[fragment.fragment_id])
        return ready

    def run_all(self) -> float:
        """Execute every admitted workflow; returns the simulated makespan."""
        if not self.runs:
            return 0.0
        if not self.interleave:
            clock = 0.0
            for run in self.runs:
                clock = self._run_serial(run, clock)
                run.finish_time = clock
            return clock
        return self._run_interleaved()

    def _run_serial(self, run: WorkflowRun, clock: float) -> float:
        while not run.done:
            ready = self._ready_fragments(run)
            if not ready:
                raise WorkflowError("workflow deadlocked: no ready fragments")
            for fragment in ready:
                engine = self.engine_for(run, fragment.kind)
                record = engine.execute(fragment, run.context, clock)
                clock = max(clock, record.end)
                run.completed.add(fragment.fragment_id)
        return clock

    def _run_interleaved(self) -> float:
        # Event-driven greedy dispatch. heap entries: (dispatchable_at,
        # admission order, sequence) to break ties deterministically.
        makespan = 0.0
        pending = {id(run): run for run in self.runs}
        sequence = 0
        heap: list[tuple[float, int, int, "WorkflowRun", Fragment]] = []

        def push_ready(run: "WorkflowRun", order: int, now: float) -> None:
            nonlocal sequence
            dispatched = {entry[4].fragment_id for entry in heap}
            for fragment in self._ready_fragments(run):
                if fragment.fragment_id in dispatched:
                    continue
                engine = self.engine_for(run, fragment.kind)
                at = max(now, engine.busy_until)
                heapq.heappush(heap, (at, order, sequence, run, fragment))
                sequence += 1

        for order, run in enumerate(self.runs):
            push_ready(run, order, 0.0)

        order_of = {id(run): i for i, run in enumerate(self.runs)}
        while heap:
            at, order, _, run, fragment = heapq.heappop(heap)
            if fragment.fragment_id in run.completed:
                continue
            engine = self.engine_for(run, fragment.kind)
            record = engine.execute(fragment, run.context, at)
            run.completed.add(fragment.fragment_id)
            makespan = max(makespan, record.end)
            if run.done:
                run.finish_time = record.end
                pending.pop(id(run), None)
            push_ready(run, order_of[id(run)], record.end)
            # Newly freed engine may unblock other runs' queued fragments:
            # re-push their ready sets with updated availability.
            for other in pending.values():
                if other is not run:
                    push_ready(other, order_of[id(other)], record.end)
        if pending:
            raise WorkflowError("metamanager finished with incomplete workflows")
        return makespan
