"""Execution engines and the metamanager (CloudMatcher 1.0's core).

Three engines — user interaction, crowd, batch — each execute fragments
of their kind, one fragment at a time.  The :class:`MetaManager`
"interleave[s] the execution of DAG fragments coming from different EM
workflows and coordinate[s] all of the activities": it is a discrete-event
scheduler over *simulated* time, where a fragment's duration is its
measured machine time plus the simulated human/crowd seconds its services
report.  Interleaving lets a batch fragment of one workflow run while
another workflow waits on its user — the source of the multi-tenant
throughput win benchmarked for Figure 5.

Fragments are no longer bespoke call lists: each fragment compiles to a
:class:`repro.runtime.OperatorGraph` subgraph and runs on the shared
runtime core, so every service invocation lands on the metamanager's
structured :class:`repro.runtime.EventStream` (exportable as JSONL via
:meth:`MetaManager.write_event_log`) with wall and simulated time.

Readiness tracking is incremental: each run keeps remaining-predecessor
counts per fragment, decremented on completion — O(F + E) over a whole
workflow instead of the previous per-dispatch O(F^2) rescan.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from pathlib import Path

import networkx as nx

from repro.cloud.context import WorkflowContext
from repro.cloud.dag import EMWorkflow, Fragment, decompose_fragments
from repro.cloud.services import ServiceKind
from repro.exceptions import WorkflowError
from repro.obs import get_registry
from repro.runtime import EventStream, SerialExecutor, run_graph


@dataclass
class FragmentExecution:
    """Record of one fragment's execution."""

    fragment: Fragment
    start: float  # simulated seconds
    end: float
    machine_seconds: float
    human_seconds: float


class ExecutionEngine:
    """Runs fragments of one kind; tracks simulated busy time.

    When the owning metamanager hands the engine an event stream, every
    node of every fragment it executes is emitted there.
    """

    def __init__(
        self,
        kind: ServiceKind,
        events: EventStream | None = None,
        optimize: bool = False,
    ):
        self.kind = kind
        self.busy_until = 0.0
        self.executions: list[FragmentExecution] = []
        self.events = events
        self.optimize = optimize

    def execute(
        self, fragment: Fragment, context: WorkflowContext, now: float
    ) -> FragmentExecution:
        """Execute a fragment as a runtime subgraph; returns the record.

        The fragment's services run for real (mutating the context, which
        backs the runtime store); their machine time is measured and their
        human/crowd time is whatever the nodes report as simulated
        seconds.  Simulated start is max(now, engine free).
        """
        if fragment.kind != self.kind:
            raise WorkflowError(
                f"{self.kind.value} engine cannot run a {fragment.kind.value} fragment"
            )
        start = max(now, self.busy_until)
        graph = fragment.to_runtime_graph(context)
        wall_start = time.perf_counter()
        if self.optimize:
            # Fragment costs of prior workflow runs feed the plan; a
            # fragment the stats have never seen runs exactly as before.
            from repro.plan import run_planned

            result = run_planned(
                graph,
                context.artifacts,
                events=self.events,
                sim_at=start,
            )
        else:
            result = run_graph(
                graph,
                context.artifacts,
                executor=SerialExecutor(),
                events=self.events,
                sim_at=start,
            )
        machine_seconds = time.perf_counter() - wall_start
        human_seconds = result.sim_seconds()
        end = start + machine_seconds + human_seconds
        record = FragmentExecution(fragment, start, end, machine_seconds, human_seconds)
        self.busy_until = end
        self.executions.append(record)
        registry = get_registry()
        registry.counter("cloud_fragments_total", engine=self.kind.value).inc()
        registry.histogram(
            "cloud_fragment_machine_seconds", engine=self.kind.value
        ).observe(machine_seconds)
        if human_seconds:
            registry.counter(
                "cloud_fragment_sim_seconds_total", engine=self.kind.value
            ).inc(human_seconds)
        return record


@dataclass
class WorkflowRun:
    """One workflow admitted to the metamanager.

    Fragment readiness is tracked incrementally: ``_remaining`` holds each
    fragment's count of unfinished predecessors and ``_ready`` the ids
    whose count reached zero, updated by :meth:`complete` — no rescans.
    """

    workflow: EMWorkflow
    context: WorkflowContext
    fragments: list[Fragment] = field(default_factory=list)
    fragment_dag: "nx.DiGraph | None" = None
    completed: set[str] = field(default_factory=set)
    finish_time: float = 0.0
    _by_id: dict[str, Fragment] = field(default_factory=dict, repr=False)
    _position: dict[str, int] = field(default_factory=dict, repr=False)
    _remaining: dict[str, int] = field(default_factory=dict, repr=False)
    _ready: list[str] = field(default_factory=list, repr=False)

    def index_fragments(self) -> None:
        """(Re)build the incremental readiness state from the fragment DAG."""
        self._by_id = {fragment.fragment_id: fragment for fragment in self.fragments}
        self._position = {
            fragment.fragment_id: i for i, fragment in enumerate(self.fragments)
        }
        self._remaining = {
            fragment_id: self.fragment_dag.in_degree(fragment_id)
            for fragment_id in self._by_id
        }
        self._ready = [
            fragment.fragment_id
            for fragment in self.fragments  # already topologically ordered
            if self._remaining[fragment.fragment_id] == 0
            and fragment.fragment_id not in self.completed
        ]

    def ready_fragments(self) -> list[Fragment]:
        """Fragments whose predecessors have all completed, in DAG order."""
        return [self._by_id[fragment_id] for fragment_id in self._ready]

    def complete(self, fragment_id: str) -> None:
        """Mark a fragment done; newly unblocked successors become ready."""
        if fragment_id in self.completed:
            return
        self.completed.add(fragment_id)
        if fragment_id in self._ready:
            self._ready.remove(fragment_id)
        newly_ready = []
        for successor in self.fragment_dag.successors(fragment_id):
            self._remaining[successor] -= 1
            if self._remaining[successor] == 0 and successor not in self.completed:
                newly_ready.append(successor)
        if newly_ready:
            self._ready = sorted(
                self._ready + newly_ready, key=self._position.__getitem__
            )

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.fragments)


class MetaManager:
    """Schedules fragments from concurrent workflows onto the engines.

    A greedy list scheduler over simulated time: at each step, among all
    ready fragments (predecessors done), dispatch the one whose engine
    frees up first; ties go to the workflow admitted earlier.  With
    ``interleave=False`` it degrades to CloudMatcher 0.1 behaviour — one
    workflow runs to completion before the next starts.

    All engines share one :class:`~repro.runtime.EventStream`; per-node
    events of every workflow land there in dispatch order.
    """

    def __init__(
        self,
        interleave: bool = True,
        events: EventStream | None = None,
        optimize: bool = False,
    ):
        self.interleave = interleave
        self.events = events if events is not None else EventStream()
        self.optimize = optimize
        # The batch cluster and the crowd are shared infrastructure; user
        # interaction is not — each submitted task has its own owner
        # answering its questions, so every run gets a private
        # user-interaction engine.
        self.engines = {
            ServiceKind.BATCH: ExecutionEngine(ServiceKind.BATCH, self.events, optimize),
            ServiceKind.CROWD: ExecutionEngine(ServiceKind.CROWD, self.events, optimize),
        }
        self._user_engines: dict[int, ExecutionEngine] = {}
        self.runs: list[WorkflowRun] = []

    def engine_for(self, run: "WorkflowRun", kind: ServiceKind) -> ExecutionEngine:
        """The engine that executes this run's fragments of ``kind``."""
        if kind is ServiceKind.USER_INTERACTION:
            engine = self._user_engines.get(id(run))
            if engine is None:
                engine = self._user_engines[id(run)] = ExecutionEngine(
                    kind, self.events, self.optimize
                )
            return engine
        return self.engines[kind]

    def all_engines(self) -> list[ExecutionEngine]:
        """Every engine, shared and per-user."""
        return list(self.engines.values()) + list(self._user_engines.values())

    def submit(self, workflow: EMWorkflow, context: WorkflowContext) -> WorkflowRun:
        """Admit a workflow; fragments are computed at admission."""
        run = WorkflowRun(workflow, context)
        run.fragments, run.fragment_dag = decompose_fragments(workflow)
        run.index_fragments()
        self.runs.append(run)
        return run

    def write_event_log(self, path: str | Path) -> Path:
        """Export every node event of every executed workflow as JSONL."""
        return self.events.write_jsonl(path)

    # ------------------------------------------------------------------
    def run_all(self) -> float:
        """Execute every admitted workflow; returns the simulated makespan."""
        if not self.runs:
            return 0.0
        if not self.interleave:
            clock = 0.0
            for run in self.runs:
                clock = self._run_serial(run, clock)
                run.finish_time = clock
            return clock
        return self._run_interleaved()

    def _run_serial(self, run: WorkflowRun, clock: float) -> float:
        while not run.done:
            ready = run.ready_fragments()
            if not ready:
                raise WorkflowError("workflow deadlocked: no ready fragments")
            for fragment in ready:
                engine = self.engine_for(run, fragment.kind)
                record = engine.execute(fragment, run.context, clock)
                clock = max(clock, record.end)
                run.complete(fragment.fragment_id)
        return clock

    def _run_interleaved(self) -> float:
        # Event-driven greedy dispatch. heap entries: (dispatchable_at,
        # admission order, sequence) to break ties deterministically; the
        # trailing element records when the fragment became ready so the
        # dispatcher can report queue wait (the same ready-to-start
        # latency the serving layer's histograms report in wall time).
        makespan = 0.0
        pending = {id(run): run for run in self.runs}
        sequence = 0
        heap: list[tuple[float, int, int, "WorkflowRun", Fragment, float]] = []

        def push_ready(run: "WorkflowRun", order: int, now: float) -> None:
            nonlocal sequence
            dispatched = {entry[4].fragment_id for entry in heap}
            for fragment in run.ready_fragments():
                if fragment.fragment_id in dispatched:
                    continue
                engine = self.engine_for(run, fragment.kind)
                at = max(now, engine.busy_until)
                heapq.heappush(heap, (at, order, sequence, run, fragment, now))
                sequence += 1

        for order, run in enumerate(self.runs):
            push_ready(run, order, 0.0)

        order_of = {id(run): i for i, run in enumerate(self.runs)}
        registry = get_registry()
        while heap:
            at, order, _, run, fragment, ready_at = heapq.heappop(heap)
            if fragment.fragment_id in run.completed:
                continue
            # Queue depth per engine kind at dispatch time: fragments
            # still waiting in the heap, plus the one being dispatched.
            waiting: dict[str, int] = {kind.value: 0 for kind in ServiceKind}
            waiting[fragment.kind.value] += 1
            for entry in heap:
                if entry[4].fragment_id not in entry[3].completed:
                    waiting[entry[4].kind.value] += 1
            for kind_value, depth in waiting.items():
                registry.gauge("cloud_queue_depth", engine=kind_value).set(depth)
            engine = self.engine_for(run, fragment.kind)
            record = engine.execute(fragment, run.context, at)
            registry.histogram(
                "cloud_queue_wait_seconds", engine=fragment.kind.value
            ).observe(record.start - ready_at)
            run.complete(fragment.fragment_id)
            makespan = max(makespan, record.end)
            if run.done:
                run.finish_time = record.end
                pending.pop(id(run), None)
            push_ready(run, order_of[id(run)], record.end)
            # Newly freed engine may unblock other runs' queued fragments:
            # re-push their ready sets with updated availability.
            for other in pending.values():
                if other is not run:
                    push_ready(other, order_of[id(other)], record.end)
        if pending:
            raise WorkflowError("metamanager finished with incomplete workflows")
        return makespan
