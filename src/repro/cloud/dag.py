"""EM workflows as DAGs, and their decomposition into engine fragments.

CloudMatcher 1.0's key idea (Section 5.1): "break each submitted EM
workflow into multiple DAG fragments, where each fragment performs only
one kind of task, e.g., interaction with the user, batch processing of
data, crowdsourcing ... then execute each fragment on an appropriate
execution engine".  This module builds the workflow DAG (networkx) and
computes the same-kind fragment decomposition plus the fragment-level DAG
that the metamanager schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from repro.cloud.services import Service, ServiceKind, ServiceRegistry
from repro.exceptions import WorkflowError
from repro.runtime import OperatorGraph

if TYPE_CHECKING:
    from repro.cloud.context import WorkflowContext


@dataclass(frozen=True)
class ServiceCall:
    """One node of an EM workflow: a named invocation of a service."""

    node_id: str
    service: Service

    @property
    def kind(self) -> ServiceKind:
        return self.service.kind


class EMWorkflow:
    """A DAG of service calls for one EM task."""

    def __init__(self, name: str):
        self.name = name
        self.graph: "nx.DiGraph" = nx.DiGraph()
        self._calls: dict[str, ServiceCall] = {}

    def add_call(
        self, node_id: str, service: Service, after: list[str] | None = None
    ) -> ServiceCall:
        """Add a service call, depending on the given predecessor nodes."""
        if node_id in self._calls:
            raise WorkflowError(f"duplicate workflow node {node_id!r}")
        call = ServiceCall(node_id, service)
        self._calls[node_id] = call
        self.graph.add_node(node_id)
        for predecessor in after or []:
            if predecessor not in self._calls:
                raise WorkflowError(f"unknown predecessor {predecessor!r}")
            self.graph.add_edge(predecessor, node_id)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise WorkflowError("workflow graph must stay acyclic")
        return call

    def call(self, node_id: str) -> ServiceCall:
        return self._calls[node_id]

    def topological_calls(self) -> list[ServiceCall]:
        """All calls in a valid execution order."""
        return [self._calls[node] for node in nx.topological_sort(self.graph)]

    def to_runtime_graph(self, context: "WorkflowContext") -> OperatorGraph:
        """Compile the whole workflow to a runtime operator graph.

        Each service call becomes one operator over the context's artifact
        dict (the runtime store *is* ``context.artifacts``); the operator
        returns the service's simulated human/crowd seconds, which the
        runtime records as ``sim_seconds`` on the node's events.
        """
        graph = OperatorGraph(self.name)
        for call in self.topological_calls():
            graph.add(
                call.node_id,
                _service_operator(call, context),
                deps=tuple(sorted(self.graph.predecessors(call.node_id))),
                description=call.service.description,
                checkpoint=False,  # services write undeclared context slots
            )
        return graph

    def __len__(self) -> int:
        return len(self._calls)


def _service_operator(call: ServiceCall, context: "WorkflowContext"):
    """Wrap a service call as a runtime operator body.

    The store handed to the operator is ``context.artifacts`` itself, so
    services keep communicating through ``ctx.put``/``ctx.get`` unchanged.
    """

    def operator(store) -> float:
        return call.service.run(context)

    return operator


@dataclass
class Fragment:
    """A maximal same-kind group of workflow nodes, scheduled as a unit."""

    fragment_id: str
    workflow: EMWorkflow
    kind: ServiceKind
    calls: list[ServiceCall] = field(default_factory=list)

    def to_runtime_graph(self, context: "WorkflowContext") -> OperatorGraph:
        """This fragment as a runtime subgraph of its workflow's graph.

        Dependencies are restricted to intra-fragment edges — by the
        fragment contract, every external predecessor has already run
        when the metamanager dispatches the fragment.
        """
        graph = OperatorGraph(self.workflow.name)
        members = {call.node_id for call in self.calls}
        for call in self.calls:  # already in workflow topological order
            graph.add(
                call.node_id,
                _service_operator(call, context),
                deps=tuple(
                    sorted(
                        p
                        for p in self.workflow.graph.predecessors(call.node_id)
                        if p in members
                    )
                ),
                description=call.service.description,
                checkpoint=False,
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"Fragment({self.fragment_id}, {self.kind.value}, "
            f"{[c.node_id for c in self.calls]})"
        )


def decompose_fragments(workflow: EMWorkflow) -> tuple[list[Fragment], "nx.DiGraph"]:
    """Split a workflow into same-kind fragments plus the fragment DAG.

    Fragments are the connected components of the subgraph induced by
    edges joining nodes of the same kind; the fragment DAG inherits every
    cross-fragment edge.  Node order inside a fragment follows the
    workflow's topological order, so a fragment is executable as a unit
    once all its external predecessors have finished.
    """
    graph = workflow.graph
    same_kind = nx.Graph()
    same_kind.add_nodes_from(graph.nodes)
    for source, target in graph.edges:
        if workflow.call(source).kind == workflow.call(target).kind:
            same_kind.add_edge(source, target)

    node_to_fragment: dict[str, str] = {}
    fragments: dict[str, Fragment] = {}
    topo_order = {node: i for i, node in enumerate(nx.topological_sort(graph))}
    for index, component in enumerate(nx.connected_components(same_kind)):
        nodes = sorted(component, key=topo_order.__getitem__)
        fragment_id = f"{workflow.name}/f{index}"
        fragment = Fragment(
            fragment_id,
            workflow,
            workflow.call(nodes[0]).kind,
            [workflow.call(node) for node in nodes],
        )
        fragments[fragment_id] = fragment
        for node in nodes:
            node_to_fragment[node] = fragment_id

    fragment_dag: "nx.DiGraph" = nx.DiGraph()
    fragment_dag.add_nodes_from(fragments)
    for source, target in graph.edges:
        f_source = node_to_fragment[source]
        f_target = node_to_fragment[target]
        if f_source != f_target:
            fragment_dag.add_edge(f_source, f_target)
    if not nx.is_directed_acyclic_graph(fragment_dag):
        # Merging same-kind components can in principle create cycles at
        # the fragment level; fall back to singleton fragments.
        fragments = {}
        fragment_dag = nx.DiGraph()
        for node in graph.nodes:
            fragment_id = f"{workflow.name}/n_{node}"
            fragments[fragment_id] = Fragment(
                fragment_id, workflow, workflow.call(node).kind, [workflow.call(node)]
            )
            node_to_fragment[node] = fragment_id
        fragment_dag.add_nodes_from(fragments)
        for source, target in graph.edges:
            fragment_dag.add_edge(node_to_fragment[source], node_to_fragment[target])
    ordered = [
        fragments[fragment_id] for fragment_id in nx.topological_sort(fragment_dag)
    ]
    return ordered, fragment_dag


def build_falcon_workflow(
    name: str,
    registry: ServiceRegistry,
    use_crowd: bool = False,
) -> EMWorkflow:
    """The stock Falcon workflow as a service DAG (Figure 3 as a graph).

    With ``use_crowd`` the two labeling-heavy services are re-tagged to the
    crowd engine (labels then come from the session's CrowdLabeler).
    """
    workflow = EMWorkflow(name)

    def service(service_name: str) -> Service:
        base = registry.get(service_name)
        if use_crowd and service_name in (
            "active_learn_blocking",
            "active_learn_matching",
        ):
            return Service(
                base.name, ServiceKind.CROWD, base.description, base.run, base.composite
            )
        return base

    workflow.add_call("upload", service("upload_tables"))
    workflow.add_call("metadata", service("edit_metadata"), after=["upload"])
    workflow.add_call("profile", service("profile_dataset"), after=["upload"])
    workflow.add_call("sample", service("sample_pairs"), after=["profile", "metadata"])
    workflow.add_call("blk_features", service("generate_blocking_features"), after=["profile"])
    workflow.add_call("sample_vectors", service("extract_sample_vectors"), after=["sample", "blk_features"])
    workflow.add_call("learn_blocking", service("active_learn_blocking"), after=["sample_vectors"])
    workflow.add_call("extract_rules", service("extract_blocking_rules"), after=["learn_blocking"])
    workflow.add_call("evaluate_rules", service("evaluate_blocking_rules"), after=["extract_rules"])
    workflow.add_call("execute_rules", service("execute_blocking_rules"), after=["evaluate_rules"])
    workflow.add_call("match_features", service("generate_matching_features"), after=["profile"])
    workflow.add_call(
        "candidate_vectors",
        service("extract_candidate_vectors"),
        after=["execute_rules", "match_features"],
    )
    workflow.add_call("learn_matching", service("active_learn_matching"), after=["candidate_vectors"])
    workflow.add_call("train", service("train_classifier"), after=["learn_matching"])
    workflow.add_call("apply", service("apply_classifier"), after=["train"])
    workflow.add_call("export", service("export_results"), after=["apply"])
    return workflow
