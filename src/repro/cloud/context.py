"""Workflow context: the state a CloudMatcher EM workflow threads through
its services.

Each submitted EM task gets one :class:`WorkflowContext` carrying the
dataset, the labeling session (single user or crowd), the Falcon
configuration, and every intermediate artifact (sample, forests, rules,
candidate set, predictions).  Services read and write named slots; a
service that needs a slot another service has not produced yet fails with
a precise error — the workflow DAG's edges exist to prevent exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datasets.generator import EMDataset
from repro.exceptions import ServiceError
from repro.falcon.falcon import FalconConfig
from repro.labeling.session import LabelingSession


@dataclass
class WorkflowContext:
    """Mutable state of one EM workflow execution."""

    dataset: EMDataset
    session: LabelingSession
    config: FalconConfig = field(default_factory=FalconConfig)
    task_name: str = "em-task"
    artifacts: dict[str, Any] = field(default_factory=dict)

    def put(self, slot: str, value: Any) -> None:
        """Store an artifact under a named slot."""
        self.artifacts[slot] = value

    def get(self, slot: str) -> Any:
        """Fetch an artifact; raise ServiceError when absent."""
        if slot not in self.artifacts:
            raise ServiceError(
                f"workflow artifact {slot!r} not available; "
                f"have {sorted(self.artifacts)}"
            )
        return self.artifacts[slot]

    def has(self, slot: str) -> bool:
        return slot in self.artifacts
