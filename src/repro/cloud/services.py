"""CloudMatcher's service registry (Table 4 of the paper).

CloudMatcher 2.0 "extracts a set of basic services from the Falcon EM
workflow ... then allows users to flexibly combine them"; Appendix D
counts 18 basic services and 2 composite services.  Each service here is
atomic, interoperable (they communicate only through the
:class:`~repro.cloud.context.WorkflowContext`), and tagged with the
execution-engine kind that runs it: user interaction, crowd, or batch.

A service's ``run(ctx)`` returns the simulated human/crowd seconds it
consumed; machine seconds are measured by the engine around the call.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.blocking.base import make_candset
from repro.blocking.overlap import OverlapBlocker
from repro.blocking.rules import execute_rules
from repro.catalog.catalog import get_catalog
from repro.cloud.context import WorkflowContext
from repro.exceptions import ServiceError
from repro.falcon.active import active_learn_forest
from repro.falcon.falcon import _sample_pairs
from repro.falcon.rules import (
    evaluate_rules,
    extract_rules_from_forest,
    select_precise_rules,
)
from repro.features.extraction import extract_feature_vecs, feature_matrix
from repro.features.generation import (
    get_features_for_blocking,
    get_features_for_matching,
)
from repro.table.schema import infer_schema
from repro.table.table import Table


class ServiceKind(Enum):
    """Which execution engine runs the service."""

    USER_INTERACTION = "user_interaction"
    CROWD = "crowd"
    BATCH = "batch"


@dataclass(frozen=True)
class Service:
    """One registered (micro)service."""

    name: str
    kind: ServiceKind
    description: str
    run: Callable[[WorkflowContext], float]
    composite: bool = False
    core: bool = True  # False for utilities beyond the paper's Table 4


class ServiceRegistry:
    """Name -> Service map; the ecosystem's 'list of services' (Table 4)."""

    def __init__(self) -> None:
        self._services: dict[str, Service] = {}

    def register(self, service: Service) -> Service:
        """Add a service; names must be unique."""
        if service.name in self._services:
            raise ServiceError(f"duplicate service name {service.name!r}")
        self._services[service.name] = service
        return service

    def get(self, name: str) -> Service:
        """Look up a service by name."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceError(
                f"no service named {name!r}; have {sorted(self._services)}"
            ) from None

    def names(self, composite: bool | None = None) -> list[str]:
        """Service names, optionally filtered by compositeness."""
        return [
            name
            for name, service in self._services.items()
            if composite is None or service.composite == composite
        ]

    def services(self) -> list[Service]:
        """All registered services, in registration order."""
        return list(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, name: str) -> bool:
        return name in self._services


# ----------------------------------------------------------------------
# Basic service implementations
# ----------------------------------------------------------------------
def _svc_upload_tables(ctx: WorkflowContext) -> float:
    ctx.dataset.register()
    ctx.put("ltable", ctx.dataset.ltable)
    ctx.put("rtable", ctx.dataset.rtable)
    # Uploading two tables through the web UI: a fixed human cost.
    return 60.0


def _svc_profile_dataset(ctx: WorkflowContext) -> float:
    profile = {
        "l_rows": ctx.dataset.ltable.num_rows,
        "r_rows": ctx.dataset.rtable.num_rows,
        "l_schema": {k: v.value for k, v in infer_schema(ctx.dataset.ltable).items()},
        "r_schema": {k: v.value for k, v in infer_schema(ctx.dataset.rtable).items()},
    }
    ctx.put("profile", profile)
    return 0.0


def _svc_edit_metadata(ctx: WorkflowContext) -> float:
    catalog = get_catalog()
    catalog.set_key(ctx.dataset.ltable, ctx.dataset.l_key)
    catalog.set_key(ctx.dataset.rtable, ctx.dataset.r_key)
    # Confirming keys in the UI.
    return 20.0


def _svc_down_sample(ctx: WorkflowContext) -> float:
    from repro.sampling.down_sample import down_sample

    size = ctx.config.sample_size
    if ctx.dataset.ltable.num_rows > size * 4:
        l_sample, r_sample = down_sample(
            ctx.dataset.ltable,
            ctx.dataset.rtable,
            size * 4,
            l_key=ctx.dataset.l_key,
            r_key=ctx.dataset.r_key,
            seed=ctx.config.random_state,
        )
        ctx.put("l_dev", l_sample)
        ctx.put("r_dev", r_sample)
    else:
        ctx.put("l_dev", ctx.dataset.ltable)
        ctx.put("r_dev", ctx.dataset.rtable)
    return 0.0


def _svc_sample_pairs(ctx: WorkflowContext) -> float:
    sample = _sample_pairs(
        ctx.dataset, ctx.config.sample_size, ctx.config.random_state, get_catalog()
    )
    ctx.put("sample", sample)
    return 0.0


def _svc_generate_blocking_features(ctx: WorkflowContext) -> float:
    ctx.put(
        "blocking_features",
        get_features_for_blocking(
            ctx.dataset.ltable, ctx.dataset.rtable, ctx.dataset.l_key, ctx.dataset.r_key
        ),
    )
    return 0.0


def _svc_generate_matching_features(ctx: WorkflowContext) -> float:
    ctx.put(
        "matching_features",
        get_features_for_matching(
            ctx.dataset.ltable, ctx.dataset.rtable, ctx.dataset.l_key, ctx.dataset.r_key
        ),
    )
    return 0.0


def _svc_extract_sample_vectors(ctx: WorkflowContext) -> float:
    features = ctx.get("blocking_features")
    sample = ctx.get("sample")
    fv = extract_feature_vecs(sample, features)
    names = features.names()
    ctx.put("sample_fv", fv)
    ctx.put("sample_X", feature_matrix(fv, names, impute=False))
    meta = get_catalog().get_candset_metadata(sample)
    ctx.put(
        "sample_pairs",
        list(zip(sample.column(meta.fk_ltable), sample.column(meta.fk_rtable))),
    )
    return 0.0


def _svc_label_pairs(ctx: WorkflowContext) -> float:
    """Label an explicit list of pairs (slot 'pairs_to_label')."""
    pairs = ctx.get("pairs_to_label")
    before = ctx.session.labeler.labeling_seconds
    ctx.put("labels", ctx.session.ask_many(pairs))
    return ctx.session.labeler.labeling_seconds - before


def _active_learn(ctx: WorkflowContext, stage: str) -> float:
    config = ctx.config
    before = ctx.session.labeler.labeling_seconds
    if stage == "blocking":
        pairs, X = ctx.get("sample_pairs"), ctx.get("sample_X")
        names = ctx.get("blocking_features").names()
        seed = config.random_state
        budget = config.blocking_budget
    else:
        pairs, X = ctx.get("candidate_pairs"), ctx.get("candidate_X")
        names = ctx.get("matching_features").names()
        seed = config.random_state + 1
        budget = config.matching_budget
    result = active_learn_forest(
        pairs,
        X,
        ctx.session,
        feature_names=names,
        n_trees=config.n_trees,
        seed_size=config.seed_size,
        batch_size=config.batch_size,
        max_iterations=config.max_iterations,
        max_questions=budget,
        random_state=seed,
    )
    ctx.put(f"{stage}_stage", result)
    return ctx.session.labeler.labeling_seconds - before


def _svc_active_learn_blocking(ctx: WorkflowContext) -> float:
    return _active_learn(ctx, "blocking")


def _svc_active_learn_matching(ctx: WorkflowContext) -> float:
    return _active_learn(ctx, "matching")


def _svc_extract_blocking_rules(ctx: WorkflowContext) -> float:
    stage = ctx.get("blocking_stage")
    features = ctx.get("blocking_features")
    ctx.put("candidate_rules", extract_rules_from_forest(stage.forest, features))
    return 0.0


def _svc_evaluate_blocking_rules(ctx: WorkflowContext) -> float:
    stage = ctx.get("blocking_stage")
    features = ctx.get("blocking_features")
    X = ctx.get("sample_X")[stage.labeled_indices]
    X = np.where(np.isnan(X), 0.0, X)
    y = np.array(stage.labels)
    evaluations = evaluate_rules(
        ctx.get("candidate_rules"), X, y, features.names()
    )
    rules = select_precise_rules(
        evaluations,
        min_precision=ctx.config.min_rule_precision,
        min_coverage=ctx.config.min_rule_coverage,
        max_rules=ctx.config.max_rules,
    )
    ctx.put("rule_evaluations", evaluations)
    ctx.put("rules", rules)
    # The lay user reviews each retained rule (~15s per rule).
    return 15.0 * len(rules)


def _svc_execute_blocking_rules(ctx: WorkflowContext) -> float:
    rules = ctx.get("rules")
    dataset = ctx.dataset
    catalog = get_catalog()
    if rules:
        pairs = sorted(
            execute_rules(rules, dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key)
        )
        candset = make_candset(
            pairs, dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key,
            catalog=catalog,
        )
        ctx.put("used_fallback", False)
    else:
        attr = ctx.config.fallback_overlap_attr or next(
            name for name in dataset.ltable.columns if name != dataset.l_key
        )
        candset = OverlapBlocker(attr, overlap_size=1).block_tables(
            dataset.ltable, dataset.rtable, dataset.l_key, dataset.r_key, catalog=catalog
        )
        ctx.put("used_fallback", True)
    ctx.put("candset", candset)
    return 0.0


def _svc_extract_candidate_vectors(ctx: WorkflowContext) -> float:
    features = ctx.get("matching_features")
    candset = ctx.get("candset")
    fv = extract_feature_vecs(candset, features)
    ctx.put("candidate_fv", fv)
    ctx.put("candidate_X", feature_matrix(fv, features.names(), impute=False))
    meta = get_catalog().get_candset_metadata(candset)
    ctx.put(
        "candidate_pairs",
        list(zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable))),
    )
    return 0.0


def _svc_train_classifier(ctx: WorkflowContext) -> float:
    """(Re)train the matching forest on everything labeled so far."""
    stage = ctx.get("matching_stage")
    ctx.put("matcher", stage.forest)
    return 0.0


def _svc_apply_classifier(ctx: WorkflowContext) -> float:
    forest = ctx.get("matcher")
    X = np.where(np.isnan(ctx.get("candidate_X")), 0.0, ctx.get("candidate_X"))
    predictions = forest.predict_with_alpha(X, alpha=ctx.config.alpha)
    ctx.put("predictions", [int(p) for p in predictions])
    candset = ctx.get("candset")
    match_rows = [i for i, p in enumerate(predictions) if p == 1]
    matches = candset.take(match_rows)
    catalog = get_catalog()
    meta = catalog.get_candset_metadata(candset)
    catalog.set_candset_metadata(
        matches, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
    )
    ctx.put("matches", matches)
    return 0.0


def _svc_compute_accuracy(ctx: WorkflowContext) -> float:
    """Accuracy against the dataset's gold pairs (benchmark-only service)."""
    matches: Table = ctx.get("matches")
    l_col = next(c for c in matches.columns if c.startswith("ltable_"))
    r_col = next(c for c in matches.columns if c.startswith("rtable_"))
    predicted = set(zip(matches.column(l_col), matches.column(r_col)))
    gold = ctx.dataset.gold_pairs
    tp = len(predicted & gold)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(gold) if gold else 1.0
    ctx.put("accuracy", {"precision": precision, "recall": recall, "tp": tp})
    return 0.0


def _svc_crowdsource_labels(ctx: WorkflowContext) -> float:
    """Marker service: labeling is already routed through ctx.session,
    whose labeler may be a CrowdLabeler; this service reports its cost."""
    labeler = ctx.session.labeler
    ctx.put(
        "crowd_cost",
        {
            "questions": labeler.questions_asked,
            "dollars": getattr(labeler, "dollar_cost", 0.0),
        },
    )
    return 0.0


def _svc_export_results(ctx: WorkflowContext) -> float:
    matches = ctx.get("matches")
    ctx.put("export", matches.to_rows())
    return 0.0


def _svc_undo_labels(ctx: WorkflowContext) -> float:
    """Undo the last N labels (slot 'undo_count') — the AmFam lesson."""
    count = ctx.get("undo_count")
    ctx.put("undone", ctx.session.undo(count))
    return 5.0 * count


def _svc_generate_report(ctx: WorkflowContext) -> float:
    """Render a markdown report of the run so far (profiling/browsing)."""
    from repro.reporting import em_run_report

    accuracy = ctx.artifacts.get("accuracy")
    report_accuracy = None
    if accuracy is not None:
        precision, recall = accuracy["precision"], accuracy["recall"]
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        report_accuracy = {
            "precision": precision, "recall": recall, "f1": f1,
            "false_positives": [], "false_negatives": [],
        }
    ctx.put(
        "report",
        em_run_report(
            ctx.task_name,
            ctx.dataset.ltable,
            ctx.dataset.rtable,
            candset=ctx.artifacts.get("candset"),
            accuracy=report_accuracy,
            notes=[f"questions asked: {ctx.session.questions_asked}"],
        ),
    )
    return 0.0


def _svc_monitor_workflow(ctx: WorkflowContext) -> float:
    ctx.put(
        "status",
        {
            "questions_asked": ctx.session.questions_asked,
            "remaining_budget": ctx.session.remaining_budget,
            "artifacts": sorted(ctx.artifacts),
        },
    )
    return 0.0


# ----------------------------------------------------------------------
# Composite services
# ----------------------------------------------------------------------
def _svc_get_blocking_rules(ctx: WorkflowContext) -> float:
    """Composite: everything up to (and including) rule selection."""
    human = 0.0
    for name in (
        "upload_tables",
        "profile_dataset",
        "edit_metadata",
        "sample_pairs",
        "generate_blocking_features",
        "extract_sample_vectors",
        "active_learn_blocking",
        "extract_blocking_rules",
        "evaluate_blocking_rules",
    ):
        human += DEFAULT_REGISTRY.get(name).run(ctx)
    return human


def _svc_falcon(ctx: WorkflowContext) -> float:
    """Composite: the full Falcon workflow, as one service."""
    human = _svc_get_blocking_rules(ctx)
    for name in (
        "execute_blocking_rules",
        "generate_matching_features",
        "extract_candidate_vectors",
        "active_learn_matching",
        "train_classifier",
        "apply_classifier",
        "export_results",
    ):
        human += DEFAULT_REGISTRY.get(name).run(ctx)
    return human


def build_default_registry() -> ServiceRegistry:
    """The stock CloudMatcher registry: 18 basic + 2 composite services."""
    registry = ServiceRegistry()
    U, C, B = ServiceKind.USER_INTERACTION, ServiceKind.CROWD, ServiceKind.BATCH
    basic = [
        ("upload_tables", U, "Upload tables A and B", _svc_upload_tables),
        ("profile_dataset", B, "Profile schemas and sizes", _svc_profile_dataset),
        ("edit_metadata", U, "Review/edit key metadata", _svc_edit_metadata),
        ("down_sample", B, "Intelligently down-sample large tables", _svc_down_sample),
        ("sample_pairs", B, "Sample tuple pairs from A x B", _svc_sample_pairs),
        ("generate_blocking_features", B, "Auto-generate blocking features", _svc_generate_blocking_features),
        ("generate_matching_features", B, "Auto-generate matching features", _svc_generate_matching_features),
        ("extract_sample_vectors", B, "Feature vectors for the sample", _svc_extract_sample_vectors),
        ("extract_candidate_vectors", B, "Feature vectors for the candidate set", _svc_extract_candidate_vectors),
        ("label_pairs", U, "Label a given list of pairs", _svc_label_pairs),
        ("crowdsource_labels", C, "Route labeling to crowd workers", _svc_crowdsource_labels),
        ("active_learn_blocking", U, "Active learning for blocking (forest F)", _svc_active_learn_blocking),
        ("active_learn_matching", U, "Active learning for matching (forest G)", _svc_active_learn_matching),
        ("extract_blocking_rules", B, "Extract candidate rules from forest F", _svc_extract_blocking_rules),
        ("evaluate_blocking_rules", U, "Review/retain precise rules", _svc_evaluate_blocking_rules),
        ("execute_blocking_rules", B, "Execute rules as similarity joins", _svc_execute_blocking_rules),
        ("train_classifier", B, "Train the matcher on labeled pairs", _svc_train_classifier),
        ("apply_classifier", B, "Apply the matcher to the candidate set", _svc_apply_classifier),
    ]
    for name, kind, description, fn in basic:
        registry.register(Service(name, kind, description, fn))
    registry.register(
        Service(
            "get_blocking_rules",
            ServiceKind.USER_INTERACTION,
            "Composite: learn + review blocking rules",
            _svc_get_blocking_rules,
            composite=True,
        )
    )
    registry.register(
        Service(
            "falcon",
            ServiceKind.USER_INTERACTION,
            "Composite: the end-to-end Falcon workflow",
            _svc_falcon,
            composite=True,
        )
    )
    # Extra utilities that are part of the envisioned ecosystem but not
    # counted among the paper's 18 basic services.
    registry.register(Service("compute_accuracy", B, "Score matches against gold", _svc_compute_accuracy, core=False))
    registry.register(Service("export_results", B, "Export the match table", _svc_export_results, core=False))
    registry.register(Service("undo_labels", U, "Undo the last N labels", _svc_undo_labels, core=False))
    registry.register(Service("monitor_workflow", B, "Report workflow status", _svc_monitor_workflow, core=False))
    registry.register(Service("generate_report", B, "Render a markdown run report", _svc_generate_report, core=False))
    return registry


DEFAULT_REGISTRY = build_default_registry()
