"""Cost accounting for CloudMatcher tasks (the Cost columns of Table 2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Prices used to convert simulated resource usage into dollars.

    ``aws_dollars_per_hour`` approximates the paper's 4-node EMR cluster;
    tasks run on a local machine cost $0 compute, matching the "-" cells.
    """

    aws_dollars_per_hour: float = 1.6
    crowd_dollars_per_assignment: float = 0.02

    def compute_cost(self, machine_seconds: float, on_cloud: bool) -> float:
        """Dollar cost of machine time ('-' i.e. 0.0 when run locally)."""
        if not on_cloud:
            return 0.0
        return machine_seconds / 3600.0 * self.aws_dollars_per_hour

    def crowd_cost(self, assignments: int) -> float:
        """Dollar cost of crowd assignments."""
        return assignments * self.crowd_dollars_per_assignment


@dataclass
class TaskCostReport:
    """One row of Table 2's Cost/Time block."""

    questions: int
    crowd_dollars: float | None  # None renders as '-' (single user)
    compute_dollars: float | None  # None renders as '-' (local machine)
    labeling_seconds: float
    machine_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.labeling_seconds + self.machine_seconds

    @staticmethod
    def _money(value: float | None) -> str:
        return "-" if value is None else f"${value:.2f}"

    @staticmethod
    def _duration(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.0f}m"
        return f"{seconds:.0f}s"

    def as_row(self) -> dict[str, str]:
        """Render like the paper's table cells."""
        return {
            "Questions": str(self.questions),
            "Crowd": self._money(self.crowd_dollars),
            "Compute": self._money(self.compute_dollars),
            "User/Crowd": self._duration(self.labeling_seconds),
            "Machine": self._duration(self.machine_seconds),
            "Total": self._duration(self.total_seconds),
        }
