"""The CloudMatcher facade, in its three historical versions.

* :class:`CloudMatcher01` — Falcon wrapped as a service, one EM workflow
  at a time ("it can execute only one EM workflow at a time");
* :class:`CloudMatcher10` — the metamanager executes multiple concurrent
  workflows by interleaving their DAG fragments across engines;
* :class:`CloudMatcher20` — additionally exposes the basic services so
  users compose custom workflows (skip rule learning, label-only, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cloud.context import WorkflowContext
from repro.cloud.cost import CostModel, TaskCostReport
from repro.cloud.dag import EMWorkflow, build_falcon_workflow
from repro.cloud.engines import MetaManager
from repro.cloud.services import DEFAULT_REGISTRY, Service, ServiceRegistry
from repro.datasets.generator import EMDataset
from repro.exceptions import ServiceError
from repro.falcon.falcon import FalconConfig
from repro.labeling.session import LabelingSession


@dataclass
class TaskResult:
    """What a submitted EM task returns to its owner."""

    task_name: str
    context: WorkflowContext
    cost: TaskCostReport
    accuracy: dict[str, float] | None = None
    extras: dict[str, Any] = field(default_factory=dict)


def _cost_report(
    context: WorkflowContext, on_cloud: bool, cost_model: CostModel, machine_seconds: float
) -> TaskCostReport:
    labeler = context.session.labeler
    crowd_dollars = getattr(labeler, "dollar_cost", None)
    return TaskCostReport(
        questions=context.session.questions_asked,
        crowd_dollars=crowd_dollars,
        compute_dollars=(
            cost_model.compute_cost(machine_seconds, on_cloud) if on_cloud else None
        ),
        labeling_seconds=labeler.labeling_seconds,
        machine_seconds=machine_seconds,
    )


class CloudMatcher01:
    """Version 0.1: serial, Falcon-only self-service EM."""

    def __init__(
        self,
        registry: ServiceRegistry | None = None,
        cost_model: CostModel | None = None,
        on_cloud: bool = False,
    ):
        self.registry = registry or DEFAULT_REGISTRY
        self.cost_model = cost_model or CostModel()
        self.on_cloud = on_cloud

    def match(
        self,
        dataset: EMDataset,
        session: LabelingSession,
        config: FalconConfig | None = None,
        score_against_gold: bool = True,
    ) -> TaskResult:
        """Run the end-to-end Falcon service for one task."""
        import time as _time

        context = WorkflowContext(
            dataset=dataset,
            session=session,
            config=config or FalconConfig(),
            task_name=dataset.name,
        )
        started = _time.perf_counter()
        self.registry.get("falcon").run(context)
        machine_seconds = _time.perf_counter() - started
        accuracy = None
        if score_against_gold and dataset.gold_pairs:
            self.registry.get("compute_accuracy").run(context)
            accuracy = context.get("accuracy")
        return TaskResult(
            task_name=dataset.name,
            context=context,
            cost=_cost_report(context, self.on_cloud, self.cost_model, machine_seconds),
            accuracy=accuracy,
        )


class CloudMatcher10:
    """Version 1.0: concurrent workflows via the metamanager."""

    def __init__(
        self,
        registry: ServiceRegistry | None = None,
        cost_model: CostModel | None = None,
        on_cloud: bool = True,
        interleave: bool = True,
    ):
        self.registry = registry or DEFAULT_REGISTRY
        self.cost_model = cost_model or CostModel()
        self.on_cloud = on_cloud
        self.metamanager = MetaManager(interleave=interleave)
        self._submissions: list[tuple[EMWorkflow, WorkflowContext]] = []

    def submit(
        self,
        dataset: EMDataset,
        session: LabelingSession,
        config: FalconConfig | None = None,
        use_crowd: bool = False,
    ) -> WorkflowContext:
        """Queue one EM task (a Falcon workflow over the dataset)."""
        context = WorkflowContext(
            dataset=dataset,
            session=session,
            config=config or FalconConfig(),
            task_name=dataset.name,
        )
        workflow = build_falcon_workflow(dataset.name, self.registry, use_crowd=use_crowd)
        self.metamanager.submit(workflow, context)
        self._submissions.append((workflow, context))
        return context

    def run(self, score_against_gold: bool = True) -> tuple[float, list[TaskResult]]:
        """Execute all queued tasks; returns (simulated makespan, results)."""
        makespan = self.metamanager.run_all()
        results = []
        for run, (workflow, context) in zip(self.metamanager.runs, self._submissions):
            machine = sum(
                record.machine_seconds
                for engine in self.metamanager.all_engines()
                for record in engine.executions
                if record.fragment.workflow is workflow
            )
            accuracy = None
            if score_against_gold and context.dataset.gold_pairs:
                self.registry.get("compute_accuracy").run(context)
                accuracy = context.get("accuracy")
            results.append(
                TaskResult(
                    task_name=context.task_name,
                    context=context,
                    cost=_cost_report(context, self.on_cloud, self.cost_model, machine),
                    accuracy=accuracy,
                    extras={"finish_time": run.finish_time},
                )
            )
        return makespan, results


class CloudMatcher20(CloudMatcher10):
    """Version 2.0: everything in 1.0, plus user-composed workflows."""

    def invoke_service(self, name: str, context: WorkflowContext) -> float:
        """Directly invoke one basic service (the 2.0 flexibility story)."""
        service = self.registry.get(name)
        return service.run(context)

    def submit_custom(self, workflow: EMWorkflow, context: WorkflowContext) -> None:
        """Queue a user-assembled workflow DAG."""
        for call in workflow.topological_calls():
            if call.service.name not in self.registry:
                raise ServiceError(
                    f"workflow {workflow.name!r} uses unregistered service "
                    f"{call.service.name!r}"
                )
        self.metamanager.submit(workflow, context)
        self._submissions.append((workflow, context))

    def available_services(self) -> list[Service]:
        """Table 4: the services a user can compose."""
        return self.registry.services()
