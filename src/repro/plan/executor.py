"""Executing a :class:`repro.plan.Plan` and recording what it observed.

:class:`PlanExecutor` is the :class:`repro.runtime.ParallelExecutor`
with the planner in the loop: the per-node fork decision comes from the
plan instead of the blanket fork-everything-fork-safe policy, and nodes
the planner marked memo/checkpoint-warm are served *before* wave
scheduling starts, so a warm prefix never pays per-wave partitioning.

:func:`run_planned` is the one-call entry point used by the front-ends'
``optimize=True`` paths: plan, execute, then fold the run's observed
node costs back into the stats store (and persist it) so the *next* run
plans from fresher evidence.  When the plan is a no-op (no stats yet)
execution falls back to the default serial executor — byte-identical to
an unplanned ``run_graph``.
"""

from __future__ import annotations

from typing import Callable

from repro.obs import get_registry
from repro.runtime import (
    EventStream,
    GraphCheckpoint,
    NodeMemo,
    OperatorGraph,
    ParallelExecutor,
    RunResult,
    SerialExecutor,
    run_graph,
)
from repro.runtime.executor import _RunState
from repro.runtime.graph import ArtifactStore

from repro.plan.optimizer import MODE_FORK, Plan, plan_graph
from repro.plan.stats import StatsStore, get_stats_store


class PlanExecutor(ParallelExecutor):
    """Drive a run the way the plan decided.

    Differences from the base parallel executor, both pure scheduling
    (results stay byte-identical):

    * ``should_fork`` consults the plan — a fork-safe node measured
      cheaper than the fork threshold runs in-parent;
    * warm-marked nodes are served from memo/checkpoint eagerly at the
      start of the drive, in dependency order, before any wave forms.
    """

    def __init__(self, plan: Plan, n_jobs: int = -1):
        super().__init__(n_jobs)
        self.plan = plan
        self._warm = plan.warm_nodes()

    def should_fork(self, state: _RunState, name: str) -> bool:
        if not super().should_fork(state, name):
            return False
        decision = self.plan.decisions.get(name)
        return decision is None or decision.mode == MODE_FORK

    def _serve_warm(self, state: _RunState) -> None:
        """Serve plan-time-warm nodes before scheduling the first wave.

        A node the planner saw warm can only have gone stale if someone
        mutated the caches between planning and execution; ``try_cache``
        re-validates, so staleness degrades to normal execution instead
        of a wrong result.
        """
        progressed = True
        while progressed and state.pending and not state.halted:
            progressed = False
            for name in state.ready_nodes():
                if name in self._warm and state.try_cache(name):
                    progressed = True

    def drive(self, state: _RunState) -> None:
        self._serve_warm(state)
        super().drive(state)


def execute_plan(
    plan: Plan,
    store: ArtifactStore | None = None,
    *,
    events: EventStream | None = None,
    memo: NodeMemo | None = None,
    checkpoint: GraphCheckpoint | None = None,
    on_error: str = "raise",
    sim_at: float = 0.0,
    before_node: Callable[[str], None] | None = None,
    n_jobs: int = -1,
    stats: StatsStore | None = None,
    record: bool = True,
) -> RunResult:
    """Run a planned graph; optionally record observed costs into ``stats``.

    An optimized plan runs under :class:`PlanExecutor`; a no-op plan runs
    under the default :class:`repro.runtime.SerialExecutor`, making the
    cold path indistinguishable from an unplanned run.
    """
    executor = (
        PlanExecutor(plan, n_jobs=n_jobs) if plan.optimized else SerialExecutor()
    )
    # Per-node kernel hints: swap the process-global override in front of
    # each node so kernel="auto" call sites inside its operator resolve
    # to the planner's choice.  Both backends are byte-identical, so this
    # is pure scheduling — and it composes with (runs before) any caller
    # before_node hook.
    kernel_hints = (
        {name: d.kernel for name, d in plan.decisions.items() if d.kernel}
        if plan.optimized
        else {}
    )
    caller_before_node = before_node
    if kernel_hints:
        from repro.perf.arrays import set_kernel_override

        def before_node(name: str) -> None:  # noqa: F811 - deliberate wrap
            set_kernel_override(kernel_hints.get(name))
            if caller_before_node is not None:
                caller_before_node(name)

    try:
        result = run_graph(
            plan.graph,
            store,
            executor=executor,
            events=events,
            memo=memo,
            checkpoint=checkpoint,
            on_error=on_error,
            sim_at=sim_at,
            before_node=before_node,
        )
    finally:
        if kernel_hints:
            set_kernel_override(None)
    if plan.optimized:
        registry = get_registry()
        for name, decision in plan.decisions.items():
            record_entry = result.records.get(name)
            if (
                decision.est_seconds is None
                or record_entry is None
                or record_entry.cached
            ):
                continue
            registry.histogram(
                "plan_estimated_vs_actual_seconds", graph=plan.graph.name
            ).observe(abs(record_entry.seconds - decision.est_seconds))
    if record and stats is not None:
        stats.record_result(plan.graph, result)
        stats.save()
    return result


def run_planned(
    graph: OperatorGraph,
    store: ArtifactStore | None = None,
    *,
    stats: StatsStore | None = None,
    events: EventStream | None = None,
    memo: NodeMemo | None = None,
    checkpoint: GraphCheckpoint | None = None,
    on_error: str = "raise",
    sim_at: float = 0.0,
    before_node: Callable[[str], None] | None = None,
    n_jobs: int = -1,
    optimize: bool = True,
    record: bool = True,
) -> RunResult:
    """Plan-then-execute ``graph``: the drop-in optimizing ``run_graph``.

    ``stats`` defaults to the process store (persisted alongside the
    index artifacts when a cache directory is configured).  Every run —
    optimized or cold — records its observations, which is exactly how
    the store warms up: the first run executes the caller's order and
    measures it, the second run plans from those measurements.
    """
    if stats is None:
        stats = get_stats_store()
    plan = (
        plan_graph(graph, stats=stats, memo=memo, checkpoint=checkpoint)
        if optimize
        else Plan(source=graph, graph=graph, optimized=False)
    )
    return execute_plan(
        plan,
        store,
        events=events,
        memo=memo,
        checkpoint=checkpoint,
        on_error=on_error,
        sim_at=sim_at,
        before_node=before_node,
        n_jobs=n_jobs,
        stats=stats,
        record=record,
    )
