"""The cost-based plan optimizer over :class:`repro.runtime.OperatorGraph`.

The paper's "efficient by design" principle (Section 4.1) says an EM
system should choose execution strategies from data instead of executing
whatever the user happened to write.  :func:`plan_graph` is that choice
point: given a compiled graph and the :class:`repro.plan.StatsStore` of
prior runs it produces a :class:`Plan` that

* **reorders commuting chains most-selective-first** — maximal linear
  runs of operators sharing a non-empty ``Operator.commutes`` label (the
  candidate-set-filter contract) are permuted so the filter that drops
  the most rows runs first, shrinking every later filter's input;
* **picks a per-node execution mode** — nodes whose observed cost is
  below the fork threshold run in-parent even when fork-safe (the fork
  round-trip would dominate), heavy fork-safe nodes are fanned out;
* **marks memo/checkpoint-warm nodes at plan time** — their fingerprints
  are probed once while planning, so the executor serves them eagerly
  instead of discovering cache hits wave by wave.

With no statistics the planner is a deliberate no-op: the returned plan
carries the *same* graph object, schedules exactly like today's default
executor, and costs only two fingerprint passes — a first run is never
worse than an unplanned one.

Correctness contract: optimized and unoptimized executions of the same
graph produce byte-identical artifact stores.  Reordering relies only on
declared commutativity, mode selection on the existing forked-output
contract, and warm pruning on the existing memo semantics — each of
which is individually output-preserving (property-tested in
``tests/test_plan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import get_registry
from repro.runtime import GraphCheckpoint, NodeMemo, OperatorGraph, node_fingerprints
from repro.runtime.graph import Operator

from repro.plan.stats import NodeStats, StatsStore, identity_fingerprints

# Below this expected wall time, forking a fork-safe node costs more than
# it saves (fork + pickle round-trip is ~10-30ms on this substrate).
FORK_THRESHOLD_SECONDS = 0.05

# Observed mean input rows per run at which a node's kernel="auto" call
# sites are hinted onto the columnar array backend.  Mirrors the static
# KernelPolicy default in repro.perf.arrays but acts on *measured* node
# input sizes rather than per-call corpus sizes; both backends produce
# byte-identical output, so the hint is pure scheduling.
KERNEL_ARRAY_ROWS = 64

MODE_INLINE = "inline"
MODE_FORK = "fork"


@dataclass
class NodePlan:
    """The planner's decision record for one operator."""

    name: str
    mode: str = MODE_INLINE
    est_seconds: float | None = None
    est_selectivity: float | None = None
    warm: bool = False
    moved_from: int | None = None  # original topo position, when reordered
    kernel: str | None = None  # "dict"/"array" hint for kernel="auto" call sites


@dataclass
class Plan:
    """A scheduled graph plus the decisions that shaped it."""

    source: OperatorGraph
    graph: OperatorGraph
    optimized: bool
    decisions: dict[str, NodePlan] = field(default_factory=dict)
    reorders: int = 0  # commuting segments whose order changed
    moved_nodes: int = 0

    def warm_nodes(self) -> set[str]:
        return {name for name, d in self.decisions.items() if d.warm}

    def estimated_seconds(self) -> float:
        """Estimated wall seconds of the non-warm part of the plan."""
        return sum(
            d.est_seconds
            for d in self.decisions.values()
            if d.est_seconds is not None and not d.warm
        )

    def explain(self) -> str:
        """Human-readable plan: one line per node in scheduled order."""
        lines = [
            f"plan for graph {self.graph.name!r}: "
            + (
                f"optimized ({self.reorders} reorder(s), {self.moved_nodes} node(s) moved, "
                f"{len(self.warm_nodes())} warm)"
                if self.optimized
                else "no statistics yet - safe default schedule"
            ),
            f"{'#':>3} {'node':<28} {'est s':>9} {'select':>7} {'mode':<7} "
            f"{'kernel':<7} warm",
        ]
        for position, name in enumerate(self.graph.topological_order()):
            d = self.decisions.get(name, NodePlan(name))
            est = f"{d.est_seconds:.4f}" if d.est_seconds is not None else "-"
            sel = f"{d.est_selectivity:.3f}" if d.est_selectivity is not None else "-"
            moved = (
                f"  (was #{d.moved_from})"
                if d.moved_from is not None and d.moved_from != position
                else ""
            )
            lines.append(
                f"{position:>3} {name:<28} {est:>9} {sel:>7} {d.mode:<7} "
                f"{d.kernel or '-':<7} {'yes' if d.warm else 'no'}{moved}"
            )
        total = self.estimated_seconds()
        if self.optimized and total:
            lines.append(f"estimated non-warm wall seconds: {total:.4f}")
        return "\n".join(lines)


def _node_stats(
    graph: OperatorGraph, stats: StatsStore | None
) -> dict[str, NodeStats]:
    if stats is None:
        return {}
    identities = identity_fingerprints(graph)
    found = {}
    for name, fp in identities.items():
        entry = stats.get(fp)
        if entry is not None and (entry.runs or entry.cache_hits):
            found[name] = entry
    return found


def _commuting_segments(graph: OperatorGraph) -> list[list[str]]:
    """Maximal linear chains sharing one non-empty ``commutes`` label.

    A segment extends from ``s_i`` to ``s_{i+1}`` only when ``s_{i+1}``
    is ``s_i``'s *sole* successor and ``s_i`` its sole dependency — the
    shape under which swapping neighbours cannot change what any node
    outside the segment observes.
    """
    segments: list[list[str]] = []
    in_segment: set[str] = set()
    for name in graph.topological_order():
        operator = graph.nodes[name]
        if not operator.commutes or name in in_segment:
            continue
        segment = [name]
        while True:
            tail = graph.nodes[segment[-1]]
            successors = graph.successors(segment[-1])
            if len(successors) != 1:
                break
            nxt = graph.nodes[successors[0]]
            if (
                nxt.commutes != tail.commutes
                or nxt.deps != (tail.name,)
            ):
                break
            segment.append(nxt.name)
        if len(segment) > 1:
            segments.append(segment)
            in_segment.update(segment)
    return segments


def _reorder(
    graph: OperatorGraph, per_node: dict[str, NodeStats]
) -> tuple[OperatorGraph, int, int, dict[str, str]]:
    """Rewrite commuting segments most-selective-first.

    Returns the (possibly new) graph, the number of segments changed, the
    number of nodes that moved, and the dependency renames applied (old
    segment tail -> new segment tail) for callers that track edges.

    A segment is only reordered when *every* member has an observed
    selectivity — mixing measured and unmeasured filters would order on
    guesses, and keeping the user's order is the safe default.
    """
    reordered: dict[str, list[str]] = {}  # original head -> permuted order
    slot_swap: dict[str, str] = {}  # original slot name -> occupant name
    dep_rename: dict[str, str] = {}  # old tail -> new tail
    new_head_deps: dict[str, tuple[str, ...]] = {}
    changed_segments = 0
    moved = 0

    for segment in _commuting_segments(graph):
        selectivities = {}
        for name in segment:
            stats = per_node.get(name)
            selectivity = stats.selectivity() if stats is not None else None
            if selectivity is None:
                break
            selectivities[name] = selectivity
        else:
            order = sorted(segment, key=lambda n: (selectivities[n],))
            if order == segment:
                continue
            changed_segments += 1
            moved += sum(1 for a, b in zip(segment, order) if a != b)
            reordered[segment[0]] = order
            for slot, occupant in zip(segment, order):
                slot_swap[slot] = occupant
            dep_rename[segment[-1]] = order[-1]
            new_head_deps[order[0]] = graph.nodes[segment[0]].deps

    if not reordered:
        return graph, 0, 0, {}

    # Rebuild in the original insertion order, with each segment slot
    # holding its permuted occupant and dangling edges renamed.  Chain
    # interiors get exactly one dependency (their new predecessor);
    # every other node keeps its deps modulo tail renames.
    chain_pred: dict[str, str] = {}
    for order in reordered.values():
        for previous, current in zip(order, order[1:]):
            chain_pred[current] = previous

    rebuilt = OperatorGraph(graph.name)
    for slot_name in graph.nodes:
        occupant = graph.nodes[slot_swap.get(slot_name, slot_name)]
        if occupant.name in new_head_deps:
            deps = tuple(
                dep_rename.get(d, d) for d in new_head_deps[occupant.name]
            )
        elif occupant.name in chain_pred:
            deps = (chain_pred[occupant.name],)
        else:
            deps = tuple(dep_rename.get(d, d) for d in occupant.deps)
        rebuilt.add(
            occupant.name,
            occupant.fn,
            deps=deps,
            outputs=occupant.outputs,
            description=occupant.description,
            retries=occupant.retries,
            checkpoint=occupant.checkpoint,
            isolated=occupant.isolated,
            key=occupant.key,
            commutes=occupant.commutes,
        )
    return rebuilt, changed_segments, moved, dep_rename


def _can_fork(operator: Operator) -> bool:
    return operator.isolated and bool(operator.outputs)


def plan_graph(
    graph: OperatorGraph,
    stats: StatsStore | None = None,
    memo: NodeMemo | None = None,
    checkpoint: GraphCheckpoint | None = None,
    fork_threshold: float = FORK_THRESHOLD_SECONDS,
) -> Plan:
    """Produce an execution :class:`Plan` for ``graph`` from observed stats.

    ``memo``/``checkpoint`` are the same caches the execution will use;
    passing them lets the planner mark warm nodes up front.  With no
    recorded statistics the plan is an explicit no-op (same graph object,
    default schedule) so first runs behave exactly like today.
    """
    registry = get_registry()
    per_node = _node_stats(graph, stats)
    if not per_node:
        registry.counter("plan_runs_total", graph=graph.name, optimized="false").inc()
        decisions = {
            name: NodePlan(name, mode=MODE_FORK if _can_fork(op) else MODE_INLINE)
            for name, op in graph.nodes.items()
        }
        return Plan(source=graph, graph=graph, optimized=False, decisions=decisions)

    original_position = {
        name: i for i, name in enumerate(graph.topological_order())
    }
    planned, reorders, moved, _ = _reorder(graph, per_node)
    if reorders:
        registry.counter("plan_reorders_total", graph=graph.name).inc(reorders)

    fingerprints = node_fingerprints(planned)
    decisions: dict[str, NodePlan] = {}
    pruned = 0
    for name, operator in planned.nodes.items():
        stats_entry = per_node.get(name)
        est_seconds = (
            stats_entry.mean_seconds() if stats_entry and stats_entry.runs else None
        )
        est_selectivity = stats_entry.selectivity() if stats_entry else None
        kernel = None
        if stats_entry is not None and stats_entry.runs and stats_entry.rows_in > 0:
            mean_rows = stats_entry.rows_in / stats_entry.runs
            kernel = "array" if mean_rows >= KERNEL_ARRAY_ROWS else "dict"
        if _can_fork(operator):
            # Fork-safe nodes fork by default (today's behaviour); only a
            # measured-cheap node is pulled back in-parent.
            mode = (
                MODE_INLINE
                if est_seconds is not None and est_seconds < fork_threshold
                else MODE_FORK
            )
        else:
            mode = MODE_INLINE
        warm = False
        fp = fingerprints[name]
        if operator.outputs:
            if memo is not None and fp in memo:
                warm = True
            elif (
                checkpoint is not None
                and checkpoint.can_checkpoint(operator)
                and checkpoint.has(name, fp)
            ):
                warm = True
        if warm:
            pruned += 1
        decisions[name] = NodePlan(
            name,
            mode=mode,
            est_seconds=est_seconds,
            est_selectivity=est_selectivity,
            warm=warm,
            moved_from=original_position[name],
            kernel=kernel,
        )
    registry.counter("plan_runs_total", graph=graph.name, optimized="true").inc()
    if pruned:
        registry.counter("plan_nodes_pruned_total", graph=graph.name).inc(pruned)
    return Plan(
        source=graph,
        graph=planned,
        optimized=True,
        decisions=decisions,
        reorders=reorders,
        moved_nodes=moved,
    )
