"""Plannable pipeline builders shared by the CLI, benchmarks, and tests.

A planner needs graphs whose structure it can exploit; this module
compiles the guide's canonical blocking pattern — one index-backed base
blocker followed by a chain of refining filters — into an
:class:`repro.runtime.OperatorGraph` whose filter chain carries the
candidate-set-filter commutativity group.  The optimizer can then put
whichever filter history shows most selective at the front of the chain.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocking.base import Blocker
from repro.runtime import OperatorGraph
from repro.table.table import Table


def multi_blocker_graph(
    name: str,
    ltable: Table,
    rtable: Table,
    base_blocker: Blocker,
    filters: Sequence[tuple[str, Blocker]],
    l_key: str = "id",
    r_key: str = "id",
    key_salt: str = "",
) -> OperatorGraph:
    """Compile ``base blocker -> filter chain`` into a runtime graph.

    ``filters`` are ``(node name, blocker)`` pairs applied in the given
    order via :meth:`Blocker.block_candset`; commutative blockers join
    the reorderable filter chain, a non-commutative one still chains but
    pins its position.  ``key_salt`` feeds every node's fingerprint key,
    so different datasets never share memo entries or statistics.
    """
    graph = OperatorGraph(name)

    def run_base(store) -> None:
        store["candset"] = base_blocker.block_tables(
            store["ltable"], store["rtable"], l_key, r_key
        )

    graph.add(
        "load",
        lambda store, lt=ltable, rt=rtable: {"ltable": lt, "rtable": rt},
        outputs=("ltable", "rtable"),
        description="stage the input tables",
        checkpoint=False,
        key=key_salt,
    )
    graph.add(
        "block_base",
        run_base,
        deps=("load",),
        outputs=("candset",),
        description=f"base blocking with {type(base_blocker).__name__}",
        checkpoint=False,
        key=key_salt,
    )
    previous = "block_base"
    for filter_name, blocker in filters:
        operator = blocker.as_filter_operator(name=filter_name, deps=(previous,))
        graph.add(
            operator.name,
            operator.fn,
            deps=operator.deps,
            outputs=operator.outputs,
            description=operator.description,
            checkpoint=False,
            key=key_salt,
            commutes=operator.commutes,
        )
        previous = filter_name
    return graph
