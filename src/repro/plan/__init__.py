"""repro.plan — cost-based plan optimization for the operator DAG.

The runtime (PR 3) executes whatever graph a workflow compiled; the obs
layer (PR 4) measures every node; the index layer (PR 5) persists
artifacts across runs.  This package closes the loop — the paper's
"efficient by design" principle (Section 4.1) as an optimizer pass:

* :mod:`~repro.plan.stats` — per-node runtime statistics (wall seconds,
  input/output rows, cache hits) folded out of the RunEvent stream and
  persisted alongside the IndexStore artifacts, keyed by reorder-stable
  identity fingerprints;
* :mod:`~repro.plan.optimizer` — :func:`plan_graph` reorders commuting
  blocker chains most-selective-first, picks per-node inline-vs-fork
  execution, and marks memo-warm nodes at plan time;
* :mod:`~repro.plan.executor` — :class:`PlanExecutor` drives the planned
  schedule; :func:`run_planned` is the drop-in optimizing ``run_graph``
  used by the front-ends' ``optimize=True`` paths;
* :mod:`~repro.plan.pipelines` — plannable graph builders (the
  multi-blocker pipeline behind ``repro plan explain`` and the planner
  benchmark).

Correctness contract: optimized and unoptimized runs of the same graph
produce byte-identical artifact stores, and with no recorded statistics
the planner is an explicit no-op.  See ``docs/PERFORMANCE.md``.
"""

from repro.plan.executor import PlanExecutor, execute_plan, run_planned
from repro.plan.optimizer import (
    FORK_THRESHOLD_SECONDS,
    MODE_FORK,
    MODE_INLINE,
    NodePlan,
    Plan,
    plan_graph,
)
from repro.plan.pipelines import multi_blocker_graph
from repro.plan.stats import (
    STATS_FILE_NAME,
    NodeStats,
    StatsStore,
    default_stats_path,
    get_stats_store,
    identity_fingerprint,
    identity_fingerprints,
    set_stats_store,
    use_stats_store,
)

__all__ = [
    "FORK_THRESHOLD_SECONDS",
    "MODE_FORK",
    "MODE_INLINE",
    "NodePlan",
    "NodeStats",
    "Plan",
    "PlanExecutor",
    "STATS_FILE_NAME",
    "StatsStore",
    "default_stats_path",
    "execute_plan",
    "get_stats_store",
    "identity_fingerprint",
    "identity_fingerprints",
    "multi_blocker_graph",
    "plan_graph",
    "run_planned",
    "set_stats_store",
    "use_stats_store",
]
