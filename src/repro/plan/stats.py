"""Fingerprint-keyed runtime statistics persisted across runs.

The optimizer's cost model is *observed*, not guessed: every graph run
streams :class:`repro.runtime.RunEvent` records carrying wall seconds,
input/output row counts, and cache hits per node, and this module folds
them into a :class:`StatsStore` keyed by each node's **identity
fingerprint** — a hash of ``(graph name, node name, key salt)`` that,
unlike the structural memo fingerprint, does not include dependency
fingerprints.  That distinction is deliberate: reordering a commuting
chain changes every member's *memo* fingerprint (its deps changed), but
the node is still the same work over the same inputs for costing
purposes, so its history must survive the reorder.

The store persists as one JSON file, by default alongside the
:class:`repro.index.IndexStore` disk artifacts (``<cache_dir>/
plan-stats.json``, or the ``REPRO_PLAN_STATS`` environment variable),
written atomically like every other artifact in the repo.  No cache
directory configured means stats live for the process only — the planner
then warms up within a session but starts cold next time.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.runtime import (
    CACHE_HIT,
    NODE_FINISH,
    OperatorGraph,
    RunResult,
    atomic_write_text,
    fingerprint,
)

STATS_FILE_NAME = "plan-stats.json"
_STATS_VERSION = 1


def identity_fingerprint(graph_name: str, node_name: str, key: str = "") -> str:
    """Position-independent node identity: stable under chain reorders."""
    return fingerprint("plan-identity", graph_name, node_name, key)


def identity_fingerprints(graph: OperatorGraph) -> dict[str, str]:
    """Identity fingerprint of every node in ``graph``."""
    return {
        name: identity_fingerprint(graph.name, name, op.key)
        for name, op in graph.nodes.items()
    }


@dataclass
class NodeStats:
    """Accumulated observations of one node identity across runs."""

    graph: str = ""
    node: str = ""
    runs: int = 0
    wall_seconds: float = 0.0
    rows_in: int = 0
    rows_out: int = 0
    cache_hits: int = 0

    # -- derived estimates ---------------------------------------------
    def mean_seconds(self) -> float:
        """Mean wall seconds per real (non-cached) execution."""
        return self.wall_seconds / self.runs if self.runs else 0.0

    def selectivity(self) -> float | None:
        """Observed output/input row ratio; ``None`` without row evidence.

        A filter that keeps 10% of its input has selectivity 0.1 — lower
        means more selective, and the optimizer orders commuting chains
        ascending by this value.
        """
        if self.rows_in <= 0:
            return None
        return self.rows_out / self.rows_in

    def rows_per_second(self) -> float | None:
        if self.wall_seconds <= 0 or self.rows_in <= 0:
            return None
        return self.rows_in / self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph,
            "node": self.node,
            "runs": self.runs,
            "wall_seconds": self.wall_seconds,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "cache_hits": self.cache_hits,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "NodeStats":
        return cls(
            graph=str(payload.get("graph", "")),
            node=str(payload.get("node", "")),
            runs=int(payload.get("runs", 0)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            rows_in=int(payload.get("rows_in", 0)),
            rows_out=int(payload.get("rows_out", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
        )


@dataclass
class StatsStore:
    """Per-node runtime statistics with optional disk persistence.

    ``path`` is the JSON file the store loads from on creation and writes
    back (atomically) on :meth:`save`; ``None`` keeps everything
    in-memory.  A corrupt or truncated file is treated as empty and
    overwritten on the next save, never trusted — the same contract as
    the index disk tier.
    """

    path: Path | None = None
    _nodes: dict[str, NodeStats] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = Path(self.path)
            self._load()

    # -- persistence ---------------------------------------------------
    def _load(self) -> None:
        if self.path is None or not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            nodes = payload["nodes"]
            self._nodes = {
                fp: NodeStats.from_dict(entry) for fp, entry in nodes.items()
            }
        except (ValueError, KeyError, TypeError, OSError):
            self._nodes = {}

    def save(self) -> Path | None:
        """Persist to ``path`` (no-op for in-memory stores)."""
        if self.path is None:
            return None
        with self._lock:
            payload = {
                "version": _STATS_VERSION,
                "nodes": {fp: stats.to_dict() for fp, stats in self._nodes.items()},
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, json.dumps(payload, indent=2, sort_keys=True))
        return self.path

    def clear(self, disk: bool = False) -> None:
        """Forget all statistics (and delete the file with ``disk=True``)."""
        with self._lock:
            self._nodes = {}
        if disk and self.path is not None and self.path.exists():
            try:
                self.path.unlink()
            except OSError:
                pass

    # -- accounting ----------------------------------------------------
    def get(self, fp: str) -> NodeStats | None:
        return self._nodes.get(fp)

    def record_result(self, graph: OperatorGraph, result: RunResult) -> int:
        """Fold one run's node events into the store; returns nodes touched.

        Only this graph's events are read off the (possibly shared)
        stream, and only per-node finish/cache-hit records contribute —
        failures carry no cost evidence worth generalizing.
        """
        identities = identity_fingerprints(graph)
        touched = 0
        with self._lock:
            for event in result.events.of(NODE_FINISH, CACHE_HIT):
                if event.graph != graph.name or event.node not in identities:
                    continue
                fp = identities[event.node]
                stats = self._nodes.get(fp)
                if stats is None:
                    stats = self._nodes[fp] = NodeStats(graph=graph.name, node=event.node)
                if event.event == CACHE_HIT:
                    stats.cache_hits += 1
                else:
                    stats.runs += 1
                    stats.wall_seconds += event.wall_seconds
                    stats.rows_in += event.rows_in
                    stats.rows_out += event.rows_out
                touched += 1
        return touched

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, fp: str) -> bool:
        return fp in self._nodes

    def items(self) -> list[tuple[str, NodeStats]]:
        with self._lock:
            return list(self._nodes.items())


# ----------------------------------------------------------------------
# Process-default store, mirroring repro.index.get_index_store: resolved
# lazily, persisted next to the index artifacts when those persist.

_default_store: StatsStore | None = None
_default_lock = threading.Lock()


def default_stats_path() -> Path | None:
    """Where the process-default store persists, or ``None`` (memory only).

    Resolution order: ``REPRO_PLAN_STATS`` (explicit file path), then the
    process index store's ``cache_dir`` (stats ride alongside the index
    artifacts they describe runs over).
    """
    explicit = os.environ.get("REPRO_PLAN_STATS")
    if explicit:
        return Path(explicit)
    from repro.index import get_index_store

    cache_dir = get_index_store().cache_dir
    if cache_dir is not None:
        return Path(cache_dir) / STATS_FILE_NAME
    return None


def get_stats_store() -> StatsStore:
    """The process-default stats store (created lazily)."""
    global _default_store
    with _default_lock:
        if _default_store is None:
            _default_store = StatsStore(path=default_stats_path())
        return _default_store


def set_stats_store(store: StatsStore | None) -> StatsStore | None:
    """Replace the process default; returns the previous one."""
    global _default_store
    with _default_lock:
        previous = _default_store
        _default_store = store
        return previous


def use_stats_store(store: StatsStore | None = None) -> "_StatsStoreContext":
    """Context manager installing ``store`` (default: fresh in-memory)."""
    return _StatsStoreContext(store if store is not None else StatsStore())


class _StatsStoreContext:
    def __init__(self, store: StatsStore):
        self.store = store
        self._previous: StatsStore | None = None

    def __enter__(self) -> StatsStore:
        self._previous = set_stats_store(self.store)
        return self.store

    def __exit__(self, *exc_info: Any) -> None:
        set_stats_store(self._previous)
