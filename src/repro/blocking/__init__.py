"""Blocking: cheap heuristics that prune A x B before matching."""

from repro.blocking.attr_equivalence import AttrEquivalenceBlocker, HashBlocker
from repro.blocking.base import (
    CANDSET_ID,
    Blocker,
    candset_pairs,
    fk_column_names,
    make_candset,
)
from repro.blocking.black_box import BlackBoxBlocker
from repro.blocking.canopy import CanopyBlocker
from repro.blocking.debugger import blocking_recall, debug_blocker
from repro.blocking.ops import candset_difference, candset_intersection, candset_union
from repro.blocking.overlap import OverlapBlocker
from repro.blocking.rule_based import RuleBasedBlocker
from repro.blocking.rules import (
    BlockingRule,
    Predicate,
    execute_rule_survivors,
    execute_rules,
    parse_predicate,
    parse_rule,
)
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker
from repro.blocking.vector import VectorBlocker

__all__ = [
    "AttrEquivalenceBlocker",
    "BlackBoxBlocker",
    "CanopyBlocker",
    "Blocker",
    "BlockingRule",
    "CANDSET_ID",
    "HashBlocker",
    "OverlapBlocker",
    "Predicate",
    "RuleBasedBlocker",
    "SortedNeighborhoodBlocker",
    "VectorBlocker",
    "blocking_recall",
    "candset_difference",
    "candset_intersection",
    "candset_pairs",
    "candset_union",
    "debug_blocker",
    "execute_rule_survivors",
    "execute_rules",
    "fk_column_names",
    "make_candset",
    "parse_predicate",
    "parse_rule",
]
