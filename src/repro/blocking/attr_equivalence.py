"""Attribute-equivalence blocker: keep pairs that agree on an attribute.

The classic EM blocker (e.g. "persons residing in different states are
dropped", Figure 1 of the paper).  ``block_tables`` runs as a hash join on
the blocking attribute, so it never materializes the cross product.
Missing values never match anything (a pair with a missing blocking value
is dropped), matching Magellan's semantics.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from typing import Any

from repro.blocking.base import Blocker, make_candset, observe_blocking
from repro.catalog.catalog import Catalog
from repro.perf.parallel import effective_n_jobs, run_sharded, split_evenly
from repro.table.schema import is_missing
from repro.table.table import Row, Table


class AttrEquivalenceBlocker(Blocker):
    """Keep pairs with equal values of ``l_block_attr``/``r_block_attr``."""

    def __init__(self, l_block_attr: str, r_block_attr: str | None = None):
        self.l_block_attr = l_block_attr
        self.r_block_attr = r_block_attr if r_block_attr is not None else l_block_attr

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        l_value = l_row[self.l_block_attr]
        r_value = r_row[self.r_block_attr]
        if is_missing(l_value) or is_missing(r_value):
            return True
        return l_value != r_value

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        ltable.require_columns([l_key, self.l_block_attr])
        rtable.require_columns([r_key, self.r_block_attr])
        buckets: dict[Any, list[Any]] = defaultdict(list)
        for key_value, block_value in zip(
            rtable.column(r_key), rtable.column(self.r_block_attr)
        ):
            if not is_missing(block_value):
                buckets[block_value].append(key_value)

        def probe_shard(shard: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
            pairs = []
            for key_value, block_value in shard:
                if is_missing(block_value):
                    continue
                for r_key_value in buckets.get(block_value, ()):
                    pairs.append((key_value, r_key_value))
            return pairs

        probes = list(zip(ltable.column(l_key), ltable.column(self.l_block_attr)))
        shards = split_evenly(probes, effective_n_jobs(n_jobs))
        pairs = [
            pair for shard in run_sharded(shards, probe_shard, n_jobs) for pair in shard
        ]
        observe_blocking(self, len(pairs))
        return make_candset(
            pairs, ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )


class HashBlocker(Blocker):
    """Attribute-equivalence generalized to a computed hash key.

    ``l_hash``/``r_hash`` map a row to a bucket value (``None`` drops the
    row); pairs hashing to the same bucket survive.  Covers schemes like
    "first 3 letters of the lowercased name".
    """

    def __init__(self, l_hash, r_hash=None):
        self.l_hash = l_hash
        self.r_hash = r_hash if r_hash is not None else l_hash

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        l_value = self.l_hash(l_row)
        r_value = self.r_hash(r_row)
        if l_value is None or r_value is None:
            return True
        return l_value != r_value

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        ltable.require_columns([l_key])
        rtable.require_columns([r_key])
        buckets: dict[Any, list[Any]] = defaultdict(list)
        for r_row in rtable.rows():
            bucket = self.r_hash(r_row)
            if bucket is not None:
                buckets[bucket].append(r_row[r_key])

        def probe_shard(shard: list[Row]) -> list[tuple[Any, Any]]:
            pairs = []
            for l_row in shard:
                bucket = self.l_hash(l_row)
                if bucket is None:
                    continue
                for r_key_value in buckets.get(bucket, ()):
                    pairs.append((l_row[l_key], r_key_value))
            return pairs

        shards = split_evenly(list(ltable.rows()), effective_n_jobs(n_jobs))
        pairs = [
            pair for shard in run_sharded(shards, probe_shard, n_jobs) for pair in shard
        ]
        observe_blocking(self, len(pairs))
        return make_candset(
            pairs, ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )
