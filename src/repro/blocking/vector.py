"""Vector blocker: embedding + approximate-NN retrieval behind the Blocker API.

The last blocking paradigm the substrate was missing.  Token-overlap
blockers (:class:`~repro.blocking.overlap.OverlapBlocker`, the rule
executors) need the two sides to *share surface tokens*; on dirty data —
typos, abbreviations, dropped or reordered tokens — the shared-token
assumption is exactly what breaks.  BlockingPy/AutoBlock-style vector
blocking sidesteps it: embed every record as a hashed character-n-gram
(optionally TF-IDF-weighted) vector (:mod:`repro.text.vectorize`),
index one side in a banded-LSH approximate-NN structure
(:mod:`repro.index.ann`), and retrieve each left record's near
neighbours under cosine similarity at a controllable candidate budget
(``top_k``).

Everything expensive is an :class:`repro.index.IndexStore` artifact
(kinds ``vectors`` -> ``vecpair`` -> ``ann``), so embeddings and the ANN
index are built once per content fingerprint, shared across calls, and
warm-reloaded from the disk tier with byte-identical probe results.

Approximation contract: retrieval is *approximate* — ``block_tables``
returns a subset of the exact cosine-threshold join (LSH can miss
pairs), which is the usual blocking trade: recall is measured against
candidate-set size in ``benchmarks/bench_vector_blocking.py``.
``block_candset`` filtering, by contrast, is exact: every surviving
input pair is scored with the true cosine.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Any

from repro.blocking.base import CANDSET_ID, Blocker, make_candset, observe_blocking
from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.exceptions import ConfigurationError
from repro.index.store import IndexStore, get_index_store
from repro.obs import get_registry
from repro.table.schema import is_missing
from repro.table.table import Row, Table
from repro.text.vectorize import HashedNgramVectorizer, cosine


class VectorBlocker(Blocker):
    """Keep pairs whose hashed-n-gram embeddings are cosine-similar.

    Parameters
    ----------
    l_block_attr, r_block_attr:
        The attribute embedded on each side (right defaults to left).
    threshold:
        Cosine similarity a pair must reach, in ``(0, 1]``.
    top_k:
        Optional per-left-record candidate budget: keep at most the
        ``top_k`` best-scoring right records.  This is the knob that
        bounds candidate-set size independently of the threshold.
    q, dim:
        Character n-gram size and hashing-trick bucket count of the
        embedding (see :class:`~repro.text.vectorize.HashedNgramVectorizer`).
    idf:
        Weight buckets by smoothed inverse document frequency over the
        *combined* corpus of both tables (TF-IDF), de-emphasizing grams
        every record shares.
    n_bands, band_bits, seed:
        The LSH dial: candidates collide in at least one of ``n_bands``
        bands of ``band_bits`` sign bits.  More bands -> higher recall
        and larger candidate sets; more bits -> sharper bands.
    kernel:
        Scoring backend: ``"dict"`` probes and verifies one record at a
        time with scalar sparse dots; ``"array"`` batches signature
        computation and runs verification as columnar cosine
        accumulations (:mod:`repro.perf.arrays`), byte-identical scores;
        ``"auto"`` (default) picks by corpus size.  ``"mask"``/``"merge"``
        are accepted for interface symmetry with
        :func:`~repro.simjoin.joins.set_sim_join` and behave as
        ``"dict"`` here.

    Commutativity: with ``top_k=None`` the pair decision (cosine in the
    joint space of the two *base tables* >= threshold) is independent of
    which other pairs are present, so chained filters commute and
    :mod:`repro.plan` may reorder them.  A ``top_k`` budget ranks each
    left record's surviving partners against each other, which is not
    pair-local — those instances declare ``commutative = False`` and are
    never reordered.

    Note: per-pair :meth:`block_tuples` embeds the pair in isolation and
    therefore cannot apply corpus-level IDF weights; it raises under
    ``idf=True`` (use :meth:`block_candset`, which scores exactly in the
    corpus space).
    """

    def __init__(
        self,
        l_block_attr: str,
        r_block_attr: str | None = None,
        threshold: float = 0.3,
        top_k: int | None = None,
        q: int = 3,
        dim: int = 2**18,
        idf: bool = True,
        n_bands: int = 16,
        band_bits: int = 6,
        seed: int = 0,
        kernel: str = "auto",
    ):
        from repro.simjoin.joins import KERNELS

        if kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        if top_k is not None and top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        if n_bands < 1 or band_bits < 1:
            raise ConfigurationError(
                f"need n_bands >= 1 and band_bits >= 1, "
                f"got n_bands={n_bands} band_bits={band_bits}"
            )
        self.l_block_attr = l_block_attr
        self.r_block_attr = r_block_attr if r_block_attr is not None else l_block_attr
        self.threshold = threshold
        self.top_k = top_k
        self.q = q
        self.dim = dim
        self.idf = idf
        self.n_bands = n_bands
        self.band_bits = band_bits
        self.seed = seed
        self.kernel = kernel
        # A top-k budget ranks a record's partners against each other:
        # not a pair-local decision, so the plan optimizer must not
        # reorder it (see Blocker.commutative).
        self.commutative = top_k is None
        # One vectorizer per blocker (its tokenize memo is the hot-path
        # cache); never constructed per row or per call.
        self._vectorizer = HashedNgramVectorizer(q=q, dim=dim, lowercase=True)

    # ------------------------------------------------------------------
    # Embedding plumbing
    # ------------------------------------------------------------------
    def _space(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        store: IndexStore,
    ):
        """The two tables' joint vector space, via the artifact chain."""
        left = store.hashed_column(ltable, l_key, self.l_block_attr, self._vectorizer)
        right = store.hashed_column(rtable, r_key, self.r_block_attr, self._vectorizer)
        return store.vector_pair(left, right, idf=self.idf)

    def _embed_value(self, value: Any):
        if is_missing(value):
            return {}
        return self._vectorizer.embed_normalized(str(value))

    # ------------------------------------------------------------------
    # Blocker API
    # ------------------------------------------------------------------
    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        if self.idf:
            raise NotImplementedError(
                "per-pair filtering under IDF weighting requires the whole "
                "corpus; use block_candset (exact corpus-space scoring) or "
                "construct the blocker with idf=False"
            )
        l_vector = self._embed_value(l_row[self.l_block_attr])
        r_vector = self._embed_value(r_row[self.r_block_attr])
        return cosine(l_vector, r_vector) < self.threshold

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        """ANN retrieval: probe each left record against the right index.

        ``n_jobs`` is accepted for interface compatibility; probes are
        index lookups plus sparse dot products, far below the cost where
        fork-sharding pays for itself.
        """
        started = time.perf_counter()
        ltable.require_columns([l_key, self.l_block_attr])
        rtable.require_columns([r_key, self.r_block_attr])
        store = get_index_store()
        pair = self._space(ltable, rtable, l_key, r_key, store)
        ann = store.ann_index(
            pair,
            side="right",
            n_bands=self.n_bands,
            band_bits=self.band_bits,
            seed=self.seed,
        )
        from repro.perf.arrays import choose_backend, observe_kernel_batch

        registry = get_registry()
        pairs: list[tuple[Any, Any]] = []
        candidates_total = 0
        probe_started = time.perf_counter()
        if choose_backend(self.kernel, len(pair.left), len(ann)) == "array":
            searched = ann.search_batch(
                [vector for _, vector in pair.left],
                threshold=self.threshold,
                top_k=self.top_k,
            )
            for (row_key, _), matches in zip(pair.left, searched):
                candidates_total += len(matches)
                pairs.extend((row_key, ann.keys[position]) for position, _ in matches)
            observe_kernel_batch(
                "ann_search",
                len(pair.left),
                candidates_total,
                time.perf_counter() - probe_started,
            )
        else:
            for row_key, vector in pair.left:
                matches = ann.search(vector, threshold=self.threshold, top_k=self.top_k)
                candidates_total += len(matches)
                pairs.extend((row_key, ann.keys[position]) for position, _ in matches)
        registry.counter("index_ann_probes_total").inc(len(pair.left))
        registry.counter("index_ann_candidates_total").inc(candidates_total)
        registry.histogram("index_ann_probe_seconds").observe(
            time.perf_counter() - probe_started
        )
        observe_blocking(self, len(pairs), time.perf_counter() - started)
        return make_candset(
            pairs, ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )

    def _score_candset_arrays(
        self,
        pair,
        l_vectors: dict,
        by_left: dict[Any, list[int]],
        r_ids: Sequence[Any],
    ) -> list[tuple[int, Any, float]]:
        """Columnar scoring for :meth:`block_candset`, byte-identical.

        One :func:`~repro.perf.arrays.batch_cosine` accumulation per
        distinct left record scores it against every right vector at
        once; each candidate row then just gathers its score.  The
        accumulation walks shared buckets in the same ascending order as
        the scalar :func:`~repro.text.vectorize.cosine`, so the floats
        (and hence the survivor set) are bit-identical to the dict path.
        """
        from repro.perf.arrays import SparseColumns, batch_cosine, observe_kernel_batch

        started = time.perf_counter()
        r_position = {row_key: i for i, (row_key, _) in enumerate(pair.right)}
        columns = SparseColumns([vector for _, vector in pair.right])
        # Keyed by candset row index so emission below restores the
        # scalar path's ascending-row order.
        by_row: dict[int, tuple[Any, float]] = {}
        for l_id, rows in by_left.items():
            l_vector = l_vectors.get(l_id)
            if not l_vector:
                continue  # empty/missing left: scalar cosine is 0, below threshold
            scores = batch_cosine(l_vector, columns)
            for i in rows:
                position = r_position.get(r_ids[i])
                if position is None:
                    continue
                score = float(scores[position])
                if score >= self.threshold:
                    by_row[i] = (l_id, score)
        scored = [(i, l_id, score) for i, (l_id, score) in sorted(by_row.items())]
        observe_kernel_batch(
            "vector_candset", len(by_left), len(scored), time.perf_counter() - started
        )
        return scored

    def block_candset(
        self,
        candset: Table,
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        """Filter an existing candidate set by exact corpus-space cosine.

        Unlike :meth:`block_tables` this is *not* approximate: every
        input pair is scored with the true cosine in the joint
        (IDF-weighted) space of the candidate set's base tables.  With
        ``top_k`` set, each left record additionally keeps only its
        ``top_k`` best surviving partners.
        """
        cat = catalog if catalog is not None else get_catalog()
        meta = validate_candset(candset, cat)
        l_key = cat.get_key(meta.ltable)
        r_key = cat.get_key(meta.rtable)
        meta.ltable.require_columns([self.l_block_attr])
        meta.rtable.require_columns([self.r_block_attr])
        pair = self._space(meta.ltable, meta.rtable, l_key, r_key, get_index_store())
        l_vectors = dict(pair.left)

        from repro.perf.arrays import choose_backend

        empty: dict = {}
        scored: list[tuple[int, Any, float]] = []  # (row index, l_id, score)
        l_ids = candset.column(meta.fk_ltable)
        r_ids = candset.column(meta.fk_rtable)
        # Group rows by left record: the columnar path scores each
        # distinct left against the whole right corpus in one pass.
        by_left: dict[Any, list[int]] = {}
        for i, l_id in enumerate(l_ids):
            by_left.setdefault(l_id, []).append(i)
        if choose_backend(self.kernel, len(by_left), len(pair.right)) == "array":
            scored = self._score_candset_arrays(pair, l_vectors, by_left, r_ids)
        else:
            r_vectors = dict(pair.right)
            for i in range(candset.num_rows):
                score = cosine(
                    l_vectors.get(l_ids[i], empty),
                    r_vectors.get(r_ids[i], empty),
                )
                if score >= self.threshold:
                    scored.append((i, l_ids[i], score))
        if self.top_k is not None:
            per_left: dict[Any, list[tuple[int, float]]] = {}
            for i, l_id, score in scored:
                per_left.setdefault(l_id, []).append((i, score))
            keep = []
            for rows in per_left.values():
                rows.sort(key=lambda item: (-item[1], item[0]))
                keep.extend(i for i, _ in rows[: self.top_k])
            keep.sort()
        else:
            keep = [i for i, _, _ in scored]
        observe_blocking(self, len(keep))
        result = candset.take(keep)
        result.add_column(CANDSET_ID, list(range(len(keep))))
        cat.set_candset_metadata(
            result, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
        )
        return result
