"""Blocker base class and candidate-set construction.

A blocker consumes two tables A and B and produces a *candidate set*: a
table whose rows reference a pair (one A-tuple, one B-tuple) that survived
blocking.  Following the paper's space-efficiency principle, the candidate
set carries only the pair of foreign keys — ``ltable_<key>`` and
``rtable_<key>`` — plus optional user-requested output attributes, and the
key/FK metadata is recorded in the catalog rather than in the table.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from typing import Any

from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.obs import get_registry
from repro.perf.parallel import effective_n_jobs, run_sharded, split_evenly
from repro.table.table import Row, Table

CANDSET_ID = "_id"


def observe_blocking(
    blocker: "Blocker | str", pair_count: int, seconds: float | None = None
) -> None:
    """Record one blocking call's surviving-pair count in the registry.

    Every ``block_tables``/``block_candset`` implementation calls this
    with its output size (and wall seconds when it times itself), so the
    per-blocker funnel — how many pairs each blocker lets through — is
    observable across all workflow stacks.
    """
    name = blocker if isinstance(blocker, str) else type(blocker).__name__
    registry = get_registry()
    registry.counter("blocking_calls_total", blocker=name).inc()
    registry.counter("blocking_pairs_total", blocker=name).inc(pair_count)
    if seconds is not None:
        registry.histogram("blocking_seconds", blocker=name).observe(seconds)


def fk_column_names(l_key: str, r_key: str) -> tuple[str, str]:
    """Names of the candidate set's foreign-key columns."""
    return f"ltable_{l_key}", f"rtable_{r_key}"


def make_candset(
    pairs: Iterable[tuple[Any, Any]],
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_output_attrs: Sequence[str] = (),
    r_output_attrs: Sequence[str] = (),
    catalog: Catalog | None = None,
) -> Table:
    """Build a candidate-set table from (l_key_value, r_key_value) pairs.

    Registers the candidate set's metadata (key ``_id``, both FKs, the base
    tables) in the catalog so downstream tools can validate it.
    """
    cat = catalog if catalog is not None else get_catalog()
    fk_l, fk_r = fk_column_names(l_key, r_key)
    l_index = ltable.index_by(l_key) if l_output_attrs else None
    r_index = rtable.index_by(r_key) if r_output_attrs else None

    columns: dict[str, list[Any]] = {CANDSET_ID: [], fk_l: [], fk_r: []}
    for attr in l_output_attrs:
        columns[f"ltable_{attr}"] = []
    for attr in r_output_attrs:
        columns[f"rtable_{attr}"] = []

    for i, (l_value, r_value) in enumerate(pairs):
        columns[CANDSET_ID].append(i)
        columns[fk_l].append(l_value)
        columns[fk_r].append(r_value)
        for attr in l_output_attrs:
            columns[f"ltable_{attr}"].append(l_index[l_value][attr])
        for attr in r_output_attrs:
            columns[f"rtable_{attr}"].append(r_index[r_value][attr])

    candset = Table(columns)
    cat.set_key(ltable, l_key)
    cat.set_key(rtable, r_key)
    cat.set_candset_metadata(candset, CANDSET_ID, fk_l, fk_r, ltable, rtable)
    return candset


def candset_pairs(candset: Table, catalog: Catalog | None = None) -> list[tuple[Any, Any]]:
    """Return the (l_key_value, r_key_value) pairs of a candidate set."""
    cat = catalog if catalog is not None else get_catalog()
    meta = cat.get_candset_metadata(candset)
    return list(zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable)))


class Blocker:
    """Base class for blockers.

    Subclasses implement :meth:`block_tuples` (does this pair survive?) and
    may override :meth:`block_tables` with an index-based implementation;
    the default here is the quadratic fallback, correct for any blocker.
    ``n_jobs`` fans the scan over the left table out on a process pool;
    shards are contiguous and merged in order, so parallel output is
    byte-identical to serial.

    ``commutative`` declares whether :meth:`block_candset` is a *pair-local
    filter*: it keeps an order-preserving subset of its input decided per
    pair, independent of which other pairs are present.  Pair-local
    filters compose as set intersection, so a chain of them produces the
    same candidate set in any order — the property the
    :mod:`repro.plan` optimizer relies on to reorder blocker chains
    most-selective-first.  Blockers whose decision depends on the whole
    table (sorted-neighborhood windows, canopies) must override this to
    ``False`` and are never reordered.
    """

    commutative = True

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        """Return ``True`` when the pair should be *dropped* (blocked)."""
        raise NotImplementedError

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        """Apply the blocker to A x B and return the candidate set."""
        started = time.perf_counter()
        ltable.require_columns([l_key])
        rtable.require_columns([r_key])
        r_rows = list(rtable.rows())

        def scan_shard(shard: list[Row]) -> list[tuple[Any, Any]]:
            return [
                (l_row[l_key], r_row[r_key])
                for l_row in shard
                for r_row in r_rows
                if not self.block_tuples(l_row, r_row)
            ]

        shards = split_evenly(list(ltable.rows()), effective_n_jobs(n_jobs))
        pairs = [
            pair for shard in run_sharded(shards, scan_shard, n_jobs) for pair in shard
        ]
        observe_blocking(self, len(pairs), time.perf_counter() - started)
        return make_candset(
            pairs, ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )

    def block_candset(
        self,
        candset: Table,
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        """Further filter an existing candidate set with this blocker.

        Validates the candidate set's metadata first (self-containment),
        then keeps only the surviving pairs; the result is re-registered in
        the catalog against the same base tables.
        """
        cat = catalog if catalog is not None else get_catalog()
        meta = validate_candset(candset, cat)
        l_index = meta.ltable.index_by(cat.get_key(meta.ltable))
        r_index = meta.rtable.index_by(cat.get_key(meta.rtable))

        def scan_shard(shard: range) -> list[int]:
            kept = []
            for i in shard:
                row = candset.row(i)
                l_row = l_index[row[meta.fk_ltable]]
                r_row = r_index[row[meta.fk_rtable]]
                if not self.block_tuples(l_row, r_row):
                    kept.append(i)
            return kept

        shards = split_evenly(range(candset.num_rows), effective_n_jobs(n_jobs))
        keep = [i for shard in run_sharded(shards, scan_shard, n_jobs) for i in shard]
        observe_blocking(self, len(keep))
        result = candset.take(keep)
        result.add_column(CANDSET_ID, list(range(len(keep))))
        cat.set_candset_metadata(
            result, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
        )
        return result

    def as_filter_operator(
        self,
        name: str | None = None,
        deps: tuple[str, ...] = (),
        slot: str = "candset",
        n_jobs: int = 1,
        description: str = "",
    ):
        """Compile this blocker into a runtime candidate-set-filter operator.

        The operator reads the candidate set from ``store[slot]``, applies
        :meth:`block_candset`, and writes the filtered set back to the
        same slot.  When the blocker declares itself :attr:`commutative`,
        the operator carries the ``candset-filter:<slot>`` commutativity
        group, which lets the :mod:`repro.plan` optimizer reorder a chain
        of such filters most-selective-first; non-commutative blockers
        compile to plain (never reordered) operators.
        """
        from repro.runtime.graph import Operator

        def apply_filter(store) -> None:
            store[slot] = self.block_candset(store[slot], n_jobs=n_jobs)

        return Operator(
            name=name or f"filter_{type(self).__name__}",
            fn=apply_filter,
            deps=tuple(deps),
            outputs=(slot,),
            description=description or f"filter {slot!r} with {type(self).__name__}",
            commutes=f"candset-filter:{slot}" if self.commutative else "",
        )
