"""Rule-based blocker: user- or Falcon-supplied rules over features."""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocking.base import Blocker, make_candset, observe_blocking
from repro.blocking.rules import BlockingRule, execute_rules, parse_rule
from repro.catalog.catalog import Catalog
from repro.exceptions import ConfigurationError
from repro.features.feature import FeatureTable
from repro.table.table import Row, Table


class RuleBasedBlocker(Blocker):
    """Blocks a pair when *any* of its rules drops it.

    When every rule is join-executable (see
    :class:`~repro.blocking.rules.BlockingRule`), ``block_tables`` runs
    the rules as similarity joins and never enumerates A x B; otherwise it
    falls back to the base class's pairwise scan.
    """

    def __init__(self, rules: list[BlockingRule] | None = None):
        self.rules: list[BlockingRule] = list(rules or [])

    def add_rule(
        self,
        specs: list[str] | str,
        feature_table: FeatureTable,
        name: str = "",
    ) -> BlockingRule:
        """Add a rule from declarative predicate specs; returns the rule."""
        rule = parse_rule(specs, feature_table, name=name or f"rule_{len(self.rules) + 1}")
        self.rules.append(rule)
        return rule

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        if not self.rules:
            raise ConfigurationError("RuleBasedBlocker has no rules")
        return any(rule.drops(l_row, r_row) for rule in self.rules)

    @property
    def is_join_executable(self) -> bool:
        return bool(self.rules) and all(rule.is_executable for rule in self.rules)

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        if not self.rules:
            raise ConfigurationError("RuleBasedBlocker has no rules")
        if not self.is_join_executable:
            return super().block_tables(
                ltable,
                rtable,
                l_key,
                r_key,
                l_output_attrs,
                r_output_attrs,
                catalog,
                n_jobs=n_jobs,
            )
        pairs = sorted(
            execute_rules(self.rules, ltable, rtable, l_key, r_key, n_jobs=n_jobs)
        )
        observe_blocking(self, len(pairs))
        return make_candset(
            pairs, ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )
