"""Overlap blocker: keep pairs whose attribute tokens overlap enough.

The workhorse blocker for dirty string attributes: tokenize one attribute
from each side and keep pairs sharing at least ``overlap_size`` tokens.
``block_tables`` delegates to the filtered overlap join in
:mod:`repro.simjoin`, so it scales like the sim-join and never enumerates
the cross product.

For long-running deployments the right table need not be frozen:
:meth:`OverlapBlocker.live_index` wraps it in a
:class:`repro.index.LiveIndex` carrying this blocker's exact semantics
(lowercasing, tokenizer, overlap threshold), and
:meth:`OverlapBlocker.block_live` blocks new left rows against that
index — equal output to :meth:`block_tables` over the index's current
records, while ``upsert``/``delete`` absorb right-table churn without a
rebuild.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocking.base import Blocker, make_candset, observe_blocking
from repro.catalog.catalog import Catalog
from repro.exceptions import ConfigurationError
from repro.index.delta import LiveIndex
from repro.index.store import IndexStore
from repro.simjoin.joins import set_sim_join
from repro.table.schema import is_missing
from repro.table.table import Row, Table
from repro.text.tokenizers import QgramTokenizer, Tokenizer, WhitespaceTokenizer


class OverlapBlocker(Blocker):
    """Keep pairs with token overlap >= ``overlap_size`` on an attribute.

    ``word_level=True`` uses whitespace tokens of the lowercased value;
    otherwise character q-grams of size ``q``.  ``kernel`` is forwarded
    to the underlying :func:`~repro.simjoin.joins.set_sim_join` (the
    candidate sets are identical for every backend).
    """

    def __init__(
        self,
        l_block_attr: str,
        r_block_attr: str | None = None,
        overlap_size: int = 1,
        word_level: bool = True,
        q: int = 3,
        kernel: str = "auto",
    ):
        from repro.simjoin.joins import KERNELS

        if kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if overlap_size < 1:
            raise ConfigurationError(f"overlap_size must be >= 1, got {overlap_size}")
        self.l_block_attr = l_block_attr
        self.r_block_attr = r_block_attr if r_block_attr is not None else l_block_attr
        self.overlap_size = overlap_size
        self.word_level = word_level
        self.q = q
        self.kernel = kernel

    def _tokenizer(self) -> Tokenizer:
        if self.word_level:
            return WhitespaceTokenizer(return_set=True)
        return QgramTokenizer(q=self.q, return_set=True)

    def _tokens(self, value) -> set[str]:
        if is_missing(value):
            return set()
        return set(self._tokenizer().tokenize(str(value).lower()))

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        l_tokens = self._tokens(l_row[self.l_block_attr])
        r_tokens = self._tokens(r_row[self.r_block_attr])
        return len(l_tokens & r_tokens) < self.overlap_size

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
        n_jobs: int = 1,
    ) -> Table:
        ltable.require_columns([l_key, self.l_block_attr])
        rtable.require_columns([r_key, self.r_block_attr])
        # Lowercase through a projected copy so the join tokens match the
        # per-tuple semantics of block_tuples.
        l_view = Table(
            {
                l_key: ltable.column(l_key),
                "_blk": [
                    None if is_missing(v) else str(v).lower()
                    for v in ltable.column(self.l_block_attr)
                ],
            }
        )
        r_view = Table(
            {
                r_key: rtable.column(r_key),
                "_blk": [
                    None if is_missing(v) else str(v).lower()
                    for v in rtable.column(self.r_block_attr)
                ],
            }
        )
        joined = set_sim_join(
            l_view,
            r_view,
            l_key,
            r_key,
            "_blk",
            "_blk",
            self._tokenizer(),
            measure="overlap",
            threshold=self.overlap_size,
            n_jobs=n_jobs,
            kernel=self.kernel,
        )
        pairs = list(zip(joined.column("l_id"), joined.column("r_id")))
        observe_blocking(self, len(pairs))
        return make_candset(
            pairs, ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )

    # ------------------------------------------------------------------
    # Live blocking
    # ------------------------------------------------------------------
    def live_index(
        self,
        rtable: Table,
        r_key: str = "id",
        store: IndexStore | None = None,
        name: str = "overlap-block",
    ) -> LiveIndex:
        """A :class:`LiveIndex` over the right table with this blocker's
        semantics baked in (lowercasing via ``normalize``, this
        tokenizer, overlap >= ``overlap_size``).  Upsert/delete right
        records on it, then block against it with :meth:`block_live`.
        """
        rtable.require_columns([r_key, self.r_block_attr])
        return LiveIndex.from_table(
            rtable,
            r_key,
            self.r_block_attr,
            tokenizer=self._tokenizer(),
            measure="overlap",
            threshold=self.overlap_size,
            kernel=self.kernel,
            normalize=str.lower,
            store=store,
            name=name,
        )

    def block_live(
        self,
        ltable: Table,
        live: LiveIndex,
        l_key: str = "id",
        rtable: Table | None = None,
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
    ) -> Table:
        """Block left rows against a live right-side index.

        Produces the same candidate set as :meth:`block_tables` run
        against the index's *current* records.  ``rtable`` (defaulting
        to ``live.to_table()``) supplies the right rows for
        ``r_output_attrs`` projection.
        """
        ltable.require_columns([l_key, self.l_block_attr])
        l_view = Table(
            {
                l_key: ltable.column(l_key),
                self.l_block_attr: ltable.column(self.l_block_attr),
            }
        )
        joined = live.join_table(l_view, l_key, self.l_block_attr)
        pairs = list(zip(joined.column("l_id"), joined.column("r_id")))
        observe_blocking(self, len(pairs))
        if rtable is None:
            rtable = live.to_table()
        return make_candset(
            pairs, ltable, rtable, l_key, live.key, l_output_attrs, r_output_attrs, catalog
        )
