"""Sorted-neighborhood blocker.

Concatenate both tables, sort by a sorting key, slide a window of size
``window`` over the sorted order, and emit every cross-table pair that
co-occurs inside the window.  A standard EM blocker for attributes with a
meaningful lexicographic order.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Callable

from repro.blocking.base import Blocker, make_candset, observe_blocking
from repro.catalog.catalog import Catalog
from repro.exceptions import ConfigurationError
from repro.table.schema import is_missing
from repro.table.table import Row, Table


class SortedNeighborhoodBlocker(Blocker):
    """Windowed blocking over a sorted merge of the two tables.

    ``sort_key`` maps a row to its sorting value (default: the blocking
    attribute's lowercased string).

    Drop semantics (explicit, not incidental): rows whose blocking
    attribute is missing are removed *before* sorting — they occupy no
    window slot, never pair with anything, and do not widen anyone
    else's neighborhood.  When every row is missing the candidate set is
    therefore empty.  A ``window`` at least as large as the merged
    non-missing row count degrades to the full cross product of the
    surviving rows.  Note: this blocker is inherently table-level;
    per-pair ``block_tuples`` is undefined and raises.
    """

    # Whether a pair survives depends on the whole sorted order, not on
    # the pair alone — never reorder this blocker in a filter chain.
    commutative = False

    def __init__(
        self,
        l_block_attr: str,
        r_block_attr: str | None = None,
        window: int = 3,
        sort_key: Callable[[Any], Any] | None = None,
    ):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self.l_block_attr = l_block_attr
        self.r_block_attr = r_block_attr if r_block_attr is not None else l_block_attr
        self.window = window
        self.sort_key = sort_key or (lambda value: str(value).lower())

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        raise NotImplementedError(
            "sorted-neighborhood blocking is defined over whole tables, "
            "not single pairs"
        )

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
    ) -> Table:
        ltable.require_columns([l_key, self.l_block_attr])
        rtable.require_columns([r_key, self.r_block_attr])
        entries: list[tuple[Any, str, Any]] = []  # (sort value, side, key value)
        for key_value, value in zip(ltable.column(l_key), ltable.column(self.l_block_attr)):
            if not is_missing(value):
                entries.append((self.sort_key(value), "l", key_value))
        for key_value, value in zip(rtable.column(r_key), rtable.column(self.r_block_attr)):
            if not is_missing(value):
                entries.append((self.sort_key(value), "r", key_value))
        entries.sort(key=lambda entry: (entry[0], entry[1]))

        pairs: set[tuple[Any, Any]] = set()
        if not entries:
            # All sort values missing on both sides: every row was
            # dropped (see the class docstring), so nothing can pair.
            observe_blocking(self, 0)
            return make_candset(
                [], ltable, rtable, l_key, r_key,
                l_output_attrs, r_output_attrs, catalog,
            )
        if self.window >= len(entries):
            # The window covers the whole merged table: explicitly the
            # full cross product of the surviving (non-missing) rows,
            # rather than trusting the slice below to clamp.
            l_ids = [key for _, side, key in entries if side == "l"]
            r_ids = [key for _, side, key in entries if side == "r"]
            pairs = {(l_id, r_id) for l_id in l_ids for r_id in r_ids}
        else:
            for i, (_, side, key_value) in enumerate(entries):
                for j in range(i + 1, min(i + self.window, len(entries))):
                    _, other_side, other_key = entries[j]
                    if side == other_side:
                        continue
                    if side == "l":
                        pairs.add((key_value, other_key))
                    else:
                        pairs.add((other_key, key_value))
        observe_blocking(self, len(pairs))
        return make_candset(
            sorted(pairs), ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog
        )
