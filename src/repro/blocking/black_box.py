"""Black-box blocker: an arbitrary user predicate over row pairs."""

from __future__ import annotations

from typing import Callable

from repro.blocking.base import Blocker
from repro.table.table import Row


class BlackBoxBlocker(Blocker):
    """Wraps a user function ``f(l_row, r_row) -> bool`` (True = drop).

    Maximally customizable, minimally scalable: execution is the base
    class's pairwise scan, which is exactly the trade-off the paper notes
    for black-box tools.
    """

    def __init__(self, function: Callable[[Row, Row], bool]):
        self.function = function

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        return bool(self.function(l_row, r_row))
