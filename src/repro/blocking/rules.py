"""Blocking rules: predicates, conjunctions, and scalable execution.

A blocking rule is a conjunction of predicates over features; a pair is
*dropped* when every predicate holds (Figure 4.b of the paper: ``ISBN
match < 1 -> drop``, ``ISBN match >= 1 AND #pages match < 1 -> drop``).

Rules can be evaluated per pair, but the point of Falcon is that the
retained rules are executed *at scale*: the survivors of a rule
``p1 AND p2 -> drop`` are the pairs satisfying ``NOT p1 OR NOT p2``, and
when each complement is a "similarity above threshold" predicate over a
token or exact feature, each complement term runs as a filtered sim join.
The candidate set is the intersection of every rule's survivors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError, WorkflowError
from repro.features.feature import Feature, FeatureTable
from repro.simjoin.joins import set_sim_join
from repro.table.schema import is_missing
from repro.table.table import Row, Table

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    ">": lambda value, threshold: value > threshold,
}
_COMPLEMENT = {"<=": ">", "<": ">=", ">=": "<", ">": "<="}


@dataclass(frozen=True)
class Predicate:
    """``feature <op> threshold`` over a pair of rows.

    A NaN feature value (missing data) satisfies no predicate, so a rule
    containing it cannot fire and the pair survives — blocking must never
    drop a pair just because data is missing.
    """

    feature: Feature
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigurationError(f"op must be one of {sorted(_OPS)}, got {self.op!r}")

    def holds_value(self, value: float) -> bool:
        if value != value:  # NaN
            return False
        return _OPS[self.op](value, self.threshold)

    def holds(self, l_row: Row, r_row: Row) -> bool:
        return self.holds_value(self.feature.apply_rows(l_row, r_row))

    def complement(self) -> "Predicate":
        """The negation, as a predicate with the flipped operator."""
        return Predicate(self.feature, _COMPLEMENT[self.op], self.threshold)

    @property
    def is_join_executable(self) -> bool:
        """Can this predicate itself be run as a similarity join?

        True for "similarity at least t" predicates over token or exact
        features.
        """
        return self.op in (">=", ">") and self.feature.is_join_executable

    def __str__(self) -> str:
        return f"{self.feature.name} {self.op} {self.threshold:.4f}"


@dataclass
class BlockingRule:
    """Drop a pair when ALL predicates hold (a conjunction)."""

    predicates: tuple[Predicate, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ConfigurationError("a blocking rule needs at least one predicate")
        self.predicates = tuple(self.predicates)

    def drops(self, l_row: Row, r_row: Row) -> bool:
        """True when the pair should be dropped by this rule."""
        return all(predicate.holds(l_row, r_row) for predicate in self.predicates)

    @property
    def is_executable(self) -> bool:
        """True when the rule's survivors can be computed by joins.

        Survivors are the union of the predicates' complements, so every
        complement must itself be join-executable.
        """
        return all(p.complement().is_join_executable for p in self.predicates)

    def __str__(self) -> str:
        body = " AND ".join(str(p) for p in self.predicates)
        label = self.name or "rule"
        return f"{label}: IF {body} THEN drop"


def parse_predicate(spec: str, feature_table: FeatureTable) -> Predicate:
    """Parse ``"<feature_name> <op> <threshold>"`` into a Predicate.

    This is the declarative rule syntax of the guide, e.g.
    ``"name_jaccard_ws < 0.4"``.
    """
    parts = spec.split()
    if len(parts) != 3:
        raise ConfigurationError(
            f"predicate spec must be '<feature> <op> <value>', got {spec!r}"
        )
    name, op, raw_threshold = parts
    feature = feature_table.get(name)
    try:
        threshold = float(raw_threshold)
    except ValueError:
        raise ConfigurationError(f"invalid threshold in {spec!r}") from None
    return Predicate(feature, op, threshold)


def parse_rule(
    specs: list[str] | str, feature_table: FeatureTable, name: str = ""
) -> BlockingRule:
    """Parse one rule from predicate spec strings (AND-ed together)."""
    if isinstance(specs, str):
        specs = [specs]
    return BlockingRule(
        tuple(parse_predicate(spec, feature_table) for spec in specs), name=name
    )


# ----------------------------------------------------------------------
# Scalable execution
# ----------------------------------------------------------------------
def _execute_complement(
    predicate: Predicate,
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    n_jobs: int = 1,
) -> set[tuple[Any, Any]]:
    """Pairs satisfying the *complement* of a rule predicate, via a join."""
    complement = predicate.complement()
    if not complement.is_join_executable:
        raise WorkflowError(f"predicate {predicate} has no join-executable complement")
    feature = predicate.feature

    def lowered(table: Table, attr: str, key: str) -> Table:
        return Table(
            {
                key: table.column(key),
                "_v": [
                    None if is_missing(v) else str(v).lower()
                    for v in table.column(attr)
                ],
            }
        )

    l_view = lowered(ltable, feature.l_attr, l_key)
    r_view = lowered(rtable, feature.r_attr, r_key)

    if feature.sim_kind == "exact":
        # exact_match > t (t < 1) means equality.
        l_index: dict[Any, list[Any]] = {}
        for key_value, value in zip(l_view.column(l_key), l_view.column("_v")):
            if value is not None:
                l_index.setdefault(value, []).append(key_value)
        pairs: set[tuple[Any, Any]] = set()
        for key_value, value in zip(r_view.column(r_key), r_view.column("_v")):
            if value is None:
                continue
            for l_key_value in l_index.get(value, ()):
                pairs.add((l_key_value, key_value))
        return pairs

    # token similarity: run the filtered sim join at the complement's
    # threshold; a strict '>' is emulated by nudging the threshold.
    threshold = complement.threshold
    if complement.op == ">":
        threshold = threshold + 1e-9
    threshold = min(max(threshold, 1e-9), 1.0)
    joined = set_sim_join(
        l_view,
        r_view,
        l_key,
        r_key,
        "_v",
        "_v",
        feature.tokenizer,
        measure=feature.measure_name,
        threshold=threshold,
        n_jobs=n_jobs,
    )
    return set(zip(joined.column("l_id"), joined.column("r_id")))


def execute_rule_survivors(
    rule: BlockingRule,
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
    n_jobs: int = 1,
) -> set[tuple[Any, Any]]:
    """Pairs of A x B *not* dropped by the rule, computed via joins."""
    if not rule.is_executable:
        raise WorkflowError(f"rule is not join-executable: {rule}")
    survivors: set[tuple[Any, Any]] = set()
    for predicate in rule.predicates:
        survivors |= _execute_complement(
            predicate, ltable, rtable, l_key, r_key, n_jobs=n_jobs
        )
    return survivors


def execute_rules(
    rules: list[BlockingRule],
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
    n_jobs: int = 1,
) -> set[tuple[Any, Any]]:
    """Candidate pairs surviving *all* rules (intersection of survivors)."""
    from repro.blocking.base import observe_blocking

    if not rules:
        raise WorkflowError("no blocking rules to execute")
    result: set[tuple[Any, Any]] | None = None
    for rule in rules:
        survivors = execute_rule_survivors(
            rule, ltable, rtable, l_key, r_key, n_jobs=n_jobs
        )
        result = survivors if result is None else (result & survivors)
        if not result:
            break
    result = result or set()
    observe_blocking("BlockingRules", len(result))
    return result
