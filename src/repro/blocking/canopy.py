"""Canopy-clustering blocker (McCallum, Nigam & Ungar 2000).

A classic cheap-similarity blocker: records from both tables are grouped
into overlapping *canopies* using an inexpensive token-overlap measure
with two thresholds — a loose one for canopy membership and a tight one
for removing records from further consideration as canopy centers.  A
pair survives blocking when the two records share at least one canopy.

Complements the other blockers when no single attribute is reliable: the
canopy measure runs over the concatenation of all (or chosen) attributes.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Sequence
from typing import Any

from repro.blocking.base import Blocker, make_candset, observe_blocking
from repro.catalog.catalog import Catalog
from repro.exceptions import ConfigurationError
from repro.table.schema import is_missing
from repro.table.table import Row, Table
from repro.text.tokenizers import WhitespaceTokenizer


class CanopyBlocker(Blocker):
    """Overlapping canopies over the union of both tables' records.

    Parameters
    ----------
    attrs:
        Attributes whose lowercased whitespace tokens form the cheap
        representation (``None``: all shared non-key attributes).
    loose, tight:
        Jaccard thresholds: a record joins a canopy when its similarity
        to the center is >= ``loose``; it stops being a future center
        candidate when >= ``tight``.  Requires ``tight >= loose``.
    seed:
        Center-selection order (canopies are order-dependent).

    Note: like sorted-neighborhood, canopy blocking is defined over whole
    tables; per-pair ``block_tuples`` raises.
    """

    # Canopy membership depends on every record present, not on the pair
    # alone — never reorder this blocker in a filter chain.
    commutative = False

    def __init__(
        self,
        attrs: Sequence[str] | None = None,
        loose: float = 0.2,
        tight: float = 0.6,
        seed: int = 0,
    ):
        if not 0.0 < loose <= tight <= 1.0:
            raise ConfigurationError(
                f"need 0 < loose <= tight <= 1, got loose={loose} tight={tight}"
            )
        self.attrs = list(attrs) if attrs is not None else None
        self.loose = loose
        self.tight = tight
        self.seed = seed
        # One tokenizer for the whole blocker: `_tokens` runs once per
        # row, and the tokenizer's memo only pays off when shared.
        self._tokenizer = WhitespaceTokenizer(return_set=True)

    def block_tuples(self, l_row: Row, r_row: Row) -> bool:
        raise NotImplementedError(
            "canopy blocking is defined over whole tables, not single pairs"
        )

    def _tokens(self, row: Row, attrs: list[str]) -> frozenset[str]:
        tokens: set[str] = set()
        for attr in attrs:
            value = row.get(attr)
            if not is_missing(value):
                tokens.update(
                    t.lower() for t in self._tokenizer.tokenize(str(value))
                )
        return frozenset(tokens)

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        l_output_attrs: Sequence[str] = (),
        r_output_attrs: Sequence[str] = (),
        catalog: Catalog | None = None,
    ) -> Table:
        if self.attrs is None:
            attrs = [
                name
                for name in ltable.columns
                if name in set(rtable.columns) and name not in (l_key, r_key)
            ]
        else:
            attrs = self.attrs
            ltable.require_columns(attrs)
            rtable.require_columns(attrs)
        if not attrs:
            # Without a single measured attribute every record's token
            # set is empty, every canopy is a singleton, and the blocker
            # silently returns zero pairs — a misconfiguration, not a
            # legitimate empty result.
            raise ConfigurationError(
                "canopy blocking has no attributes to measure: the two "
                "tables share no non-key attributes (pass attrs= explicitly)"
                if self.attrs is None
                else "canopy blocking needs at least one attribute, got attrs=[]"
            )

        # Side-tagged records: ('l'|'r', key value, token set).
        records: list[tuple[str, Any, frozenset[str]]] = []
        for side, table, key in (("l", ltable, l_key), ("r", rtable, r_key)):
            for row in table.rows():
                records.append((side, row[key], self._tokens(row, attrs)))

        # Inverted index for candidate retrieval during canopy growth.
        index: dict[str, list[int]] = defaultdict(list)
        for position, (_, _, tokens) in enumerate(records):
            for token in tokens:
                index[token].append(position)

        rng = random.Random(self.seed)
        order = list(range(len(records)))
        rng.shuffle(order)
        center_candidates = set(order)
        canopy_of: dict[int, list[int]] = defaultdict(list)  # record -> canopies
        canopy_id = 0
        for position in order:
            if position not in center_candidates:
                continue
            center_candidates.discard(position)
            _, _, center_tokens = records[position]
            members = {position}
            if center_tokens:
                seen: set[int] = set()
                for token in center_tokens:
                    seen.update(index[token])
                for other in seen:
                    other_tokens = records[other][2]
                    union = len(center_tokens | other_tokens)
                    similarity = (
                        len(center_tokens & other_tokens) / union if union else 0.0
                    )
                    if similarity >= self.loose:
                        members.add(other)
                        if similarity >= self.tight:
                            center_candidates.discard(other)
            for member in members:
                canopy_of[member].append(canopy_id)
            canopy_id += 1

        # Pairs sharing a canopy, across sides only.
        by_canopy: dict[int, tuple[list[Any], list[Any]]] = defaultdict(
            lambda: ([], [])
        )
        for position, canopies in canopy_of.items():
            side, key_value, _ = records[position]
            for canopy in canopies:
                by_canopy[canopy][0 if side == "l" else 1].append(key_value)
        pairs: set[tuple[Any, Any]] = set()
        for l_ids, r_ids in by_canopy.values():
            for l_id in l_ids:
                for r_id in r_ids:
                    pairs.add((l_id, r_id))
        observe_blocking(self, len(pairs))
        return make_candset(
            sorted(pairs, key=lambda p: (str(p[0]), str(p[1]))),
            ltable, rtable, l_key, r_key, l_output_attrs, r_output_attrs, catalog,
        )
