"""Candidate-set algebra: union, intersection, and difference.

The guide encourages experimenting with multiple blockers ("executing both
on A' and B' and examining their output"); combining their outputs needs
set operations over candidate sets that preserve catalog metadata.
"""

from __future__ import annotations

from typing import Any

from repro.blocking.base import make_candset
from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.exceptions import SchemaError
from repro.table.table import Table


def _pair_set(candset: Table, cat: Catalog) -> tuple[set[tuple[Any, Any]], Any]:
    meta = validate_candset(candset, cat)
    pairs = set(zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable)))
    return pairs, meta


def _check_same_bases(meta_a, meta_b) -> None:
    if meta_a.ltable is not meta_b.ltable or meta_a.rtable is not meta_b.rtable:
        raise SchemaError(
            "candidate sets were built over different base tables; "
            "set operations require the same A and B"
        )


def _rebuild(pairs: set[tuple[Any, Any]], meta, cat: Catalog) -> Table:
    l_key = cat.get_key(meta.ltable)
    r_key = cat.get_key(meta.rtable)
    return make_candset(sorted(pairs), meta.ltable, meta.rtable, l_key, r_key, catalog=cat)


def candset_union(a: Table, b: Table, catalog: Catalog | None = None) -> Table:
    """Pairs present in either candidate set."""
    cat = catalog if catalog is not None else get_catalog()
    pairs_a, meta_a = _pair_set(a, cat)
    pairs_b, meta_b = _pair_set(b, cat)
    _check_same_bases(meta_a, meta_b)
    return _rebuild(pairs_a | pairs_b, meta_a, cat)


def candset_intersection(a: Table, b: Table, catalog: Catalog | None = None) -> Table:
    """Pairs present in both candidate sets."""
    cat = catalog if catalog is not None else get_catalog()
    pairs_a, meta_a = _pair_set(a, cat)
    pairs_b, meta_b = _pair_set(b, cat)
    _check_same_bases(meta_a, meta_b)
    return _rebuild(pairs_a & pairs_b, meta_a, cat)


def candset_difference(a: Table, b: Table, catalog: Catalog | None = None) -> Table:
    """Pairs in ``a`` but not in ``b``."""
    cat = catalog if catalog is not None else get_catalog()
    pairs_a, meta_a = _pair_set(a, cat)
    pairs_b, meta_b = _pair_set(b, cat)
    _check_same_bases(meta_a, meta_b)
    return _rebuild(pairs_a - pairs_b, meta_a, cat)
