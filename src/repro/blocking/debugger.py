"""Blocking debugger: find likely matches that blocking dropped.

Table 3 of the paper lists the "blocking debugger" as one of the pain-point
tools.  Assessing a blocker's recall is hard because the dropped pairs are,
by construction, not in the output; the debugger searches A x B (via a
token inverted index, not enumeration) for pairs with high textual
similarity that are *absent* from the candidate set and surfaces the top-k
for the user to inspect.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.catalog.catalog import Catalog, get_catalog
from repro.catalog.checks import validate_candset
from repro.table.schema import is_missing
from repro.table.table import Table
from repro.text.tokenizers import WhitespaceTokenizer


def _concat_tokens(table: Table, key: str, attrs: list[str]) -> dict[Any, set[str]]:
    tokenizer = WhitespaceTokenizer(return_set=True)
    result: dict[Any, set[str]] = {}
    for row in table.rows():
        tokens: set[str] = set()
        for attr in attrs:
            value = row[attr]
            if not is_missing(value):
                tokens.update(t.lower() for t in tokenizer.tokenize(str(value)))
        result[row[key]] = tokens
    return result


def debug_blocker(
    candset: Table,
    output_size: int = 50,
    attr_corres: list[tuple[str, str]] | None = None,
    catalog: Catalog | None = None,
) -> Table:
    """Return the top likely-match pairs missing from the candidate set.

    Pairs are scored by Jaccard similarity of the whitespace tokens of
    their (corresponding) attributes concatenated; only pairs sharing at
    least one token are considered, found through an inverted index.
    The output table has ``l_id``, ``r_id``, ``similarity`` sorted by
    descending similarity.
    """
    cat = catalog if catalog is not None else get_catalog()
    meta = validate_candset(candset, cat)
    ltable, rtable = meta.ltable, meta.rtable
    l_key = cat.get_key(ltable)
    r_key = cat.get_key(rtable)
    if attr_corres is None:
        shared = [
            name
            for name in ltable.columns
            if name in set(rtable.columns) and name not in (l_key, r_key)
        ]
        attr_corres = [(name, name) for name in shared]
    l_attrs = [pair[0] for pair in attr_corres]
    r_attrs = [pair[1] for pair in attr_corres]

    in_candset = set(
        zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable))
    )
    l_tokens = _concat_tokens(ltable, l_key, l_attrs)
    r_tokens = _concat_tokens(rtable, r_key, r_attrs)

    index: dict[str, list[Any]] = defaultdict(list)
    for r_id, tokens in r_tokens.items():
        for token in tokens:
            index[token].append(r_id)

    scored: list[tuple[float, Any, Any]] = []
    for l_id, tokens in l_tokens.items():
        candidates: set[Any] = set()
        for token in tokens:
            candidates.update(index.get(token, ()))
        for r_id in candidates:
            if (l_id, r_id) in in_candset:
                continue
            other = r_tokens[r_id]
            union = len(tokens | other)
            similarity = len(tokens & other) / union if union else 0.0
            if similarity > 0.0:
                scored.append((similarity, l_id, r_id))
    scored.sort(key=lambda item: (-item[0], str(item[1]), str(item[2])))
    top = scored[:output_size]
    return Table(
        {
            "l_id": [l_id for _, l_id, _ in top],
            "r_id": [r_id for _, _, r_id in top],
            "similarity": [score for score, _, _ in top],
        }
    )


def blocking_recall(
    candset: Table,
    gold_pairs: set[tuple[Any, Any]],
    catalog: Catalog | None = None,
) -> float:
    """Fraction of gold matches that survived blocking.

    Available in benchmarks/tests where gold is known; the interactive
    debugger above is the no-gold production tool.
    """
    if not gold_pairs:
        return 1.0
    cat = catalog if catalog is not None else get_catalog()
    meta = validate_candset(candset, cat)
    survivors = set(
        zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable))
    )
    return len(gold_pairs & survivors) / len(gold_pairs)
