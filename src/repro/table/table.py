"""A lightweight column-oriented table: the ecosystem's pandas substitute.

Magellan deliberately stores data in *generic, well-known* structures
(pandas DataFrames) so that tools from different packages interoperate.
pandas is not available in this environment, so :class:`Table` plays the
same role: a plain relational table with named, heterogenous columns and no
EM-specific behaviour.  All EM metadata (keys, key-foreign-key constraints)
lives *outside* the table in :mod:`repro.catalog`, exactly as the paper
prescribes.

Values are ordinary Python objects; missing values are ``None``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.exceptions import KeyConstraintError, SchemaError

Row = dict[str, Any]


class Table:
    """A column-oriented table with named columns of equal length.

    Parameters
    ----------
    columns:
        Mapping of column name to a sequence of values.  All columns must
        have the same length.  Values are stored as plain Python lists.

    Examples
    --------
    >>> t = Table({"id": [1, 2], "name": ["Dave Smith", "Dan Smith"]})
    >>> t.num_rows
    2
    >>> t.row(0)["name"]
    'Dave Smith'
    """

    def __init__(self, columns: Mapping[str, Sequence[Any]] | None = None):
        self._columns: dict[str, list[Any]] = {}
        self._num_rows = 0
        if columns:
            lengths = {len(values) for values in columns.values()}
            if len(lengths) > 1:
                raise SchemaError(
                    f"columns have unequal lengths: "
                    f"{ {name: len(v) for name, v in columns.items()} }"
                )
            self._columns = {name: list(values) for name, values in columns.items()}
            self._num_rows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from an iterable of row dicts.

        If ``columns`` is omitted, the column order is taken from the first
        row; missing values in later rows become ``None``.
        """
        rows = list(rows)
        if columns is None:
            if not rows:
                return cls()
            columns = list(rows[0].keys())
        data: dict[str, list[Any]] = {name: [] for name in columns}
        for row in rows:
            for name in columns:
                data[name].append(row.get(name))
        return cls(data)

    def copy(self) -> "Table":
        """Return a deep-enough copy (new column lists, shared cell values)."""
        return Table({name: list(values) for name, values in self._columns.items()})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names, in insertion order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._columns == other._columns

    # Identity hashing: tables are mutable, but the catalog needs to key
    # metadata by table object (as Magellan keys its catalog by dataframe).
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return f"Table({self._num_rows} rows x {len(self._columns)} cols: {self.columns})"

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> list[Any]:
        """Return the values of one column (the live list; do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"no such column: {name!r}; have {self.columns}") from None

    def __getitem__(self, name: str) -> list[Any]:
        return self.column(name)

    def require_columns(self, names: Iterable[str]) -> None:
        """Raise :class:`SchemaError` unless every name is a column."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise SchemaError(f"missing columns {missing}; have {self.columns}")

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> Row:
        """Return row ``index`` as a dict (new dict each call)."""
        if not -self._num_rows <= index < self._num_rows:
            raise IndexError(f"row index {index} out of range for {self._num_rows} rows")
        return {name: values[index] for name, values in self._columns.items()}

    def rows(self) -> Iterator[Row]:
        """Iterate over rows as dicts."""
        for i in range(self._num_rows):
            yield self.row(i)

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def to_rows(self) -> list[Row]:
        """Materialize all rows as a list of dicts."""
        return list(self.rows())

    # ------------------------------------------------------------------
    # Mutation (returns self for chaining where cheap, new Table otherwise)
    # ------------------------------------------------------------------
    def add_column(self, name: str, values: Sequence[Any]) -> "Table":
        """Add (or replace) a column in place and return ``self``."""
        if self._columns and len(values) != self._num_rows:
            raise SchemaError(
                f"column {name!r} has {len(values)} values, table has {self._num_rows} rows"
            )
        self._columns[name] = list(values)
        if not self._num_rows:
            self._num_rows = len(values)
        return self

    def drop_columns(self, names: Iterable[str]) -> "Table":
        """Return a new table without the given columns."""
        drop = set(names)
        self.require_columns(drop)
        return Table({n: v for n, v in self._columns.items() if n not in drop})

    def rename_columns(self, mapping: Mapping[str, str]) -> "Table":
        """Return a new table with columns renamed per ``mapping``."""
        self.require_columns(mapping)
        return Table({mapping.get(n, n): v for n, v in self._columns.items()})

    def append_row(self, row: Mapping[str, Any]) -> "Table":
        """Append one row in place (missing columns become ``None``)."""
        if not self._columns:
            for name, value in row.items():
                self._columns[name] = [value]
            self._num_rows = 1
            return self
        for name, values in self._columns.items():
            values.append(row.get(name))
        self._num_rows += 1
        return self

    # ------------------------------------------------------------------
    # Relational operations (all return new tables)
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Table":
        """Return a new table with only the given columns, in that order."""
        self.require_columns(names)
        return Table({name: self._columns[name] for name in names})

    def select(self, predicate: Callable[[Row], bool]) -> "Table":
        """Return the rows for which ``predicate(row)`` is true."""
        keep = [i for i in range(self._num_rows) if predicate(self.row(i))]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table with the rows at the given positions."""
        return Table(
            {name: [values[i] for i in indices] for name, values in self._columns.items()}
        )

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(range(min(n, self._num_rows)))

    def sample(self, n: int, seed: int | None = None) -> "Table":
        """Return ``n`` rows sampled uniformly without replacement."""
        n = min(n, self._num_rows)
        rng = random.Random(seed)
        return self.take(sorted(rng.sample(range(self._num_rows), n)))

    def sort_by(self, name: str, reverse: bool = False) -> "Table":
        """Return a new table sorted by one column (None sorts first)."""
        values = self.column(name)
        order = sorted(
            range(self._num_rows),
            key=lambda i: (values[i] is not None, values[i]),
            reverse=reverse,
        )
        return self.take(order)

    def concat(self, other: "Table") -> "Table":
        """Stack another table with the same columns below this one."""
        if set(other.columns) != set(self.columns):
            raise SchemaError(
                f"cannot concat tables with different columns: "
                f"{self.columns} vs {other.columns}"
            )
        return Table(
            {name: self._columns[name] + other.column(name) for name in self.columns}
        )

    def unique_values(self, name: str) -> set[Any]:
        """Distinct values of one column (``None`` included if present)."""
        return set(self.column(name))

    # ------------------------------------------------------------------
    # Key handling
    # ------------------------------------------------------------------
    def validate_key(self, name: str) -> None:
        """Raise :class:`KeyConstraintError` unless ``name`` is a valid key.

        A valid key column has no ``None`` values and no duplicates.
        """
        values = self.column(name)
        if any(v is None for v in values):
            raise KeyConstraintError(f"key column {name!r} contains missing values")
        if len(set(values)) != len(values):
            raise KeyConstraintError(f"key column {name!r} contains duplicates")

    def index_by(self, name: str) -> dict[Any, Row]:
        """Return a mapping from key value to row dict.

        The column must be a valid key (validated before indexing).
        """
        self.validate_key(name)
        return {row[name]: row for row in self.rows()}
