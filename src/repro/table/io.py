"""CSV input/output for tables, with an optional metadata sidecar.

Mirrors PyMatcher's ``read_csv_metadata`` / ``to_csv_metadata``: the table
itself is a plain CSV file (readable by any tool — interoperability), while
EM metadata (key, foreign keys) is stored in a small sidecar file and loaded
into the :mod:`repro.catalog` on read.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.catalog import catalog as _catalog_module
from repro.table.table import Table

_SIDECAR_SUFFIX = ".metadata.json"


def _parse_cell(text: str) -> Any:
    """Parse a CSV cell: '' -> None, then int, then float, else str.

    Leading-zero digit strings (ZIP codes, product codes) stay strings —
    parsing '01234' as 1234 would silently corrupt identifiers.
    """
    if text == "":
        return None
    stripped = text.lstrip("+-")
    if len(stripped) > 1 and stripped[0] == "0" and stripped.isdigit():
        return text
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _render_cell(value: Any) -> str:
    if value is None:
        return ""
    return str(value)


def read_csv(path: str | Path) -> Table:
    """Read a CSV file (with header row) into a :class:`Table`."""
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Table()
        data: dict[str, list[Any]] = {name: [] for name in header}
        for record in reader:
            for name, cell in zip(header, record):
                data[name].append(_parse_cell(cell))
    return Table(data)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        for row in table.rows():
            writer.writerow([_render_cell(row[name]) for name in table.columns])


def read_csv_metadata(
    path: str | Path,
    key: str | None = None,
    catalog: "_catalog_module.Catalog | None" = None,
) -> Table:
    """Read a CSV file and register its metadata in the catalog.

    Metadata comes from, in priority order: the ``key`` argument, then the
    sidecar file ``<path>.metadata.json`` if present.  The key is validated
    before registration — a self-containment check.
    """
    table = read_csv(path)
    cat = catalog if catalog is not None else _catalog_module.get_catalog()
    sidecar = Path(str(path) + _SIDECAR_SUFFIX)
    if key is None and sidecar.exists():
        meta = json.loads(sidecar.read_text(encoding="utf-8"))
        key = meta.get("key")
    if key is not None:
        cat.set_key(table, key)
    return table


def write_csv_metadata(
    table: Table,
    path: str | Path,
    catalog: "_catalog_module.Catalog | None" = None,
) -> None:
    """Write a table to CSV and its catalog metadata to a sidecar file."""
    write_csv(table, path)
    cat = catalog if catalog is not None else _catalog_module.get_catalog()
    meta: dict[str, Any] = {}
    key = cat.get_key(table, default=None)
    if key is not None:
        meta["key"] = key
    if meta:
        sidecar = Path(str(path) + _SIDECAR_SUFFIX)
        sidecar.write_text(json.dumps(meta, indent=2), encoding="utf-8")
