"""Table substrate: a lightweight column-oriented relational table.

This package is the ecosystem's stand-in for pandas: a generic tabular
data structure shared by every tool, with all EM metadata kept outside of
it (in :mod:`repro.catalog`).
"""

from repro.table.io import (
    read_csv,
    read_csv_metadata,
    write_csv,
    write_csv_metadata,
)
from repro.table.schema import (
    ColumnType,
    infer_column_type,
    infer_schema,
    infer_value_type,
    is_missing,
)
from repro.table.table import Row, Table

__all__ = [
    "ColumnType",
    "Row",
    "Table",
    "infer_column_type",
    "infer_schema",
    "infer_value_type",
    "is_missing",
    "read_csv",
    "read_csv_metadata",
    "write_csv",
    "write_csv_metadata",
]
