"""Column type inference for the table substrate.

Feature generation (``repro.features``) decides which tokenizers and
similarity measures apply to an attribute pair based on the inferred type
of each attribute: numeric, boolean, short string (1 word), medium string
(1-5 words), or long string / textual.  This module implements that
inference over :class:`repro.table.Table` columns.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

from repro.table.table import Table


class ColumnType(Enum):
    """Semantic type of a column, used to drive feature generation."""

    NUMERIC = "numeric"
    BOOLEAN = "boolean"
    SHORT_STRING = "short_string"  # about one word, e.g. a state code
    MEDIUM_STRING = "medium_string"  # a few words, e.g. a person name
    LONG_STRING = "long_string"  # free text, e.g. a product description
    UNKNOWN = "unknown"  # all missing, or mixed beyond recognition


# Above this average word count a string column is considered free text.
_LONG_STRING_WORDS = 6.0
# At or below this average word count a string column is a single token.
_SHORT_STRING_WORDS = 1.0


def is_missing(value: Any) -> bool:
    """True for the ecosystem's missing-value markers (None, NaN, '')."""
    if value is None:
        return True
    if isinstance(value, float) and value != value:  # NaN
        return True
    if isinstance(value, str) and not value.strip():
        return True
    return False


def infer_value_type(value: Any) -> ColumnType:
    """Infer the type of a single non-missing value."""
    if isinstance(value, bool):
        return ColumnType.BOOLEAN
    if isinstance(value, (int, float)):
        return ColumnType.NUMERIC
    if isinstance(value, str):
        words = len(value.split())
        if words <= _SHORT_STRING_WORDS:
            return ColumnType.SHORT_STRING
        if words <= _LONG_STRING_WORDS:
            return ColumnType.MEDIUM_STRING
        return ColumnType.LONG_STRING
    return ColumnType.UNKNOWN


def infer_column_type(values: list[Any]) -> ColumnType:
    """Infer a column's type from its values.

    Strings are classified by *average* word count; a column mixing numbers
    and strings is treated as string-typed (numbers are rendered to text by
    feature extraction), and an all-missing column is ``UNKNOWN``.
    """
    present = [v for v in values if not is_missing(v)]
    if not present:
        return ColumnType.UNKNOWN
    if all(isinstance(v, bool) for v in present):
        return ColumnType.BOOLEAN
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in present):
        return ColumnType.NUMERIC
    word_counts = [len(str(v).split()) for v in present]
    mean_words = sum(word_counts) / len(word_counts)
    if mean_words <= _SHORT_STRING_WORDS:
        return ColumnType.SHORT_STRING
    if mean_words <= _LONG_STRING_WORDS:
        return ColumnType.MEDIUM_STRING
    return ColumnType.LONG_STRING


def infer_schema(table: Table) -> dict[str, ColumnType]:
    """Infer the type of every column in ``table``."""
    return {name: infer_column_type(table.column(name)) for name in table.columns}
