"""Schema matching: attribute-correspondence discovery between tables."""

from repro.schema_matching.matcher import (
    Correspondence,
    match_schemas,
    name_similarity,
    suggest_attr_corres,
    types_compatible,
    value_similarity,
)

__all__ = [
    "Correspondence",
    "match_schemas",
    "name_similarity",
    "suggest_attr_corres",
    "types_compatible",
    "value_similarity",
]
