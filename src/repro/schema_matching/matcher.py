"""Schema matching: the Magellan template applied to a sibling DI task.

Section 7: "we plan to apply the Magellan system building template to
other data integration problems, such as schema matching".  This package
is that extension in miniature — an interoperable tool that proposes
attribute correspondences between two tables whose columns are named
differently, combining:

* **name similarity** — Jaro-Winkler over normalized column names;
* **value-distribution similarity** — Jaccard overlap of the columns'
  token sets, so ``addr`` still matches ``street_address`` when their
  contents agree;
* **type compatibility** — inferred column types must not conflict.

The output plugs straight into feature generation:
:func:`suggest_attr_corres` returns the ``attr_corres`` list that
:func:`repro.features.get_features_for_matching` accepts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.postprocess.clustering import enforce_one_to_one
from repro.table.schema import ColumnType, infer_column_type, is_missing
from repro.table.table import Table
from repro.text.sim.edit_based import JaroWinkler
from repro.text.tokenizers import WhitespaceTokenizer

_NUMERICISH = {ColumnType.NUMERIC, ColumnType.BOOLEAN}


def _normalize_name(name: str) -> str:
    """Lowercase and split camelCase/snake_case into space-joined words."""
    name = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    name = re.sub(r"[_\-\.]+", " ", name)
    return " ".join(name.lower().split())


def _column_tokens(table: Table, column: str, limit: int = 500) -> set[str]:
    tokenizer = WhitespaceTokenizer(return_set=True)
    tokens: set[str] = set()
    for value in table.column(column)[:limit]:
        if not is_missing(value):
            tokens.update(t.lower() for t in tokenizer.tokenize(str(value)))
    return tokens


def name_similarity(left: str, right: str) -> float:
    """Similarity of two column names.

    The max of Jaro-Winkler over the normalized names (catches typos and
    shared prefixes) and the overlap coefficient over their words (catches
    containment like ``full_name`` vs ``name``, where character-level
    measures fail).
    """
    left_norm = _normalize_name(left)
    right_norm = _normalize_name(right)
    character_level = JaroWinkler().get_raw_score(left_norm, right_norm)
    left_words = set(left_norm.split())
    right_words = set(right_norm.split())
    if left_words and right_words:
        word_level = len(left_words & right_words) / min(
            len(left_words), len(right_words)
        )
    else:
        word_level = 0.0
    return max(character_level, word_level)


def value_similarity(
    ltable: Table, l_column: str, rtable: Table, r_column: str
) -> float:
    """Jaccard overlap of the two columns' value-token sets."""
    left = _column_tokens(ltable, l_column)
    right = _column_tokens(rtable, r_column)
    if not left and not right:
        return 0.0
    union = len(left | right)
    return len(left & right) / union if union else 0.0


def types_compatible(left: ColumnType, right: ColumnType) -> bool:
    """Numeric-ish columns only pair with numeric-ish columns."""
    if ColumnType.UNKNOWN in (left, right):
        return True
    return (left in _NUMERICISH) == (right in _NUMERICISH)


@dataclass(frozen=True)
class Correspondence:
    """One proposed attribute correspondence."""

    l_column: str
    r_column: str
    score: float
    name_score: float
    value_score: float


def match_schemas(
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
    name_weight: float = 0.5,
    threshold: float = 0.5,
) -> list[Correspondence]:
    """Propose a one-to-one attribute correspondence between two tables.

    Every non-key column pair is scored
    ``name_weight * name_sim + (1 - name_weight) * value_sim`` (type-
    incompatible pairs score 0); a greedy one-to-one assignment keeps the
    best pairs above ``threshold``, highest score first.
    """
    if not 0.0 <= name_weight <= 1.0:
        raise ConfigurationError(f"name_weight must be in [0, 1], got {name_weight}")
    l_columns = [c for c in ltable.columns if c != l_key]
    r_columns = [c for c in rtable.columns if c != r_key]
    l_types = {c: infer_column_type(ltable.column(c)) for c in l_columns}
    r_types = {c: infer_column_type(rtable.column(c)) for c in r_columns}

    scored: list[tuple[str, str, float]] = []
    details: dict[tuple[str, str], tuple[float, float]] = {}
    for l_column in l_columns:
        for r_column in r_columns:
            if not types_compatible(l_types[l_column], r_types[r_column]):
                continue
            n_score = name_similarity(l_column, r_column)
            v_score = value_similarity(ltable, l_column, rtable, r_column)
            score = name_weight * n_score + (1.0 - name_weight) * v_score
            if score >= threshold:
                scored.append((l_column, r_column, score))
                details[(l_column, r_column)] = (n_score, v_score)

    kept = enforce_one_to_one(scored)
    result = [
        Correspondence(l, r, score, *details[(l, r)])
        for l, r, score in scored
        if (l, r) in kept
    ]
    result.sort(key=lambda c: -c.score)
    return result


def suggest_attr_corres(
    ltable: Table,
    rtable: Table,
    l_key: str = "id",
    r_key: str = "id",
    threshold: float = 0.5,
) -> list[tuple[str, str]]:
    """The ``attr_corres`` list for feature generation, from schema matching."""
    return [
        (c.l_column, c.r_column)
        for c in match_schemas(ltable, rtable, l_key, r_key, threshold=threshold)
    ]
