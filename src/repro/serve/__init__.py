"""repro.serve — the online match-serving layer.

The paper's production agenda ("how to match many tables, for many
users, at scale") as a resident service: a :class:`MatchServer` loads
the :class:`repro.index.IndexStore` artifact chain for a corpus once at
startup and answers ``match(entity) -> ranked candidates`` point
queries for the life of the process.  Concurrent requests coalesce
through a micro-batching queue onto the same columnar filter-verify
kernel the batch joins run (:func:`repro.simjoin.probe_encoded`), with
per-tenant in-flight quotas, queue-depth backpressure, and p50/p99
latency histograms from :mod:`repro.obs`.

See ``benchmarks/bench_serving.py`` for the sustained-qps benchmark and
the ``repro serve`` CLI subcommand for the stdin/file query loop.
"""

from repro.serve.server import (
    MatchResult,
    MatchServer,
    PendingMatch,
    ServeConfig,
)

__all__ = [
    "MatchResult",
    "MatchServer",
    "PendingMatch",
    "ServeConfig",
]
