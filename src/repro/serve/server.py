"""The resident match server: point queries against a live corpus index.

A :class:`MatchServer` is the online half of the batch substrate.  At
startup it builds a :class:`repro.index.LiveIndex` over one corpus
column — the base segment is the :class:`repro.index.IndexStore`
artifact chain (records → token sets → a corpus
:class:`~repro.perf.tokens.TokenUniverse` → prefix postings and
verification masks), built exactly once and shared by fingerprint with
any batch join over the same content — then answers ``match(entity)``
point queries for as long as the process lives.  Queries are tokenized,
encoded against the live token ordering (out-of-vocabulary tokens are
dropped losslessly), and probed through
:func:`repro.simjoin.probe_encoded` — the same filter-verify kernel the
batch join runs — so a served result is byte-identical to the matching
rows of ``set_sim_join(queries, corpus, ...)``.

Because the index is live, the corpus is no longer frozen at startup:
:meth:`MatchServer.upsert` and :meth:`MatchServer.delete` mutate the
delta segment, every query admitted afterwards sees the change, and
:meth:`MatchServer.compact` folds the delta into a fresh base without
blocking readers (the rebuild runs outside the index lock; see
:mod:`repro.index.delta`).

Request flow, modeled on the cloud metamanager's engine/queue scheduler
(:mod:`repro.cloud.engines`) translated from simulated to wall-clock
time:

* **admission** — a request is rejected *before* queuing when the queue
  is at ``max_queue_depth`` (:class:`BackpressureError`) or its tenant
  is at its in-flight quota (:class:`QuotaExceededError`); rejections
  are counted in ``serve_rejections_total{reason,tenant}``;
* **micro-batching** — worker threads drain the queue in batches of up
  to ``max_batch``, optionally lingering ``batch_linger_s`` so
  concurrent callers coalesce onto one pass over the shared index;
* **observability** — ``serve_request_seconds`` (queue wait + service)
  and ``serve_batch_size`` histograms, the ``serve_queue_depth`` gauge,
  and per-tenant request/rejection counters, all on the process
  registry, with p50/p99 summaries via :meth:`Histogram.quantile` in
  :meth:`MatchServer.stats`.

The server's shared state is only safe because of the thread-safety
contracts underneath it: the IndexStore's locked memory tier, the
registry's atomic counters, and the tracer's atomic span ids.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import (
    BackpressureError,
    ConfigurationError,
    QuotaExceededError,
    ServiceError,
)
from repro.index.delta import LiveIndex
from repro.index.store import IndexStore, get_index_store
from repro.obs import get_registry, trace_span
from repro.simjoin.filters import validate_measure
from repro.simjoin.joins import KERNELS
from repro.table.table import Table
from repro.text.tokenizers import Tokenizer, WhitespaceTokenizer


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for a :class:`MatchServer`.

    ``workers=0`` starts no threads: requests queue on :meth:`submit`
    and are served synchronously by :meth:`MatchServer.process_pending`
    — the deterministic mode used by tests and single-threaded
    embeddings.  ``tenant_quotas`` maps tenant name to its max in-flight
    requests; tenants not listed get ``default_tenant_quota`` (``None``
    means unlimited).
    """

    measure: str = "jaccard"
    threshold: float = 0.7
    kernel: str = "auto"
    top_k: int | None = 10
    max_batch: int = 64
    batch_linger_s: float = 0.0005
    max_queue_depth: int = 256
    default_tenant_quota: int | None = 64
    tenant_quotas: dict[str, int] = field(default_factory=dict)
    workers: int = 1

    def quota(self, tenant: str) -> int | None:
        return self.tenant_quotas.get(tenant, self.default_tenant_quota)


@dataclass
class MatchResult:
    """Ranked candidates for one served query.

    ``candidates`` holds ``(corpus key, score)`` pairs ranked by
    descending score, ties broken by corpus position — the scores are
    bit-identical to the batch join's.  ``seconds`` is the request's
    full latency (queue wait + service); ``batch_size`` is how many
    requests shared its micro-batch.
    """

    query: Any
    tenant: str
    candidates: list[tuple[Any, float]]
    n_candidates: int = 0
    seconds: float = 0.0
    batch_size: int = 1


class _Request:
    __slots__ = ("value", "tenant", "top_k", "enqueued", "done", "result", "error")

    def __init__(self, value: Any, tenant: str, top_k: int | None):
        self.value = value
        self.tenant = tenant
        self.top_k = top_k
        self.enqueued = time.perf_counter()
        self.done = threading.Event()
        self.result: MatchResult | None = None
        self.error: BaseException | None = None


class PendingMatch:
    """Future-like handle for a submitted query."""

    def __init__(self, request: _Request):
        self._request = request

    def result(self, timeout: float | None = None) -> MatchResult:
        """Block until the request is served; raises what the server raised."""
        if not self._request.done.wait(timeout):
            raise TimeoutError(
                f"match request for {self._request.value!r} not served in {timeout}s"
            )
        if self._request.error is not None:
            raise self._request.error
        return self._request.result


class MatchServer:
    """Long-lived ``match(entity) -> ranked candidates`` service.

    Usage::

        server = MatchServer(corpus, key="id", column="name",
                             config=ServeConfig(threshold=0.4))
        with server:                      # start() .. stop()
            result = server.match("dave smith", tenant="alice")
            for r_id, score in result.candidates:
                ...

    One server serves one ``(corpus, column, tokenizer, measure,
    threshold)`` configuration; run several servers over one shared
    :class:`IndexStore` to multiplex corpora — artifacts dedupe by
    content fingerprint.
    """

    def __init__(
        self,
        corpus: Table,
        key: str,
        column: str,
        tokenizer: Tokenizer | None = None,
        config: ServeConfig | None = None,
        store: IndexStore | None = None,
    ):
        self.config = config if config is not None else ServeConfig()
        measure = validate_measure(self.config.measure)
        threshold = self.config.threshold
        if measure != "overlap" and not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold for {measure} must be in (0, 1], got {threshold}"
            )
        if measure == "overlap" and threshold < 1:
            raise ConfigurationError(f"overlap threshold must be >= 1, got {threshold}")
        if self.config.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}, got {self.config.kernel!r}"
            )
        corpus.require_columns([key, column])
        self.corpus = corpus
        self.key = key
        self.column = column
        self.tokenizer = (
            tokenizer if tokenizer is not None else WhitespaceTokenizer(return_set=True)
        )
        self._measure = measure
        self._store = store if store is not None else get_index_store()

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._inflight: dict[str, int] = {}
        self._threads: list[threading.Thread] = []
        self._running = False
        self._stopping = False
        self._live: LiveIndex | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MatchServer":
        """Load the corpus index artifacts and start the worker threads."""
        if self._running:
            raise ServiceError("MatchServer is already running")
        registry = get_registry()
        with trace_span("serve_warmup", column=self.column, measure=self._measure):
            with registry.timer("serve_warmup_seconds"):
                self._load_artifacts()
        self._stopping = False
        self._running = True
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"match-serve-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _load_artifacts(self) -> None:
        """Build the live index whose base segment covers the corpus.

        The base artifacts come from the shared :class:`IndexStore`
        chain (the corpus self-paired through ``pair_encoding(tc, tc)``,
        which preserves the frequency-then-lexical ranking), so a batch
        self-join over the same corpus content shares them
        byte-for-byte.
        """
        self._live = LiveIndex.from_table(
            self.corpus,
            self.key,
            self.column,
            tokenizer=self.tokenizer,
            measure=self._measure,
            threshold=self.config.threshold,
            kernel=self.config.kernel,
            store=self._store,
            name=f"serve-{self.column}",
        )

    def stop(self) -> None:
        """Drain the queue, stop the workers, and refuse new requests."""
        with self._lock:
            if not self._running:
                return
            self._stopping = True
            self._not_empty.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        if self.config.workers == 0:
            self.process_pending()
        with self._lock:
            self._running = False
            # Anything still queued (stop raced an admission) fails fast
            # rather than hanging its caller forever.
            while self._queue:
                request = self._queue.popleft()
                request.error = ServiceError("MatchServer stopped before serving")
                request.done.set()

    def __enter__(self) -> "MatchServer":
        if not self._running:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self, value: Any, tenant: str = "default", top_k: int | None = None
    ) -> PendingMatch:
        """Admit one query; returns a handle to wait on.

        Raises :class:`BackpressureError` (queue full) or
        :class:`QuotaExceededError` (tenant at its in-flight quota)
        *before* queuing — a rejected request did no work.
        """
        registry = get_registry()
        request = _Request(value, tenant, top_k if top_k is not None else self.config.top_k)
        with self._lock:
            if not self._running or self._stopping:
                raise ServiceError("MatchServer is not running")
            if len(self._queue) >= self.config.max_queue_depth:
                registry.counter(
                    "serve_rejections_total", reason="backpressure", tenant=tenant
                ).inc()
                raise BackpressureError(
                    f"serving queue at capacity ({self.config.max_queue_depth})"
                )
            quota = self.config.quota(tenant)
            inflight = self._inflight.get(tenant, 0)
            if quota is not None and inflight >= quota:
                registry.counter(
                    "serve_rejections_total", reason="quota", tenant=tenant
                ).inc()
                raise QuotaExceededError(
                    f"tenant {tenant!r} at its in-flight quota ({quota})"
                )
            self._inflight[tenant] = inflight + 1
            self._queue.append(request)
            registry.gauge("serve_queue_depth").set(len(self._queue))
            self._not_empty.notify()
        return PendingMatch(request)

    def match(
        self,
        value: Any,
        tenant: str = "default",
        top_k: int | None = None,
        timeout: float | None = None,
    ) -> MatchResult:
        """Submit one query and block until its ranked candidates arrive."""
        return self.submit(value, tenant, top_k).result(timeout)

    # ------------------------------------------------------------------
    # Batch workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._process_batch(batch)

    def _take_batch(self) -> list[_Request] | None:
        config = self.config
        with self._not_empty:
            while not self._queue and not self._stopping:
                self._not_empty.wait()
            if not self._queue:
                return None  # stopping and drained
            if (
                config.batch_linger_s > 0
                and len(self._queue) < config.max_batch
                and not self._stopping
            ):
                # Linger briefly so a burst of concurrent callers lands
                # in one batch instead of one batch per request.
                self._not_empty.wait(config.batch_linger_s)
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), config.max_batch))
            ]
            get_registry().gauge("serve_queue_depth").set(len(self._queue))
        return batch

    def process_pending(self) -> int:
        """Serve everything queued right now on the calling thread.

        The synchronous drain used with ``workers=0``; returns the
        number of requests served.
        """
        with self._lock:
            batch = list(self._queue)
            self._queue.clear()
            get_registry().gauge("serve_queue_depth").set(0)
        served = 0
        while batch:
            self._process_batch(batch[: self.config.max_batch])
            served += len(batch[: self.config.max_batch])
            batch = batch[self.config.max_batch :]
        return served

    def _process_batch(self, batch: list[_Request]) -> None:
        registry = get_registry()
        registry.histogram("serve_batch_size", buckets=(1, 2, 4, 8, 16, 32, 64, 128)).observe(
            len(batch)
        )
        registry.counter("serve_batches_total").inc()
        with trace_span("serve_batch", size=len(batch)):
            # One batched kernel call for the whole micro-batch: this is
            # the payoff of the batching queue — the base segment is
            # probed once, columnar, for every request in the batch.
            # Per-request error isolation is preserved by falling back
            # to the scalar per-request path if the batched call fails.
            searched = None
            if len(batch) > 1:
                try:
                    searched = self._live.search_batch(
                        [request.value for request in batch]
                    )
                except Exception:
                    searched = None
            for position, request in enumerate(batch):
                try:
                    if searched is not None:
                        matches, n_candidates = searched[position]
                        candidates, n_candidates = self._rank(
                            matches, n_candidates, request.top_k
                        )
                    else:
                        candidates, n_candidates = self._match_one(
                            request.value, request.top_k
                        )
                    request.result = MatchResult(
                        query=request.value,
                        tenant=request.tenant,
                        candidates=candidates,
                        n_candidates=n_candidates,
                        seconds=time.perf_counter() - request.enqueued,
                        batch_size=len(batch),
                    )
                except BaseException as exc:
                    request.error = exc
                finally:
                    registry.histogram("serve_request_seconds").observe(
                        time.perf_counter() - request.enqueued
                    )
                    registry.counter("serve_requests_total", tenant=request.tenant).inc()
                    with self._lock:
                        self._inflight[request.tenant] -= 1
                    request.done.set()

    def _match_one(
        self, value: Any, top_k: int | None
    ) -> tuple[list[tuple[Any, float]], int]:
        """One point query through the shared filter-verify kernel."""
        matches, n_candidates = self._live.search(value)
        return self._rank(matches, n_candidates, top_k)

    def _rank(
        self,
        matches: list[tuple[Any, float]],
        n_candidates: int,
        top_k: int | None,
    ) -> tuple[list[tuple[Any, float]], int]:
        get_registry().counter("serve_candidates_total").inc(n_candidates)
        # The live index emits survivors in canonical record order; a
        # stable sort on descending score keeps that order among ties,
        # so the ranking is fully deterministic.
        ranked = sorted(matches, key=lambda pair: -pair[1])
        if top_k is not None:
            ranked = ranked[:top_k]
        return ranked, n_candidates

    # ------------------------------------------------------------------
    # Live mutation
    # ------------------------------------------------------------------
    def upsert(self, row_key: Any, value: Any, tenant: str = "default") -> bool:
        """Insert or replace one corpus record in the live index.

        Every query admitted after this call returns sees the new
        record — no restart, no rebuild.  Returns whether the record was
        indexed (a missing value degenerates to a delete).
        """
        registry = get_registry()
        with self._lock:
            if not self._running or self._stopping:
                raise ServiceError("MatchServer is not running")
        registry.counter("serve_upserts_total", tenant=tenant).inc()
        return self._live.upsert(row_key, value)

    def upsert_many(self, items, tenant: str = "default") -> int:
        """Bulk :meth:`upsert` through the live index's batched path.

        ``items`` is an iterable of ``(row_key, value)``; the index
        state afterwards is identical to upserting them one at a time
        (sequential semantics), but delta postings merge once per batch.
        Returns the number of records indexed.
        """
        registry = get_registry()
        with self._lock:
            if not self._running or self._stopping:
                raise ServiceError("MatchServer is not running")
        items = list(items)
        registry.counter("serve_upserts_total", tenant=tenant).inc(len(items))
        return self._live.upsert_many(items)

    def delete(self, row_key: Any, tenant: str = "default") -> bool:
        """Tombstone one corpus record; returns whether it was present."""
        registry = get_registry()
        with self._lock:
            if not self._running or self._stopping:
                raise ServiceError("MatchServer is not running")
        registry.counter("serve_deletes_total", tenant=tenant).inc()
        return self._live.delete(row_key)

    def delete_many(self, row_keys, tenant: str = "default") -> int:
        """Bulk :meth:`delete` under one index lock; returns how many existed."""
        registry = get_registry()
        with self._lock:
            if not self._running or self._stopping:
                raise ServiceError("MatchServer is not running")
        row_keys = list(row_keys)
        registry.counter("serve_deletes_total", tenant=tenant).inc(len(row_keys))
        return self._live.delete_many(row_keys)

    def compact(self) -> dict[str, Any]:
        """Fold the live index's delta into a new base segment.

        The expensive rebuild runs outside the index lock, so queries
        (and further upserts) proceed concurrently; only the final swap
        synchronizes.  Returns the post-compaction index stats.
        """
        if self._live is None:
            raise ServiceError("MatchServer has not been started")
        return self._live.compact()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Point-in-time serving stats: depth, totals, p50/p99 latency."""
        registry = get_registry()
        latency = registry.histogram("serve_request_seconds")
        with self._lock:
            queue_depth = len(self._queue)
            inflight = {t: n for t, n in self._inflight.items() if n}
        rejections = sum(
            value
            for (name, _), value in registry.counters().items()
            if name == "serve_rejections_total"
        )
        requests = sum(
            value
            for (name, _), value in registry.counters().items()
            if name == "serve_requests_total"
        )
        index_stats = self._live.stats() if self._live is not None else {}
        return {
            "running": self._running,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "corpus_rows": index_stats.get("live_rows", 0),
            "universe_size": index_stats.get("universe_size", 0),
            "generation": index_stats.get("generation", 0),
            "delta_rows": index_stats.get("delta_rows", 0),
            "tombstones": index_stats.get("tombstones", 0),
            "compactions": index_stats.get("compactions", 0),
            "requests_total": requests,
            "rejections_total": rejections,
            "latency_p50_s": latency.quantile(0.5),
            "latency_p99_s": latency.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return (
            f"<MatchServer {state} column={self.column!r} "
            f"measure={self._measure} threshold={self.config.threshold}>"
        )
