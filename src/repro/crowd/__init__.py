"""Simulated crowdsourcing substrate (the Mechanical Turk substitute)."""

from repro.crowd.workers import CrowdLabeler, CrowdWorker

__all__ = ["CrowdLabeler", "CrowdWorker"]
