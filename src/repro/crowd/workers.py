"""Simulated crowdsourcing: worker pools, aggregation, cost, latency.

CloudMatcher lets a task owner hand labeling to Mechanical Turk workers;
Table 2 reports the resulting dollar cost ($72–$91 in the paper) and the
wall-clock completion time (22h–36h, dominated by Turk's queueing, not by
active labeling).  This package replaces Turk with a deterministic
simulation: a pool of workers with individual accuracies, plurality
aggregation over ``replication`` assignments per question, a per-
assignment price, and a latency model with a large queueing component.
"""

from __future__ import annotations

import random

from repro.exceptions import ConfigurationError
from repro.labeling.oracle import MATCH, NO_MATCH, BaseLabeler, Pair


class CrowdWorker:
    """One simulated worker answering with fixed accuracy."""

    def __init__(self, worker_id: int, accuracy: float, rng: random.Random):
        if not 0.0 <= accuracy <= 1.0:
            raise ConfigurationError(f"accuracy must be in [0, 1], got {accuracy}")
        self.worker_id = worker_id
        self.accuracy = accuracy
        self._rng = rng
        self.answers_given = 0

    def answer(self, true_label: int) -> int:
        """Answer one question given its true label."""
        self.answers_given += 1
        if self._rng.random() < self.accuracy:
            return true_label
        return MATCH if true_label == NO_MATCH else NO_MATCH


class CrowdLabeler(BaseLabeler):
    """A Turk-like labeler: replicated questions, majority vote, cost.

    Parameters
    ----------
    gold_pairs:
        Ground truth used to generate worker answers.
    n_workers, worker_accuracy:
        Pool size and mean worker accuracy (individual accuracies are
        jittered +-5%).
    replication:
        Assignments per question (odd values avoid ties).
    price_per_assignment:
        Dollars paid per answered assignment (Turk-style).
    mean_latency_seconds:
        Mean per-question wall-clock latency including queueing; total
        elapsed time is modelled as questions executing in batches of
        ``parallelism``.
    """

    def __init__(
        self,
        gold_pairs: set[Pair],
        n_workers: int = 20,
        worker_accuracy: float = 0.93,
        replication: int = 3,
        price_per_assignment: float = 0.02,
        mean_latency_seconds: float = 90.0,
        parallelism: int = 4,
        seed: int | None = None,
    ):
        super().__init__(seconds_per_label=0.0)
        if replication < 1:
            raise ConfigurationError(f"replication must be >= 1, got {replication}")
        if n_workers < replication:
            raise ConfigurationError("need at least `replication` workers")
        self.gold_pairs = set(gold_pairs)
        self.replication = replication
        self.price_per_assignment = price_per_assignment
        self.mean_latency_seconds = mean_latency_seconds
        self.parallelism = parallelism
        self._rng = random.Random(seed)
        self.workers = [
            CrowdWorker(
                i,
                min(1.0, max(0.0, worker_accuracy + self._rng.uniform(-0.05, 0.05))),
                self._rng,
            )
            for i in range(n_workers)
        ]
        self.assignments = 0
        self._elapsed_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def dollar_cost(self) -> float:
        """Total crowd spend so far."""
        return self.assignments * self.price_per_assignment

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall-clock time the crowd has taken."""
        return self._elapsed_seconds

    # Labeling time for the crowd IS the elapsed wall clock.
    @property
    def labeling_seconds(self) -> float:  # type: ignore[override]
        return self._elapsed_seconds

    def label(self, pair: Pair) -> int:
        """Ask the crowd one question; majority vote of `replication` workers."""
        self.questions_asked += 1
        true_label = MATCH if tuple(pair) in self.gold_pairs else NO_MATCH
        panel = self._rng.sample(self.workers, self.replication)
        votes = sum(worker.answer(true_label) for worker in panel)
        self.assignments += self.replication
        # Latency: questions run `parallelism` at a time.
        latency = self._rng.expovariate(1.0 / self.mean_latency_seconds)
        self._elapsed_seconds += latency / self.parallelism
        return MATCH if votes * 2 > self.replication else NO_MATCH
