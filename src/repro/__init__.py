"""repro: a reproduction of the Magellan entity-matching ecosystem.

The package mirrors the paper's architecture: generic substrates
(``table``, ``catalog``, ``text``, ``simjoin``, ``ml``) underneath the EM
layers (``sampling``, ``blocking``, ``features``, ``matchers``,
``labeling``), with the two system thrusts on top: PyMatcher-style
workflows (``pipeline``) and the self-service CloudMatcher/Falcon stack
(``falcon``, ``smurf``, ``crowd``, ``cloud``).

Quick tour::

    from repro.datasets import make_em_dataset
    from repro.blocking import OverlapBlocker
    from repro.features import get_features_for_matching, extract_feature_vecs
    from repro.matchers import RFMatcher, select_matcher

See ``examples/quickstart.py`` for the end-to-end guide workflow.
"""

from repro.exceptions import (
    BackpressureError,
    BudgetExhaustedError,
    CatalogError,
    ConfigurationError,
    ForeignKeyConstraintError,
    KeyConstraintError,
    LabelingError,
    NotFittedError,
    QuotaExceededError,
    ReproError,
    SchemaError,
    ServiceError,
    WorkflowError,
)
from repro.table.table import Table

__version__ = "1.0.0"

__all__ = [
    "BackpressureError",
    "BudgetExhaustedError",
    "CatalogError",
    "ConfigurationError",
    "ForeignKeyConstraintError",
    "KeyConstraintError",
    "LabelingError",
    "NotFittedError",
    "QuotaExceededError",
    "ReproError",
    "SchemaError",
    "ServiceError",
    "Table",
    "WorkflowError",
    "__version__",
]
