"""Labelers: simulated sources of match/no-match labels.

The paper's systems obtain labels from a single user (PyMatcher's labeler
GUI, CloudMatcher's web UI) or from Mechanical Turk crowd workers.  This
module simulates both against a known gold standard:

* :class:`OracleLabeler` — a perfect or noisy single user, with a
  labeling-time model (so benchmarks can report Table 2's "User time");
* :class:`UncertainOracleLabeler` — a user who is *uncertain* on hard
  pairs (the AmFam "Vehicles" story: the expert mislabels systematically
  when the data is too incomplete to decide).

All labelers count their questions; Table 2's "Questions" column is read
off these counters.
"""

from __future__ import annotations

import random
from typing import Any

Pair = tuple[Any, Any]

MATCH = 1
NO_MATCH = 0


class BaseLabeler:
    """Counts questions and accumulates simulated labeling time."""

    def __init__(self, seconds_per_label: float = 6.0):
        self.seconds_per_label = seconds_per_label
        self.questions_asked = 0

    @property
    def labeling_seconds(self) -> float:
        """Total simulated human labeling time."""
        return self.questions_asked * self.seconds_per_label

    def label(self, pair: Pair) -> int:
        raise NotImplementedError

    def reset_counters(self) -> None:
        self.questions_asked = 0


class OracleLabeler(BaseLabeler):
    """Labels against a gold pair set, optionally with uniform noise.

    ``noise_rate`` is the probability a label is flipped — a lay user who
    occasionally misclicks.
    """

    def __init__(
        self,
        gold_pairs: set[Pair],
        noise_rate: float = 0.0,
        seconds_per_label: float = 6.0,
        seed: int | None = None,
    ):
        super().__init__(seconds_per_label)
        if not 0.0 <= noise_rate <= 1.0:
            raise ValueError(f"noise_rate must be in [0, 1], got {noise_rate}")
        self.gold_pairs = set(gold_pairs)
        self.noise_rate = noise_rate
        self._rng = random.Random(seed)

    def true_label(self, pair: Pair) -> int:
        return MATCH if tuple(pair) in self.gold_pairs else NO_MATCH

    def label(self, pair: Pair) -> int:
        """Answer one match/no-match question."""
        self.questions_asked += 1
        answer = self.true_label(pair)
        if self.noise_rate and self._rng.random() < self.noise_rate:
            answer = 1 - answer
        return answer


class UncertainOracleLabeler(OracleLabeler):
    """An expert who cannot decide on a designated set of hard pairs.

    On a hard pair the labeler answers randomly with bias
    ``hard_match_bias`` toward "match" — modelling the AmFam vehicles
    expert facing data "so incomplete that even he was uncertain in many
    cases".
    """

    def __init__(
        self,
        gold_pairs: set[Pair],
        hard_pairs: set[Pair],
        hard_match_bias: float = 0.5,
        seconds_per_label: float = 6.0,
        seed: int | None = None,
    ):
        super().__init__(gold_pairs, noise_rate=0.0, seconds_per_label=seconds_per_label, seed=seed)
        self.hard_pairs = set(hard_pairs)
        self.hard_match_bias = hard_match_bias

    def label(self, pair: Pair) -> int:
        self.questions_asked += 1
        if tuple(pair) in self.hard_pairs:
            return MATCH if self._rng.random() < self.hard_match_bias else NO_MATCH
        return self.true_label(pair)
