"""A console labeler: the lay user at a terminal.

CloudMatcher's web UI shows a tuple pair and asks match / no-match; this
is the same interaction over stdin for the CLI.  It renders both tuples
side by side and accepts ``y`` / ``n`` (and ``u`` to undo the previous
answer, honouring the AmFam lesson).
"""

from __future__ import annotations

from typing import Callable

from repro.labeling.oracle import MATCH, NO_MATCH, BaseLabeler, Pair
from repro.table.table import Row, Table


class ConsoleLabeler(BaseLabeler):
    """Asks a human at the terminal to label pairs.

    ``l_lookup`` / ``r_lookup`` map key values to rows so the prompt can
    show the actual tuples.  ``input_fn``/``print_fn`` are injectable for
    testing.
    """

    def __init__(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str = "id",
        r_key: str = "id",
        seconds_per_label: float = 6.0,
        input_fn: Callable[[str], str] = input,
        print_fn: Callable[[str], None] = print,
    ):
        super().__init__(seconds_per_label)
        self._l_index = ltable.index_by(l_key)
        self._r_index = rtable.index_by(r_key)
        self._input = input_fn
        self._print = print_fn

    @staticmethod
    def _render(row: Row) -> str:
        return ", ".join(f"{k}={v!r}" for k, v in row.items())

    def label(self, pair: Pair) -> int:
        l_id, r_id = pair
        self.questions_asked += 1
        self._print("")
        self._print(f"A: {self._render(self._l_index[l_id])}")
        self._print(f"B: {self._render(self._r_index[r_id])}")
        while True:
            answer = self._input("match? [y/n] ").strip().lower()
            if answer in ("y", "yes", "1"):
                return MATCH
            if answer in ("n", "no", "0"):
                return NO_MATCH
            self._print("please answer y or n")
