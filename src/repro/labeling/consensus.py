"""Multi-labeler consensus: labeling accurately with multiple people.

Section 4.3 lists "how to label accurately with multiple people" among
the open ML-deployment challenges.  :class:`ConsensusLabeler` implements
the standard escalation protocol: two independent labelers answer every
question; on disagreement a designated adjudicator breaks the tie.  Cost
accounting (questions, time) covers everyone involved, so benchmarks can
weigh accuracy gained against labeling effort spent.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.labeling.oracle import BaseLabeler, Pair


class ConsensusLabeler(BaseLabeler):
    """Two labelers per question; an adjudicator resolves disagreements.

    ``labelers`` must hold exactly two primary labelers; ``adjudicator``
    is typically the most trusted (and most expensive) person.  The
    reported ``questions_asked`` counts *questions*, while
    ``assignments`` counts individual human answers (2 or 3 per question).
    """

    def __init__(
        self,
        labelers: list[BaseLabeler],
        adjudicator: BaseLabeler,
    ):
        if len(labelers) != 2:
            raise ConfigurationError(
                f"ConsensusLabeler takes exactly 2 primary labelers, got {len(labelers)}"
            )
        super().__init__(seconds_per_label=0.0)
        self.labelers = list(labelers)
        self.adjudicator = adjudicator
        self.assignments = 0
        self.disagreements = 0

    @property
    def labeling_seconds(self) -> float:  # type: ignore[override]
        """Total human time across primaries and the adjudicator."""
        return (
            sum(labeler.labeling_seconds for labeler in self.labelers)
            + self.adjudicator.labeling_seconds
        )

    def label(self, pair: Pair) -> int:
        self.questions_asked += 1
        first = self.labelers[0].label(pair)
        second = self.labelers[1].label(pair)
        self.assignments += 2
        if first == second:
            return first
        self.disagreements += 1
        self.assignments += 1
        return self.adjudicator.label(pair)
