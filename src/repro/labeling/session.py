"""Labeling sessions: budgets, history, and undo.

Two production lessons from the paper are encoded here:

* CloudMatcher caps questions (Table 2 tops out at 1200); the session
  enforces a hard **budget** and raises once it is exhausted.
* The AmFam vehicles task failed partly because "CloudMatcher provided no
  way for him to *undo* the labeling" after the expert realized a batch
  was wrong.  Sessions therefore keep full history and support
  ``undo(n)`` / ``relabel``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.base import candset_pairs
from repro.catalog.catalog import Catalog
from repro.exceptions import BudgetExhaustedError, LabelingError
from repro.labeling.oracle import BaseLabeler, Pair
from repro.table.table import Table


@dataclass
class LabelRecord:
    """One answered question."""

    pair: Pair
    label: int


class LabelingSession:
    """Mediates every label request against one labeler.

    ``budget=None`` means unlimited.  All labels are remembered; asking
    the same pair again returns the cached answer without spending budget
    (users are not asked to re-label pairs they already labeled).
    """

    def __init__(self, labeler: BaseLabeler, budget: int | None = None):
        if budget is not None and budget < 1:
            raise LabelingError(f"budget must be >= 1 or None, got {budget}")
        self.labeler = labeler
        self.budget = budget
        self._history: list[LabelRecord] = []
        self._labels: dict[Pair, int] = {}

    # ------------------------------------------------------------------
    @property
    def questions_asked(self) -> int:
        """Number of distinct questions actually asked."""
        return len(self._history)

    @property
    def remaining_budget(self) -> int | None:
        if self.budget is None:
            return None
        return self.budget - self.questions_asked

    @property
    def labels(self) -> dict[Pair, int]:
        """Current label for every pair labeled so far."""
        return dict(self._labels)

    def has_budget(self, n: int = 1) -> bool:
        """Can ``n`` more questions be asked?"""
        return self.budget is None or self.questions_asked + n <= self.budget

    # ------------------------------------------------------------------
    def ask(self, pair: Pair) -> int:
        """Label one pair (cached if already answered)."""
        pair = tuple(pair)
        if pair in self._labels:
            return self._labels[pair]
        if not self.has_budget():
            raise BudgetExhaustedError(
                f"label budget of {self.budget} exhausted after "
                f"{self.questions_asked} questions"
            )
        label = self.labeler.label(pair)
        self._history.append(LabelRecord(pair, label))
        self._labels[pair] = label
        return label

    def ask_many(self, pairs: list[Pair]) -> list[int]:
        """Label a batch of pairs in order."""
        return [self.ask(pair) for pair in pairs]

    # ------------------------------------------------------------------
    def undo(self, n: int = 1) -> list[LabelRecord]:
        """Retract the last ``n`` answers, refunding their budget.

        Returns the retracted records (most recent first).
        """
        if n < 1:
            raise LabelingError(f"undo count must be >= 1, got {n}")
        if n > len(self._history):
            raise LabelingError(
                f"cannot undo {n} labels; only {len(self._history)} recorded"
            )
        retracted = []
        for _ in range(n):
            record = self._history.pop()
            self._labels.pop(record.pair, None)
            retracted.append(record)
        return retracted

    def relabel(self, pair: Pair, label: int) -> None:
        """Manually correct an existing answer (no budget charge)."""
        pair = tuple(pair)
        if pair not in self._labels:
            raise LabelingError(f"pair {pair} has not been labeled")
        self._labels[pair] = label
        for record in self._history:
            if record.pair == pair:
                record.label = label

    # ------------------------------------------------------------------
    def label_candset(
        self,
        candset: Table,
        label_column: str = "label",
        catalog: Catalog | None = None,
    ) -> Table:
        """Label every pair of a candidate set, appending ``label_column``."""
        pairs = candset_pairs(candset, catalog)
        candset.add_column(label_column, self.ask_many(pairs))
        return candset
