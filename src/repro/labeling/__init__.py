"""Labeling: simulated labelers and budget/undo-aware sessions."""

from repro.labeling.oracle import (
    MATCH,
    NO_MATCH,
    BaseLabeler,
    OracleLabeler,
    Pair,
    UncertainOracleLabeler,
)
from repro.labeling.consensus import ConsensusLabeler
from repro.labeling.console import ConsoleLabeler
from repro.labeling.session import LabelingSession, LabelRecord

__all__ = [
    "BaseLabeler",
    "ConsensusLabeler",
    "ConsoleLabeler",
    "LabelRecord",
    "LabelingSession",
    "MATCH",
    "NO_MATCH",
    "OracleLabeler",
    "Pair",
    "UncertainOracleLabeler",
]
