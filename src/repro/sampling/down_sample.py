"""The guide's first step: intelligently down-sampling two large tables.

Figure 2 of the paper: a user facing two 1M-tuple tables first down-samples
them to e.g. 100K tuples each before developing the EM workflow.  Naive
uniform sampling of both tables is a known trap — the probability that a
matching pair survives two independent uniform samples is the *product* of
the sampling rates, so most matches vanish and the development sample is
useless for training a matcher.

The down sampler here follows Magellan's ``down_sample`` design: sample B
uniformly to B', then pick A' as the A-tuples that share rare tokens with
B' (probed through an inverted index), topped up with random A-tuples.
Matches between A' and B' are thereby preserved at a far higher rate, which
``benchmarks/bench_ablation_downsample.py`` quantifies against the naive
sampler.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.exceptions import ConfigurationError
from repro.table.schema import is_missing
from repro.table.table import Table
from repro.text.tokenizers import WhitespaceTokenizer


def _row_tokens(table: Table, columns: list[str], index: int) -> set[str]:
    tokenizer = WhitespaceTokenizer(return_set=True)
    tokens: set[str] = set()
    row = table.row(index)
    for column in columns:
        value = row[column]
        if not is_missing(value):
            tokens.update(token.lower() for token in tokenizer.tokenize(str(value)))
    return tokens


def _string_columns(table: Table, key: str) -> list[str]:
    return [name for name in table.columns if name != key]


def down_sample(
    ltable: Table,
    rtable: Table,
    size: int,
    y_param: int = 1,
    l_key: str = "id",
    r_key: str = "id",
    seed: int | None = None,
) -> tuple[Table, Table]:
    """Down-sample two tables to roughly ``size`` rows each.

    ``rtable`` is sampled uniformly; for each sampled right tuple the
    ``y_param`` left tuples sharing its rarest tokens are pulled into the
    left sample, so pairs that actually match survive.  The left sample is
    topped up with uniformly random rows if probing found fewer than
    ``size``.

    Returns ``(l_sample, r_sample)``.
    """
    if size < 1:
        raise ConfigurationError(f"size must be >= 1, got {size}")
    if y_param < 1:
        raise ConfigurationError(f"y_param must be >= 1, got {y_param}")
    rng = random.Random(seed)

    r_sample = rtable.sample(min(size, rtable.num_rows), seed=rng.randrange(2**31))

    # Inverted index over the left table's tokens.
    l_columns = _string_columns(ltable, l_key)
    token_index: dict[str, list[int]] = defaultdict(list)
    for i in range(ltable.num_rows):
        for token in _row_tokens(ltable, l_columns, i):
            token_index[token].append(i)

    r_columns = _string_columns(rtable, r_key)
    selected: set[int] = set()
    for j in range(r_sample.num_rows):
        tokens = _row_tokens(r_sample, r_columns, j)
        # Prefer rare tokens: they identify candidate matches most sharply.
        postings = sorted(
            (token_index[t] for t in tokens if t in token_index), key=len
        )
        picked = 0
        for posting in postings:
            for position in posting:
                if position not in selected:
                    selected.add(position)
                    picked += 1
                    if picked >= y_param:
                        break
            if picked >= y_param:
                break

    # Top up with random left rows to reach the requested size.
    remaining = [i for i in range(ltable.num_rows) if i not in selected]
    rng.shuffle(remaining)
    for position in remaining:
        if len(selected) >= min(size, ltable.num_rows):
            break
        selected.add(position)

    l_sample = ltable.take(sorted(selected))
    return l_sample, r_sample


def naive_down_sample(
    ltable: Table,
    rtable: Table,
    size: int,
    seed: int | None = None,
) -> tuple[Table, Table]:
    """Uniform independent sampling of both tables (the baseline the
    intelligent sampler is measured against)."""
    rng = random.Random(seed)
    l_sample = ltable.sample(min(size, ltable.num_rows), seed=rng.randrange(2**31))
    r_sample = rtable.sample(min(size, rtable.num_rows), seed=rng.randrange(2**31))
    return l_sample, r_sample


def sample_candset(candset: Table, n: int, seed: int | None = None) -> Table:
    """Uniformly sample ``n`` rows of a candidate set (guide step 'Sampling')."""
    return candset.sample(n, seed=seed)


def weighted_sample_candset(
    candset: Table,
    n: int,
    seed: int | None = None,
    top_fraction: float = 0.5,
) -> Table:
    """Sample a candidate set so that likely matches are represented.

    Candidate sets are heavily skewed toward non-matches, so a uniform
    sample of a few hundred pairs often contains almost no matches and
    cross-validation degenerates.  This sampler scores each pair by the
    Jaccard similarity of the whitespace tokens of its base tuples
    (concatenating all non-key attributes), draws ``top_fraction`` of the
    sample from the highest-scoring pairs and the rest uniformly from the
    remainder — the cheap, practical trick behind the guide's "take a
    sample S from C" step working at all.

    Requires the candidate set's catalog metadata (to reach the base
    tuples).
    """
    from repro.catalog.catalog import get_catalog
    from repro.catalog.checks import validate_candset

    if candset.num_rows <= n:
        return candset.copy()
    cat = get_catalog()
    meta = validate_candset(candset, cat)
    l_key = cat.get_key(meta.ltable)
    r_key = cat.get_key(meta.rtable)
    l_columns = _string_columns(meta.ltable, l_key)
    r_columns = _string_columns(meta.rtable, r_key)
    l_tokens = {
        meta.ltable.row(i)[l_key]: _row_tokens(meta.ltable, l_columns, i)
        for i in range(meta.ltable.num_rows)
    }
    r_tokens = {
        meta.rtable.row(i)[r_key]: _row_tokens(meta.rtable, r_columns, i)
        for i in range(meta.rtable.num_rows)
    }

    scores = []
    for l_id, r_id in zip(candset.column(meta.fk_ltable), candset.column(meta.fk_rtable)):
        left, right = l_tokens[l_id], r_tokens[r_id]
        union = len(left | right)
        scores.append(len(left & right) / union if union else 0.0)

    order = sorted(range(candset.num_rows), key=lambda i: -scores[i])
    n_top = int(round(n * top_fraction))
    top = order[:n_top]
    rest = order[n_top:]
    rng = random.Random(seed)
    rng.shuffle(rest)
    picked = sorted(top + rest[: n - len(top)])
    sample = candset.take(picked)
    cat.set_candset_metadata(
        sample, meta.key, meta.fk_ltable, meta.fk_rtable, meta.ltable, meta.rtable
    )
    return sample
