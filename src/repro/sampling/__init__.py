"""Sampling tools: intelligent down-sampling and candidate-set sampling."""

from repro.sampling.down_sample import (
    down_sample,
    naive_down_sample,
    sample_candset,
    weighted_sample_candset,
)

__all__ = [
    "down_sample",
    "naive_down_sample",
    "sample_candset",
    "weighted_sample_candset",
]
