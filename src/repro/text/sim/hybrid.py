"""Hybrid similarity measures: token-level structure, character-level cores.

These combine a secondary character-level measure (e.g. Jaro-Winkler) with
token-set comparison, which is what makes them robust to both word
reordering and per-word typos — the sweet spot for names and addresses.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.text.sim.edit_based import JaroWinkler


class MongeElkan:
    """Average best-match score of each left token against right tokens."""

    def __init__(self, sim_func=None):
        self.sim_func = sim_func or JaroWinkler().get_raw_score

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = list(left), list(right)
        if not left and not right:
            return 1.0
        if not left or not right:
            return 0.0
        total = 0.0
        for token_left in left:
            total += max(self.sim_func(token_left, token_right) for token_right in right)
        return total / len(left)


class GeneralizedJaccard:
    """Jaccard over a soft token matching.

    Tokens from the two sides are greedily matched when their secondary
    similarity exceeds ``threshold``; matched pairs contribute their
    similarity to the intersection weight.
    """

    def __init__(self, sim_func=None, threshold: float = 0.5):
        self.sim_func = sim_func or JaroWinkler().get_raw_score
        self.threshold = threshold

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = list(set(left)), list(set(right))
        if not left and not right:
            return 1.0
        if not left or not right:
            return 0.0
        candidate_pairs = []
        for i, token_left in enumerate(left):
            for j, token_right in enumerate(right):
                score = self.sim_func(token_left, token_right)
                if score >= self.threshold:
                    candidate_pairs.append((score, i, j))
        candidate_pairs.sort(reverse=True)
        used_left: set[int] = set()
        used_right: set[int] = set()
        intersection_weight = 0.0
        matched = 0
        for score, i, j in candidate_pairs:
            if i in used_left or j in used_right:
                continue
            used_left.add(i)
            used_right.add(j)
            intersection_weight += score
            matched += 1
        union_size = len(left) + len(right) - matched
        return intersection_weight / union_size if union_size else 1.0

    get_sim_score = get_raw_score


class SoftTfIdf:
    """TF-IDF cosine where 'equal tokens' is relaxed to 'similar tokens'.

    Left tokens are paired with their most similar right token when the
    secondary similarity is at least ``threshold``; the pair contributes
    ``weight_left * weight_right * similarity`` to the dot product.
    """

    def __init__(
        self,
        corpus: list[list[str]] | None = None,
        sim_func=None,
        threshold: float = 0.5,
    ):
        from repro.text.sim.token_based import TfIdf

        self._tfidf = TfIdf(corpus)
        self.sim_func = sim_func or JaroWinkler().get_raw_score
        self.threshold = threshold

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        import math

        left, right = list(left), list(right)
        if not left and not right:
            return 1.0
        if not left or not right:
            return 0.0
        w_left = self._tfidf._weights(left)
        w_right = self._tfidf._weights(right)
        dot = 0.0
        for token_left, weight_left in w_left.items():
            best_score, best_token = 0.0, None
            for token_right in w_right:
                score = self.sim_func(token_left, token_right)
                if score > best_score:
                    best_score, best_token = score, token_right
            if best_token is not None and best_score >= self.threshold:
                dot += weight_left * w_right[best_token] * best_score
        norm_left = math.sqrt(sum(w * w for w in w_left.values()))
        norm_right = math.sqrt(sum(w * w for w in w_right.values()))
        if norm_left == 0.0 or norm_right == 0.0:
            return 0.0
        return min(dot / (norm_left * norm_right), 1.0)

    get_sim_score = get_raw_score
