"""Similarity measures: edit-based, token-based, hybrid, phonetic, generic."""

from repro.text.sim.edit_based import (
    Affine,
    Hamming,
    Jaro,
    JaroWinkler,
    Levenshtein,
    NeedlemanWunsch,
    SmithWaterman,
)
from repro.text.sim.extras import BagDistance, Editex, RatcliffObershelp
from repro.text.sim.generic import abs_norm, exact_match, rel_diff
from repro.text.sim.hybrid import GeneralizedJaccard, MongeElkan, SoftTfIdf
from repro.text.sim.phonetic import Soundex, soundex_code
from repro.text.sim.token_based import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    OverlapCoefficient,
    TfIdf,
    TverskyIndex,
)

__all__ = [
    "Affine",
    "BagDistance",
    "Editex",
    "RatcliffObershelp",
    "Cosine",
    "Dice",
    "GeneralizedJaccard",
    "Hamming",
    "Jaccard",
    "Jaro",
    "JaroWinkler",
    "Levenshtein",
    "MongeElkan",
    "NeedlemanWunsch",
    "Overlap",
    "OverlapCoefficient",
    "SmithWaterman",
    "SoftTfIdf",
    "Soundex",
    "TfIdf",
    "TverskyIndex",
    "abs_norm",
    "exact_match",
    "rel_diff",
    "soundex_code",
]
