"""Edit-based (character-level) string similarity measures.

API follows py_stringmatching: each measure exposes ``get_raw_score`` (the
natural value of the measure, e.g. an edit distance) and, where a
normalized form exists, ``get_sim_score`` in [0, 1] where 1 means most
similar.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


class Levenshtein:
    """Classic edit distance with unit insert/delete/substitute costs."""

    def get_raw_score(self, left: str, right: str) -> int:
        """Return the edit distance between two strings."""
        if left == right:
            return 0
        if not left:
            return len(right)
        if not right:
            return len(left)
        # Two-row dynamic program; keep the shorter string as the row.
        if len(left) < len(right):
            left, right = right, left
        previous = list(range(len(right) + 1))
        for i, ch_left in enumerate(left):
            current = [i + 1]
            append = current.append
            prev_diag = previous[0]
            for j, ch_right in enumerate(right, start=1):
                prev_j = previous[j]
                cost = prev_diag if ch_left == ch_right else prev_diag + 1
                above = prev_j + 1
                if above < cost:
                    cost = above
                left_cell = current[j - 1] + 1
                if left_cell < cost:
                    cost = left_cell
                append(cost)
                prev_diag = prev_j
            previous = current
        return previous[-1]

    def get_sim_score(self, left: str, right: str) -> float:
        """1 - distance / max_length, with two empty strings scoring 1."""
        max_len = max(len(left), len(right))
        if max_len == 0:
            return 1.0
        return 1.0 - self.get_raw_score(left, right) / max_len


class Hamming:
    """Number of positions at which equal-length strings differ."""

    def get_raw_score(self, left: str, right: str) -> int:
        if len(left) != len(right):
            raise ValueError(
                f"Hamming distance requires equal lengths "
                f"({len(left)} vs {len(right)})"
            )
        return sum(a != b for a, b in zip(left, right))

    def get_sim_score(self, left: str, right: str) -> float:
        if len(left) == 0:
            return 1.0
        return 1.0 - self.get_raw_score(left, right) / len(left)


class Jaro:
    """Jaro similarity: transposition-aware common-character measure."""

    def get_raw_score(self, left: str, right: str) -> float:
        if not left and not right:
            return 1.0
        if not left or not right:
            return 0.0
        window = max(len(left), len(right)) // 2 - 1
        window = max(window, 0)
        left_matched = [False] * len(left)
        right_matched = [False] * len(right)
        matches = 0
        for i, ch in enumerate(left):
            start = max(0, i - window)
            stop = min(i + window + 1, len(right))
            for j in range(start, stop):
                if not right_matched[j] and right[j] == ch:
                    left_matched[i] = True
                    right_matched[j] = True
                    matches += 1
                    break
        if matches == 0:
            return 0.0
        transpositions = 0
        j = 0
        for i, matched in enumerate(left_matched):
            if matched:
                while not right_matched[j]:
                    j += 1
                if left[i] != right[j]:
                    transpositions += 1
                j += 1
        transpositions //= 2
        return (
            matches / len(left)
            + matches / len(right)
            + (matches - transpositions) / matches
        ) / 3.0

    get_sim_score = get_raw_score


class JaroWinkler:
    """Jaro similarity boosted for strings sharing a common prefix."""

    def __init__(self, prefix_weight: float = 0.1):
        if not 0.0 <= prefix_weight <= 0.25:
            raise ConfigurationError(
                f"prefix_weight must be in [0, 0.25], got {prefix_weight}"
            )
        self.prefix_weight = prefix_weight
        self._jaro = Jaro()

    def get_raw_score(self, left: str, right: str) -> float:
        jaro = self._jaro.get_raw_score(left, right)
        prefix = 0
        for a, b in zip(left[:4], right[:4]):
            if a != b:
                break
            prefix += 1
        return jaro + prefix * self.prefix_weight * (1.0 - jaro)

    get_sim_score = get_raw_score


class NeedlemanWunsch:
    """Global alignment score with a linear gap penalty.

    ``sim_func`` scores a character pair (default: 1 if equal else 0) and
    ``gap_cost`` is subtracted per gap character.
    """

    def __init__(self, gap_cost: float = 1.0, sim_func=None):
        self.gap_cost = gap_cost
        self.sim_func = sim_func or (lambda a, b: 1.0 if a == b else 0.0)

    def get_raw_score(self, left: str, right: str) -> float:
        previous = [-self.gap_cost * j for j in range(len(right) + 1)]
        for i, ch_left in enumerate(left, start=1):
            current = [-self.gap_cost * i]
            for j, ch_right in enumerate(right, start=1):
                current.append(
                    max(
                        previous[j - 1] + self.sim_func(ch_left, ch_right),
                        previous[j] - self.gap_cost,
                        current[j - 1] - self.gap_cost,
                    )
                )
            previous = current
        return previous[-1]


class SmithWaterman:
    """Local alignment score (best-matching substring pair)."""

    def __init__(self, gap_cost: float = 1.0, sim_func=None):
        self.gap_cost = gap_cost
        self.sim_func = sim_func or (lambda a, b: 1.0 if a == b else 0.0)

    def get_raw_score(self, left: str, right: str) -> float:
        best = 0.0
        previous = [0.0] * (len(right) + 1)
        for ch_left in left:
            current = [0.0]
            for j, ch_right in enumerate(right, start=1):
                score = max(
                    0.0,
                    previous[j - 1] + self.sim_func(ch_left, ch_right),
                    previous[j] - self.gap_cost,
                    current[j - 1] - self.gap_cost,
                )
                current.append(score)
                best = max(best, score)
            previous = current
        return best


class Affine:
    """Affine-gap global alignment: opening a gap costs more than extending.

    Follows the standard Gotoh formulation with gap penalty
    ``gap_start + k * gap_continuation`` for a gap of length k+1.
    """

    def __init__(
        self, gap_start: float = 1.0, gap_continuation: float = 0.5, sim_func=None
    ):
        self.gap_start = gap_start
        self.gap_continuation = gap_continuation
        self.sim_func = sim_func or (lambda a, b: 1.0 if a == b else 0.0)

    def get_raw_score(self, left: str, right: str) -> float:
        neg_inf = float("-inf")
        n = len(right)
        # m: match/mismatch ending, x: gap in right, y: gap in left.
        m_prev = [0.0] + [neg_inf] * n
        x_prev = [neg_inf] * (n + 1)
        y_prev = [neg_inf] + [
            -self.gap_start - (j - 1) * self.gap_continuation for j in range(1, n + 1)
        ]
        for i, ch_left in enumerate(left, start=1):
            m_cur = [neg_inf] * (n + 1)
            x_cur = [neg_inf] * (n + 1)
            y_cur = [neg_inf] * (n + 1)
            x_cur[0] = -self.gap_start - (i - 1) * self.gap_continuation
            for j, ch_right in enumerate(right, start=1):
                score = self.sim_func(ch_left, ch_right)
                m_cur[j] = score + max(m_prev[j - 1], x_prev[j - 1], y_prev[j - 1])
                x_cur[j] = max(
                    m_prev[j] - self.gap_start, x_prev[j] - self.gap_continuation
                )
                y_cur[j] = max(
                    m_cur[j - 1] - self.gap_start, y_cur[j - 1] - self.gap_continuation
                )
            m_prev, x_prev, y_prev = m_cur, x_cur, y_cur
        return max(m_prev[-1], x_prev[-1], y_prev[-1])
