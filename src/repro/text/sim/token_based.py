"""Token-based (set and bag) string similarity measures.

All measures accept two token collections (lists or sets of strings).
Set-based measures convert their inputs to sets; TF-IDF treats them as
bags.  Conventions follow py_stringmatching: two empty inputs score 1.0,
one empty input scores 0.0.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable


def _as_set(tokens: Iterable[str]) -> set[str]:
    return tokens if isinstance(tokens, set) else set(tokens)


def _empty_score(left: set, right: set) -> float | None:
    """Shared handling of empty inputs; None means 'not an edge case'."""
    if not left and not right:
        return 1.0
    if not left or not right:
        return 0.0
    return None


class Jaccard:
    """|intersection| / |union| of the two token sets."""

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = _as_set(left), _as_set(right)
        edge = _empty_score(left, right)
        if edge is not None:
            return edge
        inter = len(left & right)
        return inter / (len(left) + len(right) - inter)

    get_sim_score = get_raw_score


class Dice:
    """2 * |intersection| / (|left| + |right|)."""

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = _as_set(left), _as_set(right)
        edge = _empty_score(left, right)
        if edge is not None:
            return edge
        return 2.0 * len(left & right) / (len(left) + len(right))

    get_sim_score = get_raw_score


class OverlapCoefficient:
    """|intersection| / min(|left|, |right|)."""

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = _as_set(left), _as_set(right)
        edge = _empty_score(left, right)
        if edge is not None:
            return edge
        return len(left & right) / min(len(left), len(right))

    get_sim_score = get_raw_score


class Overlap:
    """Raw overlap size |intersection| (used by overlap blocking/joins)."""

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> int:
        return len(_as_set(left) & _as_set(right))


class Cosine:
    """Set cosine (Ochiai): |intersection| / sqrt(|left| * |right|)."""

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = _as_set(left), _as_set(right)
        edge = _empty_score(left, right)
        if edge is not None:
            return edge
        return len(left & right) / math.sqrt(len(left) * len(right))

    get_sim_score = get_raw_score


class TverskyIndex:
    """Tversky index, generalizing Jaccard (a=b=1) and Dice (a=b=0.5)."""

    def __init__(self, alpha: float = 0.5, beta: float = 0.5):
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        self.alpha = alpha
        self.beta = beta

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = _as_set(left), _as_set(right)
        edge = _empty_score(left, right)
        if edge is not None:
            return edge
        inter = len(left & right)
        denominator = (
            inter + self.alpha * len(left - right) + self.beta * len(right - left)
        )
        return inter / denominator if denominator else 1.0

    get_sim_score = get_raw_score


class TfIdf:
    """TF-IDF cosine similarity over token bags.

    A corpus (list of token lists) supplies document frequencies; without
    one, every token gets IDF 1 and the measure degrades to TF cosine.
    With ``dampen=True`` (the py_stringmatching default) term frequencies
    and IDFs are log-dampened.
    """

    def __init__(self, corpus: list[list[str]] | None = None, dampen: bool = True):
        self.dampen = dampen
        self._document_frequency: Counter[str] = Counter()
        self._corpus_size = 0
        if corpus:
            for document in corpus:
                self._document_frequency.update(set(document))
            self._corpus_size = len(corpus)

    def _idf(self, token: str) -> float:
        if not self._corpus_size:
            return 1.0
        frequency = self._document_frequency.get(token, 0)
        if frequency == 0:
            return 0.0
        idf = self._corpus_size / frequency
        return math.log(idf) if self.dampen else idf

    def _weights(self, tokens: Iterable[str]) -> dict[str, float]:
        counts = Counter(tokens)
        weights = {}
        for token, count in counts.items():
            tf = math.log(1 + count) if self.dampen else float(count)
            weights[token] = tf * self._idf(token)
        return weights

    def get_raw_score(self, left: Iterable[str], right: Iterable[str]) -> float:
        left, right = list(left), list(right)
        if not left and not right:
            return 1.0
        if not left or not right:
            return 0.0
        w_left = self._weights(left)
        w_right = self._weights(right)
        dot = sum(w_left[t] * w_right[t] for t in w_left.keys() & w_right.keys())
        norm_left = math.sqrt(sum(w * w for w in w_left.values()))
        norm_right = math.sqrt(sum(w * w for w in w_right.values()))
        if norm_left == 0.0 or norm_right == 0.0:
            return 0.0
        return dot / (norm_left * norm_right)

    get_sim_score = get_raw_score
