"""Additional similarity measures from the py_stringmatching catalogue.

* :class:`BagDistance` — a cheap lower bound on Levenshtein distance via
  multiset differences; useful as a pre-filter.
* :class:`Editex` — phonetics-aware edit distance (Zobel & Dart):
  substitutions between letters in the same phonetic group are cheap.
* :class:`RatcliffObershelp` — the "gestalt pattern matching" similarity
  (difflib's algorithm), built on recursive longest common substrings.
"""

from __future__ import annotations

from collections import Counter

_EDITEX_GROUPS = (
    "aeiouy",  # vowels
    "bp",
    "ckq",
    "dt",
    "lr",
    "mn",
    "gj",
    "fpv",
    "sxz",
    "csz",
)


def _editex_cost(a: str, b: str) -> int:
    """0 identical, 1 same phonetic group, 2 otherwise."""
    if a == b:
        return 0
    for group in _EDITEX_GROUPS:
        if a in group and b in group:
            return 1
    return 2


class BagDistance:
    """Bag distance: max of the two one-sided multiset differences.

    Always <= Levenshtein distance, computable in linear time — the
    classic cheap filter before exact edit distance.
    """

    def get_raw_score(self, left: str, right: str) -> int:
        """The bag distance between two strings."""
        left_counts = Counter(left)
        right_counts = Counter(right)
        only_left = sum((left_counts - right_counts).values())
        only_right = sum((right_counts - left_counts).values())
        return max(only_left, only_right)

    def get_sim_score(self, left: str, right: str) -> float:
        """1 - distance / max length (1.0 for two empty strings)."""
        longest = max(len(left), len(right))
        if longest == 0:
            return 1.0
        return 1.0 - self.get_raw_score(left, right) / longest


class Editex:
    """Editex distance (Zobel & Dart 1996), lowercased.

    Dynamic program like Levenshtein, but substitution cost honours
    phonetic groups and insert/delete costs depend on the letter dropped
    (cheaper inside a phonetic run, e.g. silent doubling).
    """

    def _del_cost(self, prev: str, current: str) -> int:
        if prev == current:
            return 1
        return 1 if _editex_cost(prev, current) < 2 else 2

    def get_raw_score(self, left: str, right: str) -> int:
        """The Editex distance between two strings."""
        left = left.lower()
        right = right.lower()
        if left == right:
            return 0
        if not left:
            return 2 * len(right)
        if not right:
            return 2 * len(left)
        rows = len(left) + 1
        cols = len(right) + 1
        table = [[0] * cols for _ in range(rows)]
        for i in range(1, rows):
            prev = left[i - 2] if i > 1 else left[0]
            table[i][0] = table[i - 1][0] + self._del_cost(prev, left[i - 1])
        for j in range(1, cols):
            prev = right[j - 2] if j > 1 else right[0]
            table[0][j] = table[0][j - 1] + self._del_cost(prev, right[j - 1])
        for i in range(1, rows):
            for j in range(1, cols):
                del_left = table[i - 1][j] + self._del_cost(
                    left[i - 2] if i > 1 else left[0], left[i - 1]
                )
                del_right = table[i][j - 1] + self._del_cost(
                    right[j - 2] if j > 1 else right[0], right[j - 1]
                )
                substitute = table[i - 1][j - 1] + _editex_cost(
                    left[i - 1], right[j - 1]
                )
                table[i][j] = min(del_left, del_right, substitute)
        return table[-1][-1]

    def get_sim_score(self, left: str, right: str) -> float:
        """1 - distance / (2 * max length), in [0, 1]."""
        longest = max(len(left), len(right))
        if longest == 0:
            return 1.0
        return 1.0 - self.get_raw_score(left, right) / (2.0 * longest)


class RatcliffObershelp:
    """Gestalt pattern matching: 2*|matched| / (|left| + |right|)."""

    def _matches(self, left: str, right: str) -> int:
        if not left or not right:
            return 0
        best_len = best_i = best_j = 0
        # longest common substring via DP row sweep
        previous = [0] * (len(right) + 1)
        for i, ch in enumerate(left, start=1):
            current = [0] * (len(right) + 1)
            for j, other in enumerate(right, start=1):
                if ch == other:
                    current[j] = previous[j - 1] + 1
                    if current[j] > best_len:
                        best_len = current[j]
                        best_i, best_j = i, j
            previous = current
        if best_len == 0:
            return 0
        return (
            best_len
            + self._matches(left[: best_i - best_len], right[: best_j - best_len])
            + self._matches(left[best_i:], right[best_j:])
        )

    def get_raw_score(self, left: str, right: str) -> float:
        """Similarity in [0, 1]; 1.0 for two empty strings."""
        total = len(left) + len(right)
        if total == 0:
            return 1.0
        return 2.0 * self._matches(left, right) / total

    get_sim_score = get_raw_score
