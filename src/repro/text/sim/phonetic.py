"""Phonetic similarity measures."""

from __future__ import annotations

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}
# h and w are transparent (a repeated code across them still merges);
# vowels break code runs but emit nothing.
_TRANSPARENT = set("hw")


def soundex_code(word: str) -> str:
    """American Soundex code of a word (e.g. 'Robert' -> 'R163').

    Returns '' for input with no alphabetic characters.
    """
    letters = [ch for ch in word.lower() if ch.isalpha()]
    if not letters:
        return ""
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first)
    for ch in letters[1:]:
        digit = _SOUNDEX_CODES.get(ch)
        if digit is not None:
            if digit != previous:
                code.append(digit)
            previous = digit
        elif ch not in _TRANSPARENT:
            previous = None
    return (("".join(code)) + "000")[:4]


class Soundex:
    """1.0 when the two words share a Soundex code, else 0.0."""

    def get_raw_score(self, left: str, right: str) -> float:
        code_left = soundex_code(left)
        code_right = soundex_code(right)
        if not code_left or not code_right:
            return 0.0
        return 1.0 if code_left == code_right else 0.0

    get_sim_score = get_raw_score
