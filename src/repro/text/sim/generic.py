"""Generic value-level similarity helpers used by feature generation.

These mirror Magellan's built-in feature functions for non-string
attributes: exact match, absolute-difference norm, and relative difference.
All handle missing values by returning ``float('nan')``, which feature
extraction later imputes; downstream learners never see NaN.
"""

from __future__ import annotations

import math
from typing import Any

from repro.table.schema import is_missing

NAN = float("nan")


def exact_match(left: Any, right: Any) -> float:
    """1.0 when values are equal, 0.0 otherwise; NaN when either missing."""
    if is_missing(left) or is_missing(right):
        return NAN
    return 1.0 if left == right else 0.0


def abs_norm(left: Any, right: Any) -> float:
    """1 - |l - r| / max(|l|, |r|) for numeric values, in [0, 1]."""
    if is_missing(left) or is_missing(right):
        return NAN
    try:
        left_value = float(left)
        right_value = float(right)
    except (TypeError, ValueError):
        return NAN
    scale = max(abs(left_value), abs(right_value))
    if scale == 0.0:
        return 1.0
    score = 1.0 - abs(left_value - right_value) / scale
    return max(score, 0.0)


def rel_diff(left: Any, right: Any) -> float:
    """Relative difference |l - r| / ((|l| + |r|) / 2); 0 means equal."""
    if is_missing(left) or is_missing(right):
        return NAN
    try:
        left_value = float(left)
        right_value = float(right)
    except (TypeError, ValueError):
        return NAN
    scale = (abs(left_value) + abs(right_value)) / 2.0
    if scale == 0.0:
        return 0.0
    return abs(left_value - right_value) / scale


def is_nan(value: float) -> bool:
    """True if ``value`` is a float NaN."""
    return isinstance(value, float) and math.isnan(value)
