"""Hashed character-n-gram embeddings, built from scratch.

The vector half of the text layer: where :mod:`repro.text.tokenizers`
turns a string into discrete tokens for set-overlap measures, this
module turns it into a sparse *vector* for geometric ones — the
representation the ANN blocking backend (:mod:`repro.blocking.vector`)
retrieves with.  Following the no-sklearn substrate rule everything is
hand-rolled: a hashing vectorizer (character q-grams hashed into a
fixed-width bucket space, "the hashing trick"), optional smoothed IDF
weighting fitted on a corpus, and L2-normalized sparse cosine kernels.

Vectors are plain ``dict[int, float]`` (bucket -> weight).  Attribute
values are short, so the sparse dot product — iterate the smaller dict —
beats any dense representation in pure Python by orders of magnitude.

Determinism matters: bucket assignment must be identical across
processes and across pickling round-trips (the embeddings and the ANN
index over them are content-fingerprinted :class:`repro.index.IndexStore`
artifacts, and a disk-tier reload must probe byte-identically).  Python's
builtin ``hash`` is salted per process, so buckets come from
``blake2b``, which is keyed only by the gram bytes.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable

from repro.exceptions import ConfigurationError
from repro.text.tokenizers import QgramTokenizer

SparseVector = dict[int, float]


def stable_bucket(token: str, dim: int) -> int:
    """Map a token into ``[0, dim)`` identically in every process."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % dim


def l2_normalize(vector: SparseVector) -> SparseVector:
    """Scale a sparse vector to unit L2 norm (zero vectors stay zero)."""
    norm = math.sqrt(sum(weight * weight for weight in vector.values()))
    if norm == 0.0:
        return {}
    return {bucket: weight / norm for bucket, weight in vector.items()}


def sparse_dot(a: SparseVector, b: SparseVector) -> float:
    """Dot product of two sparse vectors (iterates the smaller one).

    Shared buckets accumulate in ascending bucket order.  Float addition
    is not associative, so the iteration order *is* part of the result's
    identity — pinning it keeps this scalar kernel bit-identical to the
    batched columnar cosine in :mod:`repro.perf.arrays` (which also
    accumulates buckets ascending) and independent of dict insertion
    history.
    """
    if len(a) > len(b):
        a, b = b, a
    return sum(a[bucket] * b[bucket] for bucket in sorted(a) if bucket in b)


def cosine(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity of two *already L2-normalized* sparse vectors."""
    return sparse_dot(a, b)


class HashedNgramVectorizer:
    """Character q-grams of a (lowercased) string, hashed into ``dim`` buckets.

    ``embed`` returns raw term-frequency counts per bucket;
    ``embed_normalized`` L2-normalizes them, which is the form the
    cosine kernels and the ANN index expect.  Padding (on by default,
    matching :class:`~repro.text.tokenizers.QgramTokenizer`) lets the
    boundary characters of short attribute values participate in as many
    grams as interior ones.

    IDF weighting is deliberately *not* state on the vectorizer: it is a
    corpus-level quantity, computed by :func:`idf_weights` over both
    sides of a join pair and applied by :func:`apply_idf`, so the
    vectorizer itself stays content-free and its :meth:`spec` (the index
    fingerprint identity) covers exactly its constructor parameters.
    """

    def __init__(
        self,
        q: int = 3,
        dim: int = 2**18,
        padding: bool = True,
        lowercase: bool = True,
    ):
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        self.q = q
        self.dim = dim
        self.padding = padding
        self.lowercase = lowercase
        self._tokenizer = QgramTokenizer(q=q, padding=padding)

    def spec(self) -> tuple:
        """Stable identity for fingerprints: class name + parameters."""
        params = tuple(
            (name, value)
            for name, value in sorted(self.__dict__.items())
            if not name.startswith("_")
        )
        return (type(self).__name__, params)

    def embed(self, value: str) -> SparseVector:
        """Hashed term-frequency counts of the value's q-grams.

        Empty (or all-whitespace) strings embed to the empty vector:
        with padding enabled the tokenizer would otherwise emit
        padding-only grams, making every empty string look identical
        (cosine 1.0) despite carrying no signal.
        """
        if self.lowercase:
            value = value.lower()
        if not value.strip():
            return {}
        counts: SparseVector = {}
        for gram in self._tokenizer.tokenize(value):
            bucket = stable_bucket(gram, self.dim)
            counts[bucket] = counts.get(bucket, 0.0) + 1.0
        return counts

    def embed_normalized(self, value: str) -> SparseVector:
        """L2-normalized :meth:`embed` (the similarity-ready form)."""
        return l2_normalize(self.embed(value))

    def __getstate__(self):
        # The tokenizer memo is derived state; rebuild it on unpickle so
        # artifact pickles stay small and deterministic.
        state = self.__dict__.copy()
        state.pop("_tokenizer", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._tokenizer = QgramTokenizer(q=self.q, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(q={self.q}, dim={self.dim}, "
            f"padding={self.padding}, lowercase={self.lowercase})"
        )


def idf_weights(corpus: Iterable[SparseVector]) -> dict[int, float]:
    """Smoothed inverse document frequency per bucket over a corpus.

    ``idf = ln((1 + N) / (1 + df)) + 1`` — the standard smoothed form,
    so buckets present in every record still carry positive weight and
    empty corpora cannot divide by zero.
    """
    document_frequency: dict[int, int] = {}
    n_records = 0
    for vector in corpus:
        n_records += 1
        for bucket in vector:
            document_frequency[bucket] = document_frequency.get(bucket, 0) + 1
    return {
        bucket: math.log((1 + n_records) / (1 + df)) + 1.0
        for bucket, df in document_frequency.items()
    }


def apply_idf(vector: SparseVector, idf: dict[int, float]) -> SparseVector:
    """Reweight raw counts by IDF (unknown buckets keep weight 1.0)."""
    return {
        bucket: count * idf.get(bucket, 1.0) for bucket, count in vector.items()
    }
