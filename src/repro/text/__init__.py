"""String matching: tokenizers and similarity measures.

This package is the reproduction's ``py_stringmatching``: a self-contained
library of tokenizers and string similarity measures used by blocking,
feature generation, sim joins, and the matchers — and usable entirely on
its own, outside EM (the paper notes py_stringmatching ended up installed
on Kaggle for general data-science use).
"""

from repro.text import sim
from repro.text.tokenizers import (
    AlphabeticTokenizer,
    AlphanumericTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    Tokenizer,
    WhitespaceTokenizer,
)
from repro.text.vectorize import (
    HashedNgramVectorizer,
    apply_idf,
    cosine,
    idf_weights,
    l2_normalize,
    sparse_dot,
    stable_bucket,
)

__all__ = [
    "AlphabeticTokenizer",
    "AlphanumericTokenizer",
    "DelimiterTokenizer",
    "HashedNgramVectorizer",
    "QgramTokenizer",
    "Tokenizer",
    "WhitespaceTokenizer",
    "apply_idf",
    "cosine",
    "idf_weights",
    "l2_normalize",
    "sim",
    "sparse_dot",
    "stable_bucket",
]
