"""String matching: tokenizers and similarity measures.

This package is the reproduction's ``py_stringmatching``: a self-contained
library of tokenizers and string similarity measures used by blocking,
feature generation, sim joins, and the matchers — and usable entirely on
its own, outside EM (the paper notes py_stringmatching ended up installed
on Kaggle for general data-science use).
"""

from repro.text import sim
from repro.text.tokenizers import (
    AlphabeticTokenizer,
    AlphanumericTokenizer,
    DelimiterTokenizer,
    QgramTokenizer,
    Tokenizer,
    WhitespaceTokenizer,
)

__all__ = [
    "AlphabeticTokenizer",
    "AlphanumericTokenizer",
    "DelimiterTokenizer",
    "QgramTokenizer",
    "Tokenizer",
    "WhitespaceTokenizer",
    "sim",
]
