"""String tokenizers (the py_stringmatching tokenizer family).

Every tokenizer exposes ``tokenize(text) -> list[str]``.  Constructing a
tokenizer with ``return_set=True`` makes it emit each distinct token once,
which is what set-based similarity measures and sim joins expect.
"""

from __future__ import annotations

import re

from repro.exceptions import ConfigurationError


def _dedupe(tokens: list[str]) -> list[str]:
    """Drop duplicate tokens, keeping first-seen order."""
    return list(dict.fromkeys(tokens))


class Tokenizer:
    """Base class: handles the shared ``return_set`` behaviour."""

    def __init__(self, return_set: bool = False):
        self.return_set = return_set

    def name(self) -> str:
        """A short, stable identifier used in generated feature names."""
        raise NotImplementedError

    def _split(self, text: str) -> list[str]:
        raise NotImplementedError

    def tokenize(self, text: str) -> list[str]:
        """Tokenize ``text``; honours ``return_set``."""
        if not isinstance(text, str):
            raise TypeError(f"expected str, got {type(text).__name__}")
        tokens = self._split(text)
        return _dedupe(tokens) if self.return_set else tokens

    def tokenize_cached(self, text: str) -> list[str]:
        """Memoized :meth:`tokenize` for hot loops (feature extraction
        evaluates the same attribute values against many partners).

        Returns the cached list object — callers must not mutate it.
        """
        cache = getattr(self, "_cache", None)
        if cache is None:
            cache = self._cache = {}
        tokens = cache.get(text)
        if tokens is None:
            tokens = cache[text] = self.tokenize(text)
        return tokens

    def clear_cache(self) -> None:
        """Drop the :meth:`tokenize_cached` memo (e.g. between datasets)."""
        self.__dict__.pop("_cache", None)

    def spec(self) -> tuple:
        """A stable identity for cache keys: class name + config params.

        Two tokenizers with equal specs tokenize identically, so index
        artifacts built under one can be served to the other.  Private
        attributes (the memo, compiled patterns) are derived state and
        stay out; ``delimiters``-style sets are sorted for stability.
        """
        params = tuple(
            (name, sorted(value) if isinstance(value, (set, frozenset)) else value)
            for name, value in sorted(self.__dict__.items())
            if not name.startswith("_")
        )
        return (type(self).__name__, params)

    def __getstate__(self):
        # The memo can be large and is cheap to rebuild, so it stays out
        # of pickles (checkpoints, cross-process transfers).
        state = self.__dict__.copy()
        state.pop("_cache", None)
        return state

    def __repr__(self) -> str:
        return f"{type(self).__name__}(return_set={self.return_set})"


class WhitespaceTokenizer(Tokenizer):
    """Split on runs of whitespace.

    >>> WhitespaceTokenizer().tokenize("David  D. Smith")
    ['David', 'D.', 'Smith']
    """

    def name(self) -> str:
        return "ws"

    def _split(self, text: str) -> list[str]:
        return text.split()


class DelimiterTokenizer(Tokenizer):
    """Split on a fixed set of delimiter strings (default: space)."""

    def __init__(self, delimiters: set[str] | None = None, return_set: bool = False):
        super().__init__(return_set)
        self.delimiters = set(delimiters) if delimiters else {" "}
        if any(not d for d in self.delimiters):
            raise ConfigurationError("delimiters must be non-empty strings")
        self._pattern = re.compile(
            "|".join(re.escape(d) for d in sorted(self.delimiters, key=len, reverse=True))
        )

    def name(self) -> str:
        return "dlm"

    def _split(self, text: str) -> list[str]:
        return [tok for tok in self._pattern.split(text) if tok]


class QgramTokenizer(Tokenizer):
    """Character q-grams, optionally padded with sentinel characters.

    Padding (on by default, as in py_stringmatching) prepends q-1 copies of
    ``prefix_pad`` and appends q-1 copies of ``suffix_pad`` so that the
    string's boundary characters participate in as many q-grams as the
    interior ones.

    >>> QgramTokenizer(q=3).tokenize("ab")
    ['##a', '#ab', 'ab$', 'b$$']
    """

    def __init__(
        self,
        q: int = 3,
        padding: bool = True,
        prefix_pad: str = "#",
        suffix_pad: str = "$",
        return_set: bool = False,
    ):
        super().__init__(return_set)
        if q < 1:
            raise ConfigurationError(f"q must be >= 1, got {q}")
        if len(prefix_pad) != 1 or len(suffix_pad) != 1:
            raise ConfigurationError("pad characters must be single characters")
        self.q = q
        self.padding = padding
        self.prefix_pad = prefix_pad
        self.suffix_pad = suffix_pad

    def name(self) -> str:
        return f"qgm_{self.q}"

    def _split(self, text: str) -> list[str]:
        if self.padding:
            text = (
                self.prefix_pad * (self.q - 1) + text + self.suffix_pad * (self.q - 1)
            )
        if len(text) < self.q:
            return []
        return [text[i : i + self.q] for i in range(len(text) - self.q + 1)]


class AlphabeticTokenizer(Tokenizer):
    """Maximal runs of alphabetic characters.

    >>> AlphabeticTokenizer().tokenize("data9science, data")
    ['data', 'science', 'data']
    """

    _pattern = re.compile(r"[a-zA-Z]+")

    def name(self) -> str:
        return "alph"

    def _split(self, text: str) -> list[str]:
        return self._pattern.findall(text)


class AlphanumericTokenizer(Tokenizer):
    """Maximal runs of alphanumeric characters.

    >>> AlphanumericTokenizer().tokenize("#1 data9,science")
    ['1', 'data9', 'science']
    """

    _pattern = re.compile(r"[a-zA-Z0-9]+")

    def name(self) -> str:
        return "alnum"

    def _split(self, text: str) -> list[str]:
        return self._pattern.findall(text)
