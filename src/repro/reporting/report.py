"""EM run reports: the envisioned ecosystem's profiling/browsing service.

Figure 6 sketches services for "data cleaning, profiling, browsing, etc.
for EM".  This module renders human-readable (markdown) reports of the
artifacts an EM run produces — dataset profiles, blocking summaries,
matcher leaderboards, the final accuracy — so the "conversation between
the EM team and the domain expert team" (§1) has something concrete to
look at between iterations.
"""

from __future__ import annotations

from typing import Any

from repro.cleaning.detectors import detect_generic_values, profile_missingness
from repro.table.schema import infer_schema
from repro.table.table import Table


def render_markdown_table(rows: list[dict[str, Any]]) -> str:
    """Render row dicts as a GitHub-flavoured markdown table."""
    if not rows:
        return "*(empty)*"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def profile_section(name: str, table: Table) -> str:
    """Markdown profile of one table: schema, missingness, generic values."""
    schema = infer_schema(table)
    missing = profile_missingness(table)
    rows = []
    for column in table.columns:
        generic = detect_generic_values(table, column, distinctiveness=0.05)
        rows.append(
            {
                "column": column,
                "type": schema[column].value,
                "missing": f"{missing[column]:.1%}",
                "generic values": ", ".join(map(str, generic.generic_values[:3])) or "-",
            }
        )
    return (
        f"## Profile: {name}\n\n"
        f"{table.num_rows} rows, {len(table.columns)} columns\n\n"
        + render_markdown_table(rows)
    )


def blocking_section(
    candset: Table,
    cross_product: int,
    recall: float | None = None,
) -> str:
    """Markdown summary of a blocking result."""
    reduction = 1.0 - candset.num_rows / cross_product if cross_product else 0.0
    lines = [
        "## Blocking",
        "",
        f"- candidate pairs: **{candset.num_rows}** "
        f"(of {cross_product} possible; {reduction:.2%} pruned)",
    ]
    if recall is not None:
        lines.append(f"- blocking recall (vs gold): **{recall:.3f}**")
    return "\n".join(lines)


def matcher_section(selection) -> str:
    """Markdown leaderboard from a :class:`SelectionResult`."""
    rows = []
    for row in selection.scores.rows():
        rows.append(
            {
                "matcher": row["matcher"],
                "precision": f"{row['precision']:.3f}",
                "recall": f"{row['recall']:.3f}",
                "f1": f"{row['f1']:.3f}",
            }
        )
    return (
        "## Matcher selection (cross-validated)\n\n"
        + render_markdown_table(rows)
        + f"\n\nSelected: **{selection.best_matcher.name}** "
          f"({selection.metric} = {selection.best_score:.3f})"
    )


def accuracy_section(report: dict[str, Any]) -> str:
    """Markdown summary of an ``eval_matches`` report."""
    lines = [
        "## Accuracy",
        "",
        f"- precision: **{report['precision']:.3f}**",
        f"- recall: **{report['recall']:.3f}**",
        f"- F1: **{report['f1']:.3f}**",
        f"- false positives: {len(report['false_positives'])}",
        f"- false negatives: {len(report['false_negatives'])}",
    ]
    return "\n".join(lines)


def em_run_report(
    title: str,
    ltable: Table,
    rtable: Table,
    candset: Table | None = None,
    blocking_recall: float | None = None,
    selection=None,
    accuracy: dict[str, Any] | None = None,
    notes: list[str] = (),
) -> str:
    """Assemble a full markdown report of one EM run.

    Every section is optional except the dataset profiles, so the report
    grows with the run: profile-only early in the conversation, full
    pipeline once a workflow exists.
    """
    sections = [f"# EM run report: {title}"]
    sections.append(profile_section("table A", ltable))
    sections.append(profile_section("table B", rtable))
    if candset is not None:
        sections.append(
            blocking_section(
                candset, ltable.num_rows * rtable.num_rows, blocking_recall
            )
        )
    if selection is not None:
        sections.append(matcher_section(selection))
    if accuracy is not None:
        sections.append(accuracy_section(accuracy))
    if notes:
        sections.append("## Notes\n\n" + "\n".join(f"- {note}" for note in notes))
    return "\n\n".join(sections) + "\n"
