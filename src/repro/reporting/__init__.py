"""Markdown reports of EM runs (the profiling/browsing service)."""

from repro.reporting.report import (
    accuracy_section,
    blocking_section,
    em_run_report,
    matcher_section,
    profile_section,
    render_markdown_table,
)

__all__ = [
    "accuracy_section",
    "blocking_section",
    "em_run_report",
    "matcher_section",
    "profile_section",
    "render_markdown_table",
]
