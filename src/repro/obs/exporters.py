"""Registry exporters: JSONL snapshots and Prometheus text format.

Two offline formats for one registry:

* **JSONL** — one JSON object per instrument (the ``to_dict`` form),
  written atomically next to event logs and benchmark results; read back
  with :func:`read_metrics_jsonl`.
* **Prometheus text exposition** — ``# TYPE`` headers, label-formatted
  sample lines, cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count`` for histograms.  :func:`parse_prometheus_text` parses the
  subset this module emits, which is what the round-trip property test
  exercises (and what a scrape endpoint would serve).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry


def write_metrics_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write one JSON object per instrument; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in registry.snapshot():
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return path


def read_metrics_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load an exported metrics snapshot back as a list of dicts."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]


# -- Prometheus text format ---------------------------------------------
def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_le(boundary: float) -> str:
    return "+Inf" if math.isinf(boundary) else repr(float(boundary))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for instrument in registry.instruments():
        if instrument.name not in typed:
            typed.add(instrument.name)
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        labels = instrument.label_dict
        if instrument.kind in ("counter", "gauge"):
            lines.append(
                f"{instrument.name}{_format_labels(labels)} "
                f"{_format_value(instrument.value)}"
            )
        else:  # histogram
            for boundary, cumulative in instrument.cumulative():
                le = _format_labels(labels, {"le": _format_le(boundary)})
                lines.append(f"{instrument.name}_bucket{le} {cumulative}")
            lines.append(
                f"{instrument.name}_sum{_format_labels(labels)} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(
                f"{instrument.name}_count{_format_labels(labels)} {instrument.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the Prometheus text rendering to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus_text(registry), encoding="utf-8")
    return path


def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        assert body[eq + 1] == '"', f"malformed label body: {body!r}"
        j = eq + 2
        value: list[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                escaped = body[j + 1]
                value.append({"n": "\n", "\\": "\\", '"': '"'}[escaped])
                j += 2
            else:
                value.append(body[j])
                j += 1
        labels[key] = "".join(value)
        i = j + 1
    return labels


def parse_prometheus_text(text: str) -> dict[str, Any]:
    """Parse the subset of the text format emitted by this module.

    Returns ``{"types": {name: kind}, "samples": {(name, labelset): value}}``
    where ``labelset`` is the sorted ``(key, value)`` tuple (including any
    ``le`` label on histogram bucket series).  Series names keep their
    ``_bucket``/``_sum``/``_count`` suffixes, exactly as exposed.
    """
    types: dict[str, str] = {}
    samples: dict[tuple[str, tuple], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        name_and_labels, _, raw_value = line.rpartition(" ")
        if "{" in name_and_labels:
            name, _, rest = name_and_labels.partition("{")
            labels = _parse_labels(rest.rstrip("}"))
        else:
            name, labels = name_and_labels, {}
        value = float("inf") if raw_value == "+Inf" else float(raw_value)
        samples[(name, tuple(sorted(labels.items())))] = value
    return {"types": types, "samples": samples}
