"""Metric primitives and the registry that owns them.

Three instrument kinds, modeled on the Prometheus data model:

* :class:`Counter` — a monotonically increasing total (events, pairs,
  questions).  Decrementing is a programming error.
* :class:`Gauge` — a point-in-time value that moves both ways (queue
  depth, survival ratio).
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at creation, plus a running sum and count; ``time()`` is the
  timer context manager used for node and join latencies.

A :class:`MetricsRegistry` interns one instrument per ``(name, labels)``
pair, so hot paths can call ``registry.counter("x", k="v").inc()``
repeatedly and always hit the same object.  Instruments of one name must
all be the same kind; labels are stringified and order-insensitive.

Process model: the registry is process-local.  Code that fans work out
through :mod:`repro.perf.parallel` must aggregate its statistics in the
shard results and account them in the parent (the simjoin and
feature-extraction instrumentation does exactly this) — increments made
inside a forked worker die with the worker.

Thread model: interning and every update (``inc``/``set``/``observe``)
are guarded by locks, so concurrent threads — the :mod:`repro.serve`
workers, or any caller's thread pool — never lose updates or observe a
half-written histogram.  ``value += amount`` is a read-modify-write; two
unsynchronized threads interleaving it silently drop increments.

``get_registry()`` returns the process default; ``use_registry`` swaps in
a fresh (or given) registry for a ``with`` block, which is how tests and
the CLI isolate a run's snapshot.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

from repro.exceptions import ConfigurationError

# (sorted (key, value) pairs) — the canonical, hashable label identity.
LabelSet = tuple[tuple[str, str], ...]

# Latencies in this codebase span sub-millisecond kernel calls to
# multi-second benchmark joins; the default boundaries cover that range.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _labelset(labels: dict[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """State shared by every metric kind: identity, label set, and the
    lock that makes updates atomic under concurrent threads."""

    kind = "abstract"

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {dict(self.labels)}>"


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind,
            "labels": self.label_dict, "value": self.value,
        }


class Gauge(_Instrument):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind,
            "labels": self.label_dict, "value": self.value,
        }


class Histogram(_Instrument):
    """Observations against fixed bucket boundaries, plus sum and count.

    ``bucket_counts[i]`` counts observations ``v`` with
    ``buckets[i-1] < v <= buckets[i]`` (the first bucket has no lower
    bound); one extra overflow slot catches everything above the last
    boundary.  Cumulative (Prometheus ``le``) views are derived at export
    time by :meth:`cumulative`.
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelSet = (), buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ):
        super().__init__(name, labels)
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ConfigurationError(f"histogram {self.name!r} needs >= 1 bucket boundary")
        if list(buckets) != sorted(set(buckets)):
            raise ConfigurationError(
                f"histogram {self.name!r} boundaries must be strictly increasing: {buckets}"
            )
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # + overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.sum += value
            self.count += 1
            self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall seconds spent inside the ``with`` block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - started)

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, ending at +Inf."""
        with self._lock:
            counts, total = list(self.bucket_counts), self.count
        out, running = [], 0
        for boundary, n in zip(self.buckets, counts):
            running += n
            out.append((boundary, running))
        out.append((float("inf"), total))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 < q <= 1) from the bucket counts.

        Prometheus-style linear interpolation within the bucket that
        contains the target rank (the first bucket interpolates from 0);
        observations above the last boundary clamp to that boundary.
        Returns 0.0 when nothing has been observed.
        """
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            counts, total = list(self.bucket_counts), self.count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for i, n in enumerate(counts[:-1]):
            previous = running
            running += n
            if running >= rank:
                hi = self.buckets[i]
                lo = self.buckets[i - 1] if i else 0.0
                return lo + (hi - lo) * ((rank - previous) / n)
        # Target rank falls in the overflow bucket: no upper boundary to
        # interpolate toward, so report the last finite boundary.
        return self.buckets[-1]

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name, "kind": self.kind, "labels": self.label_dict,
                "sum": self.sum, "count": self.count,
                "buckets": list(self.buckets), "bucket_counts": list(self.bucket_counts),
            }


class MetricsRegistry:
    """Interns and owns every instrument created through it.

    One instrument exists per ``(name, labels)``; a name is permanently
    bound to the kind it was first created as, and to its bucket
    boundaries for histograms (mixing kinds or boundaries under one name
    would make the exported series unreadable).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelSet], _Instrument] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- get-or-create -------------------------------------------------
    def _intern(self, cls, name: str, labels: dict, **kwargs) -> _Instrument:
        key = (name, _labelset(labels))
        # Interning must be atomic: two threads racing the get/create for
        # one key would each hold a different instrument, and increments
        # on the loser would vanish from every later lookup and export.
        with self._lock:
            bound = self._kinds.setdefault(name, cls.kind)
            if bound != cls.kind:
                raise ConfigurationError(
                    f"metric {name!r} is registered as a {bound}, "
                    f"cannot be used as a {cls.kind}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = cls(name, key[1], **kwargs)
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._intern(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._intern(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> Histogram:
        return self._intern(
            Histogram, name, labels, buckets=buckets if buckets is not None else DEFAULT_BUCKETS
        )

    def timer(self, name: str, **labels: Any):
        """Shorthand: a timing context manager on the named histogram."""
        return self.histogram(name, **labels).time()

    # -- introspection -------------------------------------------------
    def instruments(self) -> list[_Instrument]:
        """Every instrument, sorted by (name, labels) for stable export."""
        with self._lock:
            keys = sorted(self._instruments)
            return [self._instruments[key] for key in keys]

    def get(self, name: str, **labels: Any) -> _Instrument | None:
        """The instrument for (name, labels), or None if never created."""
        with self._lock:
            return self._instruments.get((name, _labelset(labels)))

    def snapshot(self) -> list[dict[str, Any]]:
        """A JSON-ready list of every instrument's current state."""
        return [instrument.to_dict() for instrument in self.instruments()]

    def counters(self) -> dict[tuple[str, LabelSet], float]:
        """Flat ``(name, labels) -> value`` view of every counter."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {
            key: instrument.value
            for key, instrument in items
            if instrument.kind == "counter"
        }

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self)} instruments>"


# -- the process-default registry --------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry all instrumentation writes to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) default registry for a ``with`` block."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
