"""Lightweight span-based tracing.

A :class:`Span` is one named, labeled interval; spans nest, and the
nesting is recorded as parent/child ids so a trace can be reassembled
offline.  Two ways to produce spans:

* :func:`trace_span` — a context manager for instrumenting arbitrary
  code (``with trace_span("verify", measure="jaccard"): ...``); nesting
  follows the runtime call stack.
* :func:`event_span_sink` — an :class:`~repro.runtime.events.EventStream`
  sink that turns each node's ``node_start``/``node_finish``/``node_fail``
  event pair (and each ``cache_hit``) into a span, so every runtime-graph
  execution can be traced without touching operator code.

Spans accumulate on a :class:`Tracer` (the process default via
:func:`get_tracer`, swappable with :func:`use_tracer`) and export as
JSONL next to the metrics snapshots.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.runtime import events as ev
from repro.runtime.events import RunEvent


@dataclass
class Span:
    """One named interval in a trace."""

    name: str
    span_id: int
    parent_id: int | None = None
    labels: dict[str, str] = field(default_factory=dict)
    start: float = 0.0  # wall-clock timestamp (time.time)
    seconds: float = 0.0  # measured duration
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "seconds": self.seconds,
        }
        if self.labels:
            payload["labels"] = self.labels
        if self.error is not None:
            payload["error"] = self.error
        return payload


class Tracer:
    """Collects finished spans; hands out nested span ids.

    Thread model: span-id allocation is atomic (a lock around the
    counter) and the nesting stack is *thread-local*, so concurrent
    threads — e.g. the :mod:`repro.serve` workers — each nest their own
    spans without colliding ids or corrupting each other's parentage.
    Forked workers never share a tracer (each child process gets a copy
    that dies with it).
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []  # finished, in completion order
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1

    def _stack(self) -> list[int]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def allocate_span_id(self) -> int:
        """Hand out the next span id; safe to call from any thread."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def current_parent_id(self) -> int | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[Span]:
        span = Span(
            name=name,
            span_id=self.allocate_span_id(),
            parent_id=self.current_parent_id(),
            labels={str(k): str(v) for k, v in labels.items()},
            start=time.time(),
        )
        stack = self._stack()
        stack.append(span.span_id)
        started = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            span.error = repr(exc)
            raise
        finally:
            span.seconds = time.perf_counter() - started
            stack.pop()
            with self._lock:
                self.spans.append(span)

    def write_jsonl(self, path: str | Path) -> Path:
        """Export finished spans as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            spans = list(self.spans)
        with path.open("w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.spans)


# -- the process-default tracer -----------------------------------------
_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Swap in a fresh (or given) default tracer for a ``with`` block."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def trace_span(name: str, tracer: Tracer | None = None, **labels: Any) -> Iterator[Span]:
    """Record a span on the default (or given) tracer around the block."""
    with (tracer if tracer is not None else get_tracer()).span(name, **labels) as span:
        yield span


def event_span_sink(tracer: Tracer | None = None) -> Callable[[RunEvent], None]:
    """An EventStream sink converting per-node run events into spans.

    ``node_start`` opens a span for ``(graph, node)``; the matching
    ``node_finish``/``node_fail`` closes it with the event's wall seconds
    (failures carry the error repr).  ``cache_hit`` events become
    standalone spans labeled ``cached=true`` — there is no start event
    for a cache hit.  Spans parent onto whatever :func:`trace_span`
    context is open when the node starts, so graph executions nest under
    caller-opened spans.
    """
    target = tracer if tracer is not None else get_tracer()
    open_spans: dict[tuple[str, str], Span] = {}

    def sink(event: RunEvent) -> None:
        if event.node is None:
            return
        key = (event.graph, event.node)
        # `event.at or time.time()` would silently replace a legitimate
        # 0.0 (epoch) timestamp with wall-clock now; only None means
        # "unset".  Span ids come from the tracer's atomic allocator so
        # sink calls from serving threads never collide with trace_span.
        if event.event == ev.NODE_START:
            span = Span(
                name=f"{event.graph}/{event.node}",
                span_id=target.allocate_span_id(),
                parent_id=target.current_parent_id(),
                labels={"graph": event.graph, "node": event.node},
                start=event.at if event.at is not None else time.time(),
            )
            open_spans[key] = span
        elif event.event in (ev.NODE_FINISH, ev.NODE_FAIL):
            span = open_spans.pop(key, None)
            if span is None:
                return
            span.seconds = event.wall_seconds
            if event.error is not None:
                span.error = event.error
            with target._lock:
                target.spans.append(span)
        elif event.event == ev.CACHE_HIT:
            span = Span(
                name=f"{event.graph}/{event.node}",
                span_id=target.allocate_span_id(),
                parent_id=target.current_parent_id(),
                labels={"graph": event.graph, "node": event.node, "cached": "true"},
                start=event.at if event.at is not None else time.time(),
                seconds=event.wall_seconds,
            )
            with target._lock:
                target.spans.append(span)

    return sink
