"""repro.obs — metrics and tracing for every subsystem.

The paper's production section names "logging ... monitoring" as a
first-class concern for EM workflows serving many users; this package is
that layer.  It pairs the structured event stream of
:mod:`repro.runtime` with *aggregated* observability, so bugs in one can
be cross-checked against the other:

* :mod:`~repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms interned in a :class:`MetricsRegistry` (process default via
  :func:`get_registry`, swappable with :func:`use_registry`);
* :mod:`~repro.obs.tracing` — nested spans via the :func:`trace_span`
  context manager and :func:`event_span_sink` (runtime events → spans);
* :mod:`~repro.obs.sinks` — :func:`metrics_sink`, the EventStream sink
  :func:`repro.runtime.run_graph` subscribes automatically so every node
  timing lands in the registry;
* :mod:`~repro.obs.exporters` — JSONL snapshots and the Prometheus text
  exposition format (with a parser for round-trip verification).

Instrumented hot paths: simjoin filter/verify funnels, per-blocker pair
counts, feature-extraction cache hits, Falcon iteration/question
counters, cloud engine queue depth and fragment latency, and every
runtime node timing.  The CLI's ``--metrics PATH`` flag and
``benchmarks/_report.py`` snapshot the registry after a run.
"""

from repro.obs.exporters import (
    parse_prometheus_text,
    read_metrics_jsonl,
    to_prometheus_text,
    write_metrics_jsonl,
    write_prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.sinks import metrics_sink
from repro.obs.tracing import (
    Span,
    Tracer,
    event_span_sink,
    get_tracer,
    set_tracer,
    trace_span,
    use_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "event_span_sink",
    "get_registry",
    "get_tracer",
    "metrics_sink",
    "parse_prometheus_text",
    "read_metrics_jsonl",
    "set_registry",
    "set_tracer",
    "to_prometheus_text",
    "trace_span",
    "use_registry",
    "use_tracer",
    "write_metrics_jsonl",
    "write_prometheus_text",
]
