"""EventStream sinks that feed the metrics registry.

The runtime's executors emit every event in the parent process (even for
operators forked to workers), so subscribing :func:`metrics_sink` to a
run's stream is enough to account node timings, cache hits, retries, and
failures — no operator code changes.  :func:`repro.runtime.run_graph`
subscribes one automatically for the duration of each run.

Cached restores are kept in separate series (``runtime_node_cached_*``)
from real execution, mirroring ``EventStream.node_timings(cached=...)``:
a memo/checkpoint hit must never inflate a node's apparent compute time.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.runtime import events as ev
from repro.runtime.events import RunEvent


def metrics_sink(registry: MetricsRegistry | None = None) -> Callable[[RunEvent], None]:
    """A sink recording run/node counters and timing histograms.

    Series written (all labeled by ``graph``):

    * ``runtime_runs_total`` / ``runtime_run_seconds``
    * ``runtime_node_events_total`` (additionally labeled by ``event``)
    * ``runtime_node_seconds`` — real execution wall time (finish + fail)
    * ``runtime_node_cached_seconds`` — memo/checkpoint restore time
    * ``runtime_sim_seconds_total`` — simulated human/crowd seconds
    """

    def sink(event: RunEvent) -> None:
        # The default registry is resolved per event, not captured at
        # subscribe time, so ``use_registry`` blocks see events of runs
        # that subscribed outside them.
        reg = registry if registry is not None else get_registry()
        if event.node is None:
            if event.event == ev.RUN_START:
                reg.counter("runtime_runs_total", graph=event.graph).inc()
            elif event.event == ev.RUN_FINISH:
                reg.histogram("runtime_run_seconds", graph=event.graph).observe(
                    event.wall_seconds
                )
            return
        reg.counter(
            "runtime_node_events_total", graph=event.graph, event=event.event
        ).inc()
        if event.event in (ev.NODE_FINISH, ev.NODE_FAIL):
            reg.histogram("runtime_node_seconds", graph=event.graph).observe(
                event.wall_seconds
            )
            if event.sim_seconds:
                reg.counter("runtime_sim_seconds_total", graph=event.graph).inc(
                    event.sim_seconds
                )
        elif event.event == ev.CACHE_HIT:
            reg.histogram("runtime_node_cached_seconds", graph=event.graph).observe(
                event.wall_seconds
            )

    return sink
