"""Scalable string-similarity joins (the py_stringsimjoin analog)."""

from repro.simjoin.filters import (
    SET_MEASURES,
    TokenOrder,
    overlap_lower_bound,
    prefix_length,
    similarity,
    size_bounds,
)
from repro.simjoin.joins import (
    KERNELS,
    edit_distance_join,
    naive_set_sim_join,
    probe_encoded,
    probe_encoded_batch,
    set_sim_join,
)

__all__ = [
    "KERNELS",
    "SET_MEASURES",
    "TokenOrder",
    "edit_distance_join",
    "naive_set_sim_join",
    "overlap_lower_bound",
    "prefix_length",
    "probe_encoded",
    "probe_encoded_batch",
    "set_sim_join",
    "similarity",
    "size_bounds",
]
