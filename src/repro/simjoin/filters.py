"""Filters for set-similarity joins: size, prefix, and overlap bounds.

The join algorithms in :mod:`repro.simjoin.joins` prune the cross product
with three classic filters before verifying candidates exactly:

* **size filter** — a record of size s can only match records whose size
  lies in a measure-specific interval around s;
* **overlap bound** — the minimum token overlap two records must share to
  reach the similarity threshold;
* **prefix filter** — under a global token ordering, matching records must
  share a token within a short prefix of each record.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.exceptions import ConfigurationError
from repro.perf.kernels import ceil_bound
from repro.perf.tokens import TokenUniverse

SET_MEASURES = ("jaccard", "cosine", "dice", "overlap")


def validate_measure(measure: str) -> str:
    """Normalize and validate a set-similarity measure name."""
    measure = measure.lower()
    if measure not in SET_MEASURES:
        raise ConfigurationError(
            f"unknown set-similarity measure {measure!r}; expected one of {SET_MEASURES}"
        )
    return measure


def size_bounds(measure: str, threshold: float, size: int) -> tuple[int, float]:
    """Inclusive (lower, upper) bounds on partner-set size.

    For ``overlap`` the threshold is an absolute count and only the lower
    bound applies (upper bound is infinite).

    Lower bounds are guarded against float rounding (see
    :data:`repro.perf.kernels.ceil_bound`): a product landing epsilon
    above an integer must not ceil past it, or the filter would drop true
    matches.  The float upper bound can round epsilon *low*, so comparison
    sites must compare with a ``BOUND_EPS`` allowance.
    """
    measure = validate_measure(measure)
    if measure == "jaccard":
        return ceil_bound(threshold * size), size / threshold
    if measure == "cosine":
        return ceil_bound(threshold * threshold * size), size / (threshold * threshold)
    if measure == "dice":
        return (
            ceil_bound(threshold / (2.0 - threshold) * size),
            (2.0 - threshold) / threshold * size,
        )
    # overlap
    return ceil_bound(threshold), math.inf


def overlap_lower_bound(
    measure: str, threshold: float, left_size: int, right_size: int
) -> int:
    """Minimum token overlap required for the pair to reach the threshold."""
    measure = validate_measure(measure)
    if measure == "jaccard":
        return ceil_bound(threshold / (1.0 + threshold) * (left_size + right_size))
    if measure == "cosine":
        return ceil_bound(threshold * math.sqrt(left_size * right_size))
    if measure == "dice":
        return ceil_bound(threshold / 2.0 * (left_size + right_size))
    return ceil_bound(threshold)


def similarity(measure: str, left: set[str], right: set[str]) -> float:
    """Exact set-similarity for the verification step."""
    measure = validate_measure(measure)
    if not left and not right:
        return 1.0 if measure != "overlap" else 0.0
    if not left or not right:
        return 0.0
    overlap = len(left & right)
    if measure == "jaccard":
        return overlap / (len(left) + len(right) - overlap)
    if measure == "cosine":
        return overlap / math.sqrt(len(left) * len(right))
    if measure == "dice":
        return 2.0 * overlap / (len(left) + len(right))
    return float(overlap)


def prefix_length(measure: str, threshold: float, size: int) -> int:
    """Length of the record prefix that the prefix filter must index/probe.

    A pair meeting the threshold shares at least one token within this
    prefix of each record (tokens sorted by the global ordering).
    """
    measure = validate_measure(measure)
    if size == 0:
        return 0
    if measure == "overlap":
        return max(size - ceil_bound(threshold) + 1, 0)
    # Minimum overlap this record needs with its *smallest* admissible
    # partner; sharing fewer than that from anywhere means sharing at
    # least one token in the prefix of length size - bound + 1.
    lower, _ = size_bounds(measure, threshold, size)
    lower = max(lower, 1)
    bound = overlap_lower_bound(measure, threshold, size, lower)
    return max(size - bound + 1, 0)


class TokenOrder:
    """Global token ordering by ascending corpus frequency.

    Rare tokens sort first, which makes prefixes maximally selective.
    Unknown tokens are treated as rarest (frequency 0).  The ordering is
    computed by :class:`repro.perf.tokens.TokenUniverse` (which subsumes
    this class); TokenOrder remains as the string-level public API.
    """

    def __init__(self, corpus: Iterable[Iterable[str]]):
        self.universe = TokenUniverse(corpus)

    def rank(self, token: str) -> tuple[int, str]:
        """Sort key for a token (unknown tokens first)."""
        return self.universe.rank(token)

    def order(self, tokens: Iterable[str]) -> list[str]:
        """Distinct tokens sorted by the global ordering."""
        return self.universe.order(tokens)
