"""Set-similarity and edit-distance joins over tables.

The join algorithms follow the standard filter-verify design: tokenize,
apply the size filter, generate candidates through a prefix-filter inverted
index, and verify each candidate exactly.  ``naive_set_sim_join`` computes
the same result by brute force and exists as the benchmark baseline that
motivates this package (py_stringsimjoin in the paper).

The filtered join runs on the integer kernels of :mod:`repro.perf`: every
distinct string is tokenized once (``tokenize_cached``) and encoded once
into a sorted tuple of dense token ids ranked by global frequency, so the
prefix filter is a slice, the size filter is a ``bisect`` over postings
sorted by size, and verification is a C-level bitmask intersection (small
universes) or a merge scan with ppjoin-style early exit (large ones).
Both joins accept ``n_jobs`` and fan the probe side out over a process
pool; shards are contiguous and merged in order, so parallel output is
byte-identical to serial.

All of the build-side intermediates — string records, token sets, the
``TokenUniverse`` encodings, the prefix-filter postings, verification
masks, and the edit join's q-gram index — come from the process-default
:class:`repro.index.IndexStore`, so a join over content the store has
already seen (a repeated blocker run, another rule over the same
attribute, a Smurf threshold-sweep iteration) skips straight to the
probe/verify phase.  Content fingerprints guarantee a mutated table or a
different tokenizer rebuilds rather than reusing.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right

from repro.exceptions import ConfigurationError
from repro.index.store import get_index_store
from repro.obs import get_registry
from repro.perf.kernels import (
    BOUND_EPS,
    MASK_UNIVERSE_MAX,
    bounded_overlap,
    make_overlap_bound,
    make_scorer,
    token_mask,
)
from repro.perf.parallel import effective_n_jobs, run_sharded, split_evenly
from repro.simjoin.filters import (
    prefix_length,
    similarity,
    size_bounds,
    validate_measure,
)
from repro.table.table import Table
from repro.text.sim.edit_based import Levenshtein
from repro.text.tokenizers import Tokenizer

_OUTPUT_COLUMNS = ("_id", "l_id", "r_id", "score")
#: Public ``kernel=`` knob values.  ``"dict"`` pins the scalar backend
#: (heuristic mask/merge verification); ``"mask"``/``"merge"`` pin the
#: scalar backend *and* its verification kernel; ``"array"`` pins the
#: columnar CSR backend of :mod:`repro.perf.arrays`; ``"auto"`` lets the
#: kernel policy (and any :mod:`repro.plan` override) decide.  All
#: choices produce byte-identical results.
KERNELS = ("auto", "dict", "array", "mask", "merge")


def _string_records(table: Table, key: str, column: str) -> list[tuple]:
    """(key, str value) for each row with a non-missing value.

    Served from the index store; the returned list is the shared cached
    artifact and must not be mutated.
    """
    return get_index_store().string_records(table, key, column)


def _tokenize_column(table: Table, key: str, column: str, tokenizer: Tokenizer):
    """Yield (key, token_set); token sets come from the index store.

    The sets are the store's shared per-distinct-value artifacts —
    callers must treat them as read-only.
    """
    tokenized = get_index_store().tokenized_column(table, key, column, tokenizer)
    for row_key, value in tokenized.records:
        yield row_key, tokenized.token_sets[value]


def _observe_join(
    join: str,
    measure: str,
    seconds: float,
    probes: int,
    candidates: int,
    survivors: int,
) -> None:
    """Record one join's filter-verify funnel in the metrics registry.

    Shard workers run in forked processes, so per-shard counts travel
    back with the shard results and are accounted here, in the parent —
    a registry increment inside a worker would die with the fork.
    """
    reg = get_registry()
    labels = {"join": join, "measure": measure}
    reg.counter("simjoin_calls_total", **labels).inc()
    reg.counter("simjoin_probes_total", **labels).inc(probes)
    reg.counter("simjoin_candidates_total", **labels).inc(candidates)
    reg.counter("simjoin_survivors_total", **labels).inc(survivors)
    reg.gauge("simjoin_survival_ratio", **labels).set(
        survivors / candidates if candidates else 0.0
    )
    reg.histogram("simjoin_seconds", **labels).observe(seconds)


def probe_encoded(
    left_ids,
    left_size: int,
    index: dict,
    right_enc: list,
    right_masks: list | None,
    scorer,
    overlap_bound,
    measure: str,
    threshold: float,
    use_prefix_filter: bool = True,
    skip: set[int] | None = None,
) -> tuple[list[tuple], int]:
    """Filter-verify one encoded probe record against a prefix index.

    The single-record core of :func:`set_sim_join`, shared with the
    online serving path (:mod:`repro.serve`), which probes one query at a
    time against a resident corpus index — sharing the code is what makes
    served results byte-identical to the batch join — and with the
    live-index read path (:mod:`repro.index.delta`), which probes a base
    and a delta segment through the same bounds math.

    ``left_ids`` is the record's sorted token ids; ``left_size`` is its
    *true* distinct-token count, which can exceed ``len(left_ids)`` when
    a serving query holds tokens outside the corpus universe (those
    tokens can never overlap the corpus, so dropping them from the probe
    is lossless while the size still enters every bound and score).
    ``skip`` is an optional set of right *positions* to exclude — the
    live index's tombstones; excluded positions are dropped before
    verification and never counted as candidates.  Verification uses the
    bitmask kernel when ``right_masks`` is given, the bounded merge scan
    otherwise.  Returns the ``(r_id, score)`` survivors in
    right-position order plus the candidate count.
    """
    if not left_size:
        return [], 0
    lower, upper = size_bounds(measure, threshold, left_size)
    # The float upper bound can round epsilon low; admit the edge.
    upper += BOUND_EPS
    probe = (
        left_ids[: prefix_length(measure, threshold, left_size)]
        if use_prefix_filter
        else left_ids
    )
    candidates: set[int] = set()
    collect = candidates.update
    for token in probe:
        entry = index.get(token)
        if entry is None:
            continue
        sizes, positions = entry
        collect(positions[bisect_left(sizes, lower) : bisect_right(sizes, upper)])
    if skip:
        candidates.difference_update(skip)
    if not candidates:
        return [], 0
    results: list[tuple] = []
    if right_masks is not None:
        left_mask = token_mask(left_ids)
        for position in sorted(candidates):
            r_id, right = right_enc[position]
            overlap = (left_mask & right_masks[position]).bit_count()
            score = scorer(overlap, left_size, len(right))
            if score >= threshold:
                results.append((r_id, score))
    else:
        for position in sorted(candidates):
            r_id, right = right_enc[position]
            needed = overlap_bound(left_size, len(right))
            overlap = bounded_overlap(left_ids, right, needed)
            if overlap < needed:
                continue
            score = scorer(overlap, left_size, len(right))
            if score >= threshold:
                results.append((r_id, score))
    return results, len(candidates)


def probe_encoded_batch(
    queries: list[tuple],
    array_index,
    measure: str,
    threshold: float,
    use_prefix_filter: bool = True,
    skip: set[int] | None = None,
) -> list[tuple[list[tuple], int]]:
    """Filter-verify a *batch* of encoded probes with the array backend.

    The batched twin of :func:`probe_encoded`: ``queries`` holds
    ``(left_ids, left_size)`` per probe (same contract as the scalar
    kernel, including true sizes exceeding ``len(left_ids)`` for
    out-of-universe query tokens, which the CSR probe drops losslessly),
    ``array_index`` is a :class:`repro.perf.arrays.ArrayIndex` over the
    corpus, and ``skip`` excludes right positions (tombstones).  Returns
    one ``(matches, n_candidates)`` pair per query, each byte-identical
    to :func:`probe_encoded` on that query — this is the kernel
    :class:`repro.serve.MatchServer`'s micro-batching queue and
    :meth:`repro.index.delta.LiveIndex.search_batch` amortize their
    batches through.
    """
    from repro.perf import arrays

    arrays.require_arrays()
    probe_matrix = arrays.build_probe_matrix(
        [ids for ids, _ in queries], array_index.dim
    )
    true_sizes = arrays.np.fromiter(
        (size for _, size in queries), dtype=arrays.np.int64, count=len(queries)
    )
    indptr, positions, scores, counts = arrays.batch_set_sim_probe(
        probe_matrix,
        true_sizes,
        array_index,
        measure,
        threshold,
        use_prefix_filter,
        arrays.skip_mask(skip, array_index.n_rows),
    )
    matches = arrays.emit_matches(indptr, positions, scores, array_index.keys)
    return list(zip(matches, counts.tolist()))


def _result_table(rows: list[tuple]) -> Table:
    table = Table.from_rows(
        (
            {"_id": i, "l_id": l_id, "r_id": r_id, "score": score}
            for i, (l_id, r_id, score) in enumerate(rows)
        ),
        columns=list(_OUTPUT_COLUMNS),
    )
    if table.num_rows == 0:
        table = Table({name: [] for name in _OUTPUT_COLUMNS})
    return table


def _set_sim_join_arrays(
    store,
    encoding,
    measure: str,
    threshold: float,
    use_prefix_filter: bool,
    n_jobs: int,
) -> tuple[list[tuple], int, float]:
    """The columnar probe phase of :func:`set_sim_join`.

    Shards the probe side into contiguous row spans (CSR row slicing is
    a view-cheap operation) and runs one batched kernel call per shard;
    spans are contiguous and ascending, so serial and forked output
    orders are identical — and identical to the dict backend's.  Returns
    ``(rows, candidate count, kernel seconds)``; metrics are emitted by
    the caller in the parent process.
    """
    from repro.perf import arrays

    array_index = store.array_index(encoding, measure, threshold, use_prefix_filter)
    left_arrays = store.pair_arrays(encoding, side="left")
    left_keys = left_arrays.keys
    right_keys = array_index.keys
    n_probe = len(left_keys)
    n_shards = max(1, min(effective_n_jobs(n_jobs), n_probe))
    cuts = [n_probe * i // n_shards for i in range(n_shards + 1)]
    # Spans are ranges, not index lists: sized (so run_sharded's
    # small-work gate sees the true row count) but cheap to pickle.
    spans = [range(start, stop) for start, stop in zip(cuts[:-1], cuts[1:])]

    def join_shard(span: range) -> tuple[list[tuple], int, float]:
        start, stop = span.start, span.stop
        shard_started = time.perf_counter()
        indptr, positions, scores, counts = arrays.batch_set_sim_probe(
            left_arrays.matrix[start:stop],
            left_arrays.sizes[start:stop],
            array_index,
            measure,
            threshold,
            use_prefix_filter,
        )
        seconds = time.perf_counter() - shard_started
        position_list = positions.tolist()
        score_list = scores.tolist()
        boundaries = indptr.tolist()
        results = [
            (left_keys[start + row], right_keys[position_list[i]], score_list[i])
            for row in range(len(boundaries) - 1)
            for i in range(boundaries[row], boundaries[row + 1])
        ]
        return results, int(counts.sum()), seconds

    shard_outputs = run_sharded(spans, join_shard, n_jobs)
    rows = [row for results, _, _ in shard_outputs for row in results]
    n_candidates = sum(count for _, count, _ in shard_outputs)
    kernel_seconds = sum(seconds for _, _, seconds in shard_outputs)
    return rows, n_candidates, kernel_seconds


def set_sim_join(
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_column: str,
    r_column: str,
    tokenizer: Tokenizer,
    measure: str = "jaccard",
    threshold: float = 0.7,
    use_prefix_filter: bool = True,
    n_jobs: int = 1,
    kernel: str = "auto",
) -> Table:
    """Join two tables on set similarity of a tokenized string column.

    Returns a table with columns ``(_id, l_id, r_id, score)`` holding every
    pair whose similarity is at least ``threshold``.

    Parameters mirror py_stringsimjoin: the key columns identify rows, the
    join columns are tokenized with ``tokenizer``, and ``measure`` is one of
    ``jaccard``, ``cosine``, ``dice``, or ``overlap`` (absolute threshold).
    ``n_jobs`` fans the probe side out over a process pool (output is
    byte-identical to serial).  ``kernel`` selects the probe backend and
    verification strategy: ``"dict"`` (scalar backend, heuristic
    verification), ``"mask"`` (scalar, bitmask popcount), ``"merge"``
    (scalar, merge scan with early exit), ``"array"`` (batched columnar
    CSR kernels), or ``"auto"`` (policy choice between dict and array;
    every backend emits byte-identical results).
    """
    measure = validate_measure(measure)
    if measure != "overlap" and not 0.0 < threshold <= 1.0:
        raise ConfigurationError(
            f"threshold for {measure} must be in (0, 1], got {threshold}"
        )
    if measure == "overlap" and threshold < 1:
        raise ConfigurationError(f"overlap threshold must be >= 1, got {threshold}")
    if kernel not in KERNELS:
        raise ConfigurationError(f"kernel must be one of {KERNELS}, got {kernel!r}")

    join_started = time.perf_counter()

    # Every build-side artifact — tokenization, universe encodings,
    # prefix postings, verification masks — comes from the index store:
    # built once per content fingerprint, served to every later call.
    store = get_index_store()
    ltable.require_columns([l_key, l_column])
    rtable.require_columns([r_key, r_column])
    encoding = store.pair_encoding(
        store.tokenized_column(ltable, l_key, l_column, tokenizer),
        store.tokenized_column(rtable, r_key, r_column, tokenizer),
    )
    left_enc, right_enc = encoding.left, encoding.right

    from repro.perf.arrays import choose_backend, observe_kernel_batch

    if choose_backend(kernel, len(left_enc), len(right_enc)) == "array":
        rows, n_candidates, kernel_seconds = _set_sim_join_arrays(
            store, encoding, measure, threshold, use_prefix_filter, n_jobs
        )
        observe_kernel_batch(
            "set_sim_join", len(left_enc), n_candidates, kernel_seconds
        )
        _observe_join(
            "set_sim",
            measure,
            time.perf_counter() - join_started,
            probes=len(left_enc),
            candidates=n_candidates,
            survivors=len(rows),
        )
        return _result_table(rows)

    # Token id -> postings sorted by set size, held as parallel
    # (sizes, positions) lists so the probe's size filter is a bisect
    # window and candidate collection is a bulk set.update.
    index = store.prefix_index(encoding, measure, threshold, use_prefix_filter).index

    use_masks = kernel == "mask" or (
        kernel in ("auto", "dict")
        and len(encoding.universe) <= MASK_UNIVERSE_MAX
    )
    right_masks = store.right_masks(encoding) if use_masks else None
    scorer = make_scorer(measure)
    overlap_bound = make_overlap_bound(measure, threshold)

    def join_shard(shard: list[tuple]) -> tuple[list[tuple], int]:
        results: list[tuple] = []
        n_candidates = 0
        for l_id, left in shard:
            matches, count = probe_encoded(
                left, len(left), index, right_enc,
                right_masks if use_masks else None,
                scorer, overlap_bound, measure, threshold, use_prefix_filter,
            )
            n_candidates += count
            for r_id, score in matches:
                results.append((l_id, r_id, score))
        return results, n_candidates

    shards = split_evenly(left_enc, effective_n_jobs(n_jobs))
    shard_outputs = run_sharded(shards, join_shard, n_jobs)
    rows = [row for results, _ in shard_outputs for row in results]
    _observe_join(
        "set_sim",
        measure,
        time.perf_counter() - join_started,
        probes=len(left_enc),
        candidates=sum(count for _, count in shard_outputs),
        survivors=len(rows),
    )
    return _result_table(rows)


def naive_set_sim_join(
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_column: str,
    r_column: str,
    tokenizer: Tokenizer,
    measure: str = "jaccard",
    threshold: float = 0.7,
) -> Table:
    """Brute-force O(n*m) reference implementation of :func:`set_sim_join`."""
    measure = validate_measure(measure)
    left_records = list(_tokenize_column(ltable, l_key, l_column, tokenizer))
    right_records = list(_tokenize_column(rtable, r_key, r_column, tokenizer))
    results = []
    for l_id, left_tokens in left_records:
        for r_id, right_tokens in right_records:
            score = similarity(measure, left_tokens, right_tokens)
            if score >= threshold:
                results.append((l_id, r_id, score))
    return _result_table(results)


def edit_distance_join(
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_column: str,
    r_column: str,
    threshold: int = 2,
    q: int = 2,
    n_jobs: int = 1,
) -> Table:
    """Join rows whose string values are within edit distance ``threshold``.

    Candidate generation uses the classic q-gram count filter: strings
    within edit distance d share at least
    ``max(|x|, |y|) - q + 1 - q * d`` (positional-free) q-grams, plus the
    length filter ``||x| - |y|| <= d``.  Survivors are verified with exact
    Levenshtein distance; the output ``score`` column holds the distance.
    Q-gram bags are computed once per distinct string, and ``n_jobs``
    fans the probe side out over a process pool.
    """
    if threshold < 0:
        raise ConfigurationError(f"edit-distance threshold must be >= 0, got {threshold}")
    join_started = time.perf_counter()
    levenshtein = Levenshtein()

    store = get_index_store()
    left_records = store.string_records(ltable, l_key, l_column)
    right_records = store.string_records(rtable, r_key, r_column)

    # Repeated attribute values (cities, states) share one gram-count
    # bag; bags and the inverted index below are store artifacts, reused
    # across calls over the same content.
    left_bags = store.gram_bags(ltable, l_key, l_column, q)

    # The classic count filter bounds the *bag* overlap of q-grams, so the
    # index records per-record gram multiplicities and probing accumulates
    # min(left count, right count) per gram.
    index = store.gram_index(rtable, r_key, r_column, q).index
    # When max(|x|, |y|) <= q - 1 + q*d the count filter requires zero
    # shared q-grams, so short pairs are candidates even with no shared
    # gram and cannot be reached through the inverted index.
    vacuous_bound = q - 1 + q * threshold
    short_right = [
        position
        for position, (_, value) in enumerate(right_records)
        if len(value) <= vacuous_bound
    ]

    def join_shard(shard: list[tuple]) -> tuple[list[tuple], int]:
        results: list[tuple] = []
        n_candidates = 0
        for l_id, left_value in shard:
            counts: dict[int, int] = {}
            for gram, left_count in left_bags[left_value].items():
                for position, right_count in index.get(gram, ()):
                    counts[position] = counts.get(position, 0) + min(
                        left_count, right_count
                    )
            candidates = set(counts)
            if len(left_value) <= vacuous_bound:
                candidates.update(short_right)
            n_candidates += len(candidates)
            for position in sorted(candidates):
                r_id, right_value = right_records[position]
                if abs(len(left_value) - len(right_value)) > threshold:
                    continue
                required = max(len(left_value), len(right_value)) - q + 1 - q * threshold
                if required > 0 and counts.get(position, 0) < required:
                    continue
                distance = levenshtein.get_raw_score(left_value, right_value)
                if distance <= threshold:
                    results.append((l_id, r_id, distance))
        return results, n_candidates

    shards = split_evenly(left_records, effective_n_jobs(n_jobs))
    shard_outputs = run_sharded(shards, join_shard, n_jobs)
    rows = [row for results, _ in shard_outputs for row in results]
    _observe_join(
        "edit_distance",
        "levenshtein",
        time.perf_counter() - join_started,
        probes=len(left_records),
        candidates=sum(count for _, count in shard_outputs),
        survivors=len(rows),
    )
    return _result_table(rows)
