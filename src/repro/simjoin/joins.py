"""Set-similarity and edit-distance joins over tables.

The join algorithms follow the standard filter-verify design: tokenize,
apply the size filter, generate candidates through a prefix-filter inverted
index, and verify each candidate exactly.  ``naive_set_sim_join`` computes
the same result by brute force and exists as the benchmark baseline that
motivates this package (py_stringsimjoin in the paper).
"""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import ConfigurationError
from repro.simjoin.filters import (
    TokenOrder,
    overlap_lower_bound,
    prefix_length,
    similarity,
    size_bounds,
    validate_measure,
)
from repro.table.schema import is_missing
from repro.table.table import Table
from repro.text.sim.edit_based import Levenshtein
from repro.text.tokenizers import QgramTokenizer, Tokenizer

_OUTPUT_COLUMNS = ("_id", "l_id", "r_id", "score")


def _tokenize_column(table: Table, key: str, column: str, tokenizer: Tokenizer):
    """Yield (key, token_set) for each row with a non-missing value."""
    table.require_columns([key, column])
    keys = table.column(key)
    values = table.column(column)
    for row_key, value in zip(keys, values):
        if is_missing(value):
            continue
        yield row_key, set(tokenizer.tokenize(str(value)))


def _result_table(rows: list[tuple]) -> Table:
    table = Table.from_rows(
        (
            {"_id": i, "l_id": l_id, "r_id": r_id, "score": score}
            for i, (l_id, r_id, score) in enumerate(rows)
        ),
        columns=list(_OUTPUT_COLUMNS),
    )
    if table.num_rows == 0:
        table = Table({name: [] for name in _OUTPUT_COLUMNS})
    return table


def set_sim_join(
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_column: str,
    r_column: str,
    tokenizer: Tokenizer,
    measure: str = "jaccard",
    threshold: float = 0.7,
    use_prefix_filter: bool = True,
) -> Table:
    """Join two tables on set similarity of a tokenized string column.

    Returns a table with columns ``(_id, l_id, r_id, score)`` holding every
    pair whose similarity is at least ``threshold``.

    Parameters mirror py_stringsimjoin: the key columns identify rows, the
    join columns are tokenized with ``tokenizer``, and ``measure`` is one of
    ``jaccard``, ``cosine``, ``dice``, or ``overlap`` (absolute threshold).
    """
    measure = validate_measure(measure)
    if measure != "overlap" and not 0.0 < threshold <= 1.0:
        raise ConfigurationError(
            f"threshold for {measure} must be in (0, 1], got {threshold}"
        )
    if measure == "overlap" and threshold < 1:
        raise ConfigurationError(f"overlap threshold must be >= 1, got {threshold}")

    left_records = list(_tokenize_column(ltable, l_key, l_column, tokenizer))
    right_records = list(_tokenize_column(rtable, r_key, r_column, tokenizer))
    order = TokenOrder([tokens for _, tokens in left_records + right_records])

    # Index the right side: token -> [(row position, set size)].
    right_sets = [tokens for _, tokens in right_records]
    index: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for position, tokens in enumerate(right_sets):
        ordered = order.order(tokens)
        prefix = (
            ordered[: prefix_length(measure, threshold, len(ordered))]
            if use_prefix_filter
            else ordered
        )
        for token in prefix:
            index[token].append((position, len(tokens)))

    results: list[tuple] = []
    for l_id, left_tokens in left_records:
        if not left_tokens:
            continue
        lower, upper = size_bounds(measure, threshold, len(left_tokens))
        ordered = order.order(left_tokens)
        probe = (
            ordered[: prefix_length(measure, threshold, len(ordered))]
            if use_prefix_filter
            else ordered
        )
        candidates: set[int] = set()
        for token in probe:
            for position, size in index.get(token, ()):
                if lower <= size <= upper:
                    candidates.add(position)
        for position in candidates:
            right_tokens = right_sets[position]
            needed = overlap_lower_bound(
                measure, threshold, len(left_tokens), len(right_tokens)
            )
            if len(left_tokens & right_tokens) < needed:
                continue
            score = similarity(measure, left_tokens, right_tokens)
            if score >= threshold:
                results.append((l_id, right_records[position][0], score))
    return _result_table(results)


def naive_set_sim_join(
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_column: str,
    r_column: str,
    tokenizer: Tokenizer,
    measure: str = "jaccard",
    threshold: float = 0.7,
) -> Table:
    """Brute-force O(n*m) reference implementation of :func:`set_sim_join`."""
    measure = validate_measure(measure)
    left_records = list(_tokenize_column(ltable, l_key, l_column, tokenizer))
    right_records = list(_tokenize_column(rtable, r_key, r_column, tokenizer))
    results = []
    for l_id, left_tokens in left_records:
        for r_id, right_tokens in right_records:
            score = similarity(measure, left_tokens, right_tokens)
            if score >= threshold:
                results.append((l_id, r_id, score))
    return _result_table(results)


def edit_distance_join(
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    l_column: str,
    r_column: str,
    threshold: int = 2,
    q: int = 2,
) -> Table:
    """Join rows whose string values are within edit distance ``threshold``.

    Candidate generation uses the classic q-gram count filter: strings
    within edit distance d share at least
    ``max(|x|, |y|) - q + 1 - q * d`` (positional-free) q-grams, plus the
    length filter ``||x| - |y|| <= d``.  Survivors are verified with exact
    Levenshtein distance; the output ``score`` column holds the distance.
    """
    if threshold < 0:
        raise ConfigurationError(f"edit-distance threshold must be >= 0, got {threshold}")
    tokenizer = QgramTokenizer(q=q, padding=False)
    levenshtein = Levenshtein()

    def qgram_bag(value: str) -> list[str]:
        return tokenizer.tokenize(value)

    ltable.require_columns([l_key, l_column])
    rtable.require_columns([r_key, r_column])
    left_records = [
        (k, str(v))
        for k, v in zip(ltable.column(l_key), ltable.column(l_column))
        if not is_missing(v)
    ]
    right_records = [
        (k, str(v))
        for k, v in zip(rtable.column(r_key), rtable.column(r_column))
        if not is_missing(v)
    ]

    # The classic count filter bounds the *bag* overlap of q-grams, so the
    # index records per-record gram multiplicities and probing accumulates
    # min(left count, right count) per gram.
    from collections import Counter

    index: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for position, (_, value) in enumerate(right_records):
        for gram, count in Counter(qgram_bag(value)).items():
            index[gram].append((position, count))
    # When max(|x|, |y|) <= q - 1 + q*d the count filter requires zero
    # shared q-grams, so short pairs are candidates even with no shared
    # gram and cannot be reached through the inverted index.
    vacuous_bound = q - 1 + q * threshold
    short_right = [
        position
        for position, (_, value) in enumerate(right_records)
        if len(value) <= vacuous_bound
    ]

    results = []
    for l_id, left_value in left_records:
        counts: dict[int, int] = defaultdict(int)
        for gram, left_count in Counter(qgram_bag(left_value)).items():
            for position, right_count in index.get(gram, ()):
                counts[position] += min(left_count, right_count)
        candidates = set(counts)
        if len(left_value) <= vacuous_bound:
            candidates.update(short_right)
        for position in candidates:
            r_id, right_value = right_records[position]
            if abs(len(left_value) - len(right_value)) > threshold:
                continue
            required = max(len(left_value), len(right_value)) - q + 1 - q * threshold
            if required > 0 and counts.get(position, 0) < required:
                continue
            distance = levenshtein.get_raw_score(left_value, right_value)
            if distance <= threshold:
                results.append((l_id, r_id, distance))
    return _result_table(results)
