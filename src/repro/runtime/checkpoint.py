"""Fingerprint-keyed memoization and DAG-level checkpointing.

This generalizes :class:`repro.pipeline.CheckpointedRun` from "partitions
of one table" to "any node's declared artifacts": each checkpointable
operator's outputs are persisted under a structural fingerprint, so a
crashed run restarted against the same store resumes at the first
non-checkpointed node, and an unchanged node re-run in-process is served
from the in-memory memo without recomputing.

Fingerprints are *structural*: a node's fingerprint hashes its graph name,
node name, explicit ``key`` salt, and its dependencies' fingerprints —
not artifact contents (artifacts can be multi-gigabyte tables; hashing
them would cost more than many operators).  Callers that need
content-sensitivity salt the node ``key`` (e.g. with a dataset name or
config repr), exactly as ``CheckpointedRun`` keys on its ``run_id``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.exceptions import WorkflowError
from repro.runtime.graph import Operator, OperatorGraph


def fingerprint(*parts: Any) -> str:
    """A stable hex digest of the given parts (repr-based, order-sensitive)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:32]


def node_fingerprints(graph: OperatorGraph) -> dict[str, str]:
    """Fingerprint every node: hash of (graph, name, key, dep fingerprints)."""
    fingerprints: dict[str, str] = {}
    for name in graph.topological_order():
        operator = graph.nodes[name]
        fingerprints[name] = fingerprint(
            graph.name,
            name,
            operator.key,
            tuple(fingerprints[dep] for dep in operator.deps),
        )
    return fingerprints


class NodeMemo:
    """In-memory fingerprint-keyed cache of node outputs.

    Shared across runs in one process: re-running an unchanged graph (or a
    graph sharing a prefix with an earlier one) serves the unchanged
    nodes' declared outputs from memory and emits ``cache_hit`` events.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, fp: str) -> dict[str, Any] | None:
        entry = self._entries.get(fp)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(entry)

    def put(self, fp: str, outputs: dict[str, Any]) -> None:
        self._entries[fp] = dict(outputs)

    def __contains__(self, fp: str) -> bool:
        """Peek without touching the hit/miss counters (planner probes)."""
        return fp in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write via a temp file in the same directory + ``os.replace``.

    A crash mid-write leaves the previous file intact instead of a
    truncated one — the property the resume path depends on.
    """
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (temp file + rename)."""
    atomic_write_bytes(Path(path), text.encode("utf-8"))


class GraphCheckpoint:
    """On-disk DAG-level checkpoint store for one logical run.

    Layout under ``directory/<run_id>/``: one pickle per checkpointed node
    (its declared outputs) plus ``manifest.json`` mapping node name to its
    fingerprint and artifact file.  Manifest writes are atomic, so a crash
    at any point leaves a loadable manifest; artifact pickles are written
    before the manifest references them, so a referenced file always
    exists and is complete.
    """

    def __init__(self, run_id: str, directory: str | Path):
        self.run_id = run_id
        self.directory = Path(directory) / run_id
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / "manifest.json"

    # ------------------------------------------------------------------
    def _manifest(self) -> dict[str, Any]:
        if self._manifest_path.exists():
            return json.loads(self._manifest_path.read_text(encoding="utf-8"))
        return {"run_id": self.run_id, "nodes": {}}

    def _save_manifest(self, manifest: dict[str, Any]) -> None:
        atomic_write_text(self._manifest_path, json.dumps(manifest, indent=2))

    def completed_nodes(self) -> set[str]:
        """Names of nodes with a checkpoint from a previous (or this) run."""
        return set(self._manifest()["nodes"])

    # ------------------------------------------------------------------
    def can_checkpoint(self, operator: Operator) -> bool:
        return operator.checkpoint and bool(operator.outputs)

    def has(self, name: str, fp: str) -> bool:
        """Is a checkpoint with this exact fingerprint available?"""
        entry = self._manifest()["nodes"].get(name)
        if entry is None or entry["fingerprint"] != fp:
            return False
        return (self.directory / entry["file"]).exists()

    def save(self, name: str, fp: str, outputs: dict[str, Any]) -> None:
        """Persist a node's declared outputs under its fingerprint."""
        file_name = f"node_{_slug(name)}.pkl"
        atomic_write_bytes(
            self.directory / file_name, pickle.dumps(outputs, protocol=pickle.HIGHEST_PROTOCOL)
        )
        manifest = self._manifest()
        manifest["nodes"][name] = {"fingerprint": fp, "file": file_name}
        self._save_manifest(manifest)

    def restore(self, name: str) -> dict[str, Any]:
        """Load a node's checkpointed outputs."""
        entry = self._manifest()["nodes"].get(name)
        if entry is None:
            raise WorkflowError(
                f"run {self.run_id!r} has no checkpoint for node {name!r}"
            )
        with (self.directory / entry["file"]).open("rb") as handle:
            return pickle.load(handle)

    def invalidate(self, name: str) -> None:
        """Drop one node's checkpoint (e.g. after its inputs changed)."""
        manifest = self._manifest()
        entry = manifest["nodes"].pop(name, None)
        if entry is not None:
            self._save_manifest(manifest)
            try:
                (self.directory / entry["file"]).unlink()
            except OSError:
                pass


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
