"""The operator-DAG intermediate representation shared by every workflow stack.

The paper's Section 4.1 design principles call for one interoperable
execution substrate, and CloudMatcher's core idea (Section 5.1) is that
*every* EM workflow is a DAG of work units over shared state.  This module
is that substrate's IR: an :class:`OperatorGraph` of named
:class:`Operator` nodes, each an arbitrary callable over a shared artifact
store, with explicit data/ordering dependencies.  The three front-ends —
``pipeline.MagellanWorkflow`` (a chain), ``cloud`` (service DAGs sliced
into engine fragments), and ``falcon``/``smurf`` (fixed stage graphs) —
all compile to this IR and execute through :mod:`repro.runtime.executor`.

Dependencies must name already-added operators, so a graph is acyclic by
construction; topological order is deterministic (Kahn's algorithm with
insertion-order tie-breaking), which keeps serial runs, parallel runs, and
resumed runs byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, MutableMapping

from repro.exceptions import WorkflowError

ArtifactStore = MutableMapping[str, Any]


@dataclass(frozen=True)
class Operator:
    """One node of a runtime graph.

    ``fn(store)`` reads and writes the shared artifact store.  Its return
    value may be:

    * ``None`` — the operator communicated purely through store mutation;
    * a ``dict`` — artifact updates, merged into the store by the runner;
    * a ``float``/``int`` — *simulated* human/crowd seconds consumed (the
      CloudMatcher service convention); recorded on the node's events.

    ``outputs`` declares the store slots the operator writes.  Declared
    outputs are what DAG-level checkpointing persists and what a forked
    parallel worker ships back to the parent process, so an operator is
    checkpointable (``checkpoint=True`` and non-empty ``outputs``) or
    fork-safe (``isolated=True`` and non-empty ``outputs``) only when its
    effects are fully captured by those slots.

    ``commutes`` is a commutativity-group label: a *linear chain* of
    operators that all carry the same non-empty label declares that any
    ordering of the chain produces byte-identical final artifacts (the
    candidate-set-filter contract — each node keeps an order-preserving
    subset of the same slot, so composition is intersection and
    intersections commute).  The :mod:`repro.plan` optimizer may reorder
    such chains most-selective-first; an empty label (the default) opts
    out and is never reordered.
    """

    name: str
    fn: Callable[[ArtifactStore], Any]
    deps: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    description: str = ""
    retries: int = 0
    checkpoint: bool = True
    isolated: bool = False  # safe to execute in a forked worker process
    key: str = ""  # extra salt for the node fingerprint (versioning)
    commutes: str = ""  # commutativity group (see class docstring)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("operator name must be non-empty")
        if self.retries < 0:
            raise WorkflowError(f"operator {self.name!r}: retries must be >= 0")


class OperatorGraph:
    """A named DAG of operators over a shared artifact store."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: dict[str, Operator] = {}  # insertion-ordered
        self._successors: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        fn: Callable[[ArtifactStore], Any],
        deps: tuple[str, ...] | list[str] = (),
        outputs: tuple[str, ...] | list[str] = (),
        description: str = "",
        retries: int = 0,
        checkpoint: bool = True,
        isolated: bool = False,
        key: str = "",
        commutes: str = "",
    ) -> Operator:
        """Add an operator; ``deps`` must name already-added operators.

        Because every edge points backward to an existing node, the graph
        stays acyclic by construction.  Returns the new operator.
        """
        if name in self.nodes:
            raise WorkflowError(f"duplicate operator name {name!r} in graph {self.name!r}")
        for dep in deps:
            if dep not in self.nodes:
                raise WorkflowError(
                    f"operator {name!r} depends on unknown operator {dep!r}"
                )
        operator = Operator(
            name=name,
            fn=fn,
            deps=tuple(deps),
            outputs=tuple(outputs),
            description=description,
            retries=retries,
            checkpoint=checkpoint,
            isolated=isolated,
            key=key,
            commutes=commutes,
        )
        self.nodes[name] = operator
        self._successors[name] = []
        for dep in operator.deps:
            self._successors[dep].append(name)
        return operator

    def add_operator(self, operator: Operator) -> Operator:
        """Add a prebuilt :class:`Operator` (same validation as :meth:`add`)."""
        return self.add(
            operator.name,
            operator.fn,
            deps=operator.deps,
            outputs=operator.outputs,
            description=operator.description,
            retries=operator.retries,
            checkpoint=operator.checkpoint,
            isolated=operator.isolated,
            key=operator.key,
            commutes=operator.commutes,
        )

    # ------------------------------------------------------------------
    def predecessors(self, name: str) -> tuple[str, ...]:
        return self.node(name).deps

    def successors(self, name: str) -> list[str]:
        self.node(name)
        return list(self._successors[name])

    def node(self, name: str) -> Operator:
        try:
            return self.nodes[name]
        except KeyError:
            raise WorkflowError(
                f"graph {self.name!r} has no operator {name!r}; "
                f"have {sorted(self.nodes)}"
            ) from None

    def topological_order(self) -> list[str]:
        """Deterministic topological order (insertion order breaks ties)."""
        remaining = {name: len(op.deps) for name, op in self.nodes.items()}
        order: list[str] = []
        ready = [name for name in self.nodes if remaining[name] == 0]
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly_ready = []
            for successor in self._successors[name]:
                remaining[successor] -= 1
                if remaining[successor] == 0:
                    newly_ready.append(successor)
            # Keep insertion order among the newly ready.
            position = {n: i for i, n in enumerate(self.nodes)}
            ready = sorted(ready + newly_ready, key=position.__getitem__)
        if len(order) != len(self.nodes):
            raise WorkflowError(f"graph {self.name!r} contains a cycle")
        return order

    def subgraph(self, names: list[str] | tuple[str, ...], name: str | None = None) -> "OperatorGraph":
        """The induced subgraph on ``names``, dependencies restricted to it.

        External dependencies (on nodes outside ``names``) are dropped —
        the caller is responsible for having executed them already, which
        is exactly the fragment contract of the cloud metamanager.
        """
        selected = set(names)
        for node_name in names:
            self.node(node_name)
        sub = OperatorGraph(name or f"{self.name}[{len(selected)}]")
        for node_name in self.topological_order():
            if node_name not in selected:
                continue
            operator = self.nodes[node_name]
            sub.add(
                operator.name,
                operator.fn,
                deps=tuple(d for d in operator.deps if d in selected),
                outputs=operator.outputs,
                description=operator.description,
                retries=operator.retries,
                checkpoint=operator.checkpoint,
                isolated=operator.isolated,
                key=operator.key,
                commutes=operator.commutes,
            )
        return sub

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __repr__(self) -> str:
        return f"OperatorGraph({self.name!r}, {len(self.nodes)} nodes)"


def chain_graph(
    name: str,
    steps: list[tuple[str, Callable[[ArtifactStore], Any]]],
    checkpoint: bool = True,
) -> OperatorGraph:
    """A linear graph: each step depends on the previous one.

    The compilation target of :class:`repro.pipeline.MagellanWorkflow`.
    """
    graph = OperatorGraph(name)
    previous: tuple[str, ...] = ()
    for step_name, fn in steps:
        graph.add(step_name, fn, deps=previous, checkpoint=checkpoint)
        previous = (step_name,)
    return graph


@dataclass
class NodeRecord:
    """Execution record of one operator — the unified replacement for the
    three ad-hoc per-stack record schemes (``StepRecord``,
    ``FragmentExecution`` timings, logging lines)."""

    name: str
    seconds: float
    ok: bool
    error: str | None = None
    cached: bool = False
    sim_seconds: float = 0.0
    attempts: int = 1
    outputs: tuple[str, ...] = field(default_factory=tuple)
