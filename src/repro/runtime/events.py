"""Structured run-event stream for runtime-graph executions.

One schema for everything the three workflow stacks used to log three
different ways: every node start/finish/failure/retry, every cache hit and
checkpoint save/restore, with both wall-clock and *simulated* time (the
cloud metamanager schedules in simulated seconds because a fragment's cost
is dominated by human/crowd wait).  Events go to an in-memory list and to
any subscribed sinks, and every run can be exported as JSONL for offline
analysis — the paper's "logging ... monitoring" production concern.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

# Event types emitted by the runtime.
RUN_START = "run_start"
RUN_FINISH = "run_finish"
NODE_START = "node_start"
NODE_FINISH = "node_finish"
NODE_FAIL = "node_fail"
NODE_RETRY = "node_retry"
CACHE_HIT = "cache_hit"
CHECKPOINT_SAVED = "checkpoint_saved"
CHECKPOINT_RESTORED = "checkpoint_restored"

EVENT_TYPES = (
    RUN_START,
    RUN_FINISH,
    NODE_START,
    NODE_FINISH,
    NODE_FAIL,
    NODE_RETRY,
    CACHE_HIT,
    CHECKPOINT_SAVED,
    CHECKPOINT_RESTORED,
)


@dataclass
class RunEvent:
    """One structured record in a run's event stream."""

    event: str
    graph: str
    node: str | None = None
    at: float = 0.0  # wall-clock timestamp (time.time)
    wall_seconds: float = 0.0  # duration of the node's work, if any
    sim_seconds: float = 0.0  # simulated human/crowd seconds, if any
    sim_at: float = 0.0  # simulated-clock position (cloud scheduling)
    cached: bool = False
    rows_in: int = 0  # sized rows across the node's dep output slots
    rows_out: int = 0  # sized rows across the node's declared output slots
    error: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "event": self.event,
            "graph": self.graph,
            "node": self.node,
            "at": self.at,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "sim_at": self.sim_at,
            "cached": self.cached,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.extra:
            payload["extra"] = self.extra
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class EventStream:
    """An append-only stream of :class:`RunEvent` with subscribable sinks.

    Sinks are callables invoked synchronously on each emit; a sink raising
    is a programming error and propagates (events must not be silently
    lost).  The stream itself keeps every event in order, so one stream
    can be shared by many graph runs (the metamanager shares one across
    all engines and workflows).
    """

    def __init__(self) -> None:
        self.events: list[RunEvent] = []
        self._sinks: list[Callable[[RunEvent], None]] = []

    # ------------------------------------------------------------------
    def subscribe(self, sink: Callable[[RunEvent], None]) -> Callable[[RunEvent], None]:
        """Register a sink; returns it (handy for later :meth:`unsubscribe`)."""
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink: Callable[[RunEvent], None]) -> None:
        self._sinks = [s for s in self._sinks if s is not sink]

    def emit(self, event: RunEvent) -> RunEvent:
        if not event.at:
            event.at = time.time()
        self.events.append(event)
        for sink in self._sinks:
            sink(event)
        return event

    # ------------------------------------------------------------------
    def of(self, *event_types: str, node: str | None = None) -> list[RunEvent]:
        """Events filtered by type (and optionally by node name)."""
        return [
            e
            for e in self.events
            if (not event_types or e.event in event_types)
            and (node is None or e.node == node)
        ]

    def node_multiset(
        self, event_types: Iterable[str] = (NODE_START, NODE_FINISH, NODE_FAIL, CACHE_HIT)
    ) -> Counter:
        """Multiset of ``(graph, node, event)`` triples for per-node events.

        Schedule-invariant: serial and interleaved executions of the same
        workflows must produce equal multisets (a test asserts this).
        """
        wanted = set(event_types)
        return Counter(
            (e.graph, e.node, e.event)
            for e in self.events
            if e.node is not None and e.event in wanted
        )

    def node_timings(self, cached: bool = False) -> dict[tuple[str, str], float]:
        """Per-(graph, node) wall seconds, real and cached kept apart.

        By default sums only *real* execution time (finish/fail events);
        ``cached=True`` instead sums memo/checkpoint restore time
        (cache-hit events).  Conflating the two in one bucket would make
        a cached rerun look as expensive as the original execution, so
        profile output built on this method never mixes them.
        """
        wanted = (CACHE_HIT,) if cached else (NODE_FINISH, NODE_FAIL)
        timings: dict[tuple[str, str], float] = {}
        for e in self.events:
            if e.node is not None and e.event in wanted:
                timings[(e.graph, e.node)] = timings.get((e.graph, e.node), 0.0) + e.wall_seconds
        return timings

    # ------------------------------------------------------------------
    def write_jsonl(self, path: str | Path) -> Path:
        """Export the stream as one JSON object per line; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(event.to_json())
                handle.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load an exported event log back as a list of dicts."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]
