"""repro.runtime — the shared operator-DAG execution core.

One substrate under all three workflow stacks (Section 4.1's
interoperability principle applied to execution itself):

* :mod:`~repro.runtime.graph` — the typed operator-DAG IR;
* :mod:`~repro.runtime.executor` — serial and fork-parallel executors
  built on :mod:`repro.perf.parallel`;
* :mod:`~repro.runtime.events` — the structured run-event stream with
  JSONL export;
* :mod:`~repro.runtime.checkpoint` — fingerprint memoization and
  DAG-level checkpointing/crash recovery.

``pipeline.MagellanWorkflow`` compiles to a chain graph, the cloud
metamanager executes service fragments as runtime subgraphs, and
Falcon/Smurf express their stages as runtime graphs — three thin
front-ends, one execution core.  See ``docs/ARCHITECTURE.md``.
"""

from repro.runtime.checkpoint import (
    GraphCheckpoint,
    NodeMemo,
    atomic_write_bytes,
    atomic_write_text,
    fingerprint,
    node_fingerprints,
)
from repro.runtime.events import (
    CACHE_HIT,
    CHECKPOINT_RESTORED,
    CHECKPOINT_SAVED,
    EVENT_TYPES,
    NODE_FAIL,
    NODE_FINISH,
    NODE_RETRY,
    NODE_START,
    RUN_FINISH,
    RUN_START,
    EventStream,
    RunEvent,
    read_jsonl,
)
from repro.runtime.executor import (
    ParallelExecutor,
    RunResult,
    SerialExecutor,
    count_rows,
    run_graph,
)
from repro.runtime.graph import (
    ArtifactStore,
    NodeRecord,
    Operator,
    OperatorGraph,
    chain_graph,
)

__all__ = [
    "ArtifactStore",
    "CACHE_HIT",
    "CHECKPOINT_RESTORED",
    "CHECKPOINT_SAVED",
    "EVENT_TYPES",
    "EventStream",
    "GraphCheckpoint",
    "NODE_FAIL",
    "NODE_FINISH",
    "NODE_RETRY",
    "NODE_START",
    "NodeMemo",
    "NodeRecord",
    "Operator",
    "OperatorGraph",
    "ParallelExecutor",
    "RUN_FINISH",
    "RUN_START",
    "RunEvent",
    "RunResult",
    "SerialExecutor",
    "atomic_write_bytes",
    "atomic_write_text",
    "chain_graph",
    "count_rows",
    "fingerprint",
    "node_fingerprints",
    "read_jsonl",
    "run_graph",
]
