"""Executors for runtime operator graphs.

Two pluggable strategies over the same scheduling state:

* :class:`SerialExecutor` — one ready node at a time, in deterministic
  topological (insertion-tie-broken) order;
* :class:`ParallelExecutor` — waves of independent ready nodes fanned out
  on the fork-sharded pool of :mod:`repro.perf.parallel`, the same
  executor the similarity-join and feature-extraction kernels use.  Only
  operators marked ``isolated=True`` with declared ``outputs`` run in
  forked workers (their effects must be fully captured by those slots to
  survive the process boundary); everything else runs in-parent, so
  correctness never depends on an operator being fork-safe.

Both execute nodes exactly once, emit the same per-node event multiset,
and produce identical stores for deterministic operators — parallelism
changes wall-clock time, never results.

Ready-set tracking is incremental (remaining-predecessor counts
decremented on completion), not a rescan — O(V + E) over a whole run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ConfigurationError, WorkflowError
from repro.perf.parallel import run_sharded
from repro.runtime import events as ev
from repro.runtime.checkpoint import GraphCheckpoint, NodeMemo, node_fingerprints
from repro.runtime.events import EventStream, RunEvent
from repro.runtime.graph import ArtifactStore, NodeRecord, Operator, OperatorGraph


def count_rows(value: Any) -> int:
    """Best-effort row count of an artifact: tables and sized containers.

    Strings are deliberately *not* counted (a path or message is one
    artifact, not ``len(str)`` rows); anything without a row notion is 0.
    """
    num_rows = getattr(value, "num_rows", None)
    if isinstance(num_rows, int):
        return num_rows
    if isinstance(value, (str, bytes)):
        return 0
    try:
        return len(value)
    except TypeError:
        return 0


@dataclass
class RunResult:
    """Outcome of one graph execution."""

    graph: OperatorGraph
    store: ArtifactStore
    records: dict[str, NodeRecord]
    events: EventStream
    ok: bool = True
    first_error: BaseException | None = None

    def total_seconds(self) -> float:
        """Wall seconds spent executing (cache hits count their restore time)."""
        return sum(record.seconds for record in self.records.values())

    def sim_seconds(self) -> float:
        """Total simulated human/crowd seconds reported by the nodes."""
        return sum(record.sim_seconds for record in self.records.values())

    def failed_nodes(self) -> list[str]:
        return [name for name, record in self.records.items() if not record.ok]


class _RunState:
    """Shared scheduling/caching state driven by an executor."""

    def __init__(
        self,
        graph: OperatorGraph,
        store: ArtifactStore,
        events: EventStream,
        memo: NodeMemo | None,
        checkpoint: GraphCheckpoint | None,
        on_error: str,
        sim_at: float,
        before_node: Callable[[str], None] | None,
    ):
        self.graph = graph
        self.store = store
        self.events = events
        self.memo = memo
        self.checkpoint = checkpoint
        self.on_error = on_error
        self.sim_at = sim_at
        self.before_node = before_node
        self.fingerprints = node_fingerprints(graph)
        self.records: dict[str, NodeRecord] = {}
        self._position = {name: i for i, name in enumerate(graph.nodes)}
        self._remaining = {name: len(op.deps) for name, op in graph.nodes.items()}
        self._ready = sorted(
            (n for n, count in self._remaining.items() if count == 0),
            key=self._position.__getitem__,
        )
        self._done: set[str] = set()
        # rows_in must be sized *before* a node runs: filter-style
        # operators overwrite the very slot they read, so measuring after
        # the fact would always see selectivity 1.0.
        self._rows_in: dict[str, int] = {}
        self.first_error: BaseException | None = None
        self.halted = False

    # -- scheduling ----------------------------------------------------
    @property
    def pending(self) -> bool:
        return len(self._done) < len(self.graph.nodes)

    def ready_nodes(self) -> list[str]:
        if not self._ready and self.pending:
            raise WorkflowError(
                f"graph {self.graph.name!r} deadlocked: no ready operators "
                f"among {sorted(set(self.graph.nodes) - self._done)}"
            )
        return list(self._ready)

    def complete(self, name: str) -> None:
        """Mark a node done; decrement successors' remaining-dep counts."""
        self._done.add(name)
        self._ready.remove(name)
        newly_ready = []
        for successor in self.graph.successors(name):
            self._remaining[successor] -= 1
            if self._remaining[successor] == 0:
                newly_ready.append(successor)
        if newly_ready:
            self._ready = sorted(
                self._ready + newly_ready, key=self._position.__getitem__
            )

    # -- caching -------------------------------------------------------
    def try_cache(self, name: str) -> bool:
        """Serve a node from memo or checkpoint; True when it was a hit."""
        operator = self.graph.nodes[name]
        fp = self.fingerprints[name]
        started = time.perf_counter()
        if self.memo is not None and operator.outputs:
            outputs = self.memo.get(fp)
            if outputs is not None:
                self.store.update(outputs)
                seconds = time.perf_counter() - started
                if self.checkpoint is not None and self.checkpoint.can_checkpoint(operator) and not self.checkpoint.has(name, fp):
                    self.checkpoint.save(name, fp, outputs)
                self._emit_cache_hit(name, seconds, "memo")
                return True
        if self.checkpoint is not None and self.checkpoint.can_checkpoint(operator) and self.checkpoint.has(name, fp):
            outputs = self.checkpoint.restore(name)
            self.store.update(outputs)
            seconds = time.perf_counter() - started
            if self.memo is not None:
                self.memo.put(fp, outputs)
            self.events.emit(
                RunEvent(
                    ev.CHECKPOINT_RESTORED, self.graph.name, name,
                    wall_seconds=seconds, sim_at=self.sim_at, cached=True,
                )
            )
            self._emit_cache_hit(name, seconds, "checkpoint")
            return True
        return False

    def _emit_cache_hit(self, name: str, seconds: float, source: str) -> None:
        self.events.emit(
            RunEvent(
                ev.CACHE_HIT, self.graph.name, name,
                wall_seconds=seconds, sim_at=self.sim_at, cached=True,
                extra={"source": source},
            )
        )
        self.records[name] = NodeRecord(
            name, seconds, True, cached=True,
            outputs=self.graph.nodes[name].outputs,
        )
        self.complete(name)

    # -- execution (in-parent) -----------------------------------------
    def execute_in_parent(self, name: str) -> None:
        operator = self.graph.nodes[name]
        if self.before_node is not None:
            # Fault-injection/testing hook: an exception here simulates a
            # crash *between* nodes — nothing is recorded, it propagates.
            self.before_node(name)
        self._rows_in[name] = self._slot_rows(self._dep_output_slots(operator))
        self.events.emit(RunEvent(ev.NODE_START, self.graph.name, name, sim_at=self.sim_at))
        outcome = _attempt(operator, self.store)
        for _ in range(outcome.attempts - 1):
            self.events.emit(RunEvent(ev.NODE_RETRY, self.graph.name, name, sim_at=self.sim_at))
        self._finish(name, outcome)

    def _finish(self, name: str, outcome: "_Outcome", raise_on_error: bool = True) -> None:
        operator = self.graph.nodes[name]
        if outcome.error is None:
            if outcome.updates:
                self.store.update(outcome.updates)
            outputs = self._declared_outputs(operator)
            fp = self.fingerprints[name]
            if self.memo is not None and operator.outputs:
                self.memo.put(fp, outputs)
            if self.checkpoint is not None and self.checkpoint.can_checkpoint(operator):
                self.checkpoint.save(name, fp, outputs)
                self.events.emit(
                    RunEvent(ev.CHECKPOINT_SAVED, self.graph.name, name, sim_at=self.sim_at)
                )
            self.events.emit(
                RunEvent(
                    ev.NODE_FINISH, self.graph.name, name,
                    wall_seconds=outcome.seconds, sim_seconds=outcome.sim_seconds,
                    sim_at=self.sim_at,
                    rows_in=self._rows_in.pop(name, 0),
                    rows_out=self._slot_rows(operator.outputs),
                )
            )
            self.records[name] = NodeRecord(
                name, outcome.seconds, True, sim_seconds=outcome.sim_seconds,
                attempts=outcome.attempts, outputs=operator.outputs,
            )
        else:
            self.events.emit(
                RunEvent(
                    ev.NODE_FAIL, self.graph.name, name,
                    wall_seconds=outcome.seconds, sim_at=self.sim_at,
                    error=outcome.error_repr,
                )
            )
            self.records[name] = NodeRecord(
                name, outcome.seconds, False, error=outcome.error_repr,
                attempts=outcome.attempts, outputs=operator.outputs,
            )
            if self.first_error is None:
                self.first_error = outcome.error
        # With on_error="continue" a failed node still unblocks its
        # dependents — they depend on it for *ordering* (the captured-
        # script semantics of MagellanWorkflow.run(stop_on_error=False)).
        self.complete(name)
        if outcome.error is not None:
            if self.on_error == "halt":
                self.halted = True
            elif raise_on_error and self.on_error == "raise":
                raise outcome.error

    def _declared_outputs(self, operator: Operator) -> dict[str, Any]:
        missing = [slot for slot in operator.outputs if slot not in self.store]
        if missing:
            raise WorkflowError(
                f"operator {operator.name!r} declared outputs {missing} "
                f"but did not write them"
            )
        return {slot: self.store[slot] for slot in operator.outputs}

    def _dep_output_slots(self, operator: Operator) -> tuple[str, ...]:
        slots: list[str] = []
        for dep in operator.deps:
            slots.extend(self.graph.nodes[dep].outputs)
        return tuple(slots)

    def _slot_rows(self, slots: tuple[str, ...]) -> int:
        """Total sized rows across store slots (0 for unsized artifacts).

        Row counts feed the :mod:`repro.plan` selectivity estimates, so
        they are measured on whatever the operators actually exchange:
        tables by ``num_rows``, sized containers by ``len``, scalars as 0.
        """
        return sum(count_rows(self.store.get(slot)) for slot in slots)


@dataclass
class _Outcome:
    """What one node attempt loop produced (picklable across fork)."""

    seconds: float = 0.0
    sim_seconds: float = 0.0
    attempts: int = 1
    updates: dict[str, Any] | None = None
    error: BaseException | None = None
    error_repr: str | None = None


def _attempt(operator: Operator, store: ArtifactStore) -> _Outcome:
    """Run one operator with its retry budget; never raises."""
    started = time.perf_counter()
    attempts = 0
    while True:
        attempts += 1
        try:
            result = operator.fn(store)
        except Exception as exc:
            if attempts <= operator.retries:
                continue
            return _Outcome(
                seconds=time.perf_counter() - started, attempts=attempts,
                error=exc, error_repr=repr(exc),
            )
        # bool is an int subclass: a predicate-style operator returning
        # True must not be recorded as 1.0 simulated seconds.
        sim_seconds = (
            float(result)
            if isinstance(result, (int, float)) and not isinstance(result, bool)
            else 0.0
        )
        updates = result if isinstance(result, dict) else None
        return _Outcome(
            seconds=time.perf_counter() - started, sim_seconds=sim_seconds,
            attempts=attempts, updates=updates,
        )


class SerialExecutor:
    """Execute ready nodes one at a time, deterministically ordered."""

    def drive(self, state: _RunState) -> None:
        while state.pending and not state.halted:
            name = state.ready_nodes()[0]
            if state.try_cache(name):
                continue
            state.execute_in_parent(name)


class ParallelExecutor:
    """Execute independent ready nodes concurrently on a forked pool.

    Each scheduling wave takes every currently-ready node, serves cache
    hits, runs non-isolated nodes in-parent (store mutations and all),
    then fans the isolated ones out through
    :func:`repro.perf.parallel.run_sharded`; their declared outputs are
    shipped back and merged in deterministic node order.
    """

    def __init__(self, n_jobs: int = -1):
        if n_jobs == 0:
            raise ConfigurationError("n_jobs must be a non-zero int (got 0)")
        self.n_jobs = n_jobs

    def should_fork(self, state: "_RunState", name: str) -> bool:
        """Per-node executor selection: fork this node, or run in-parent?

        The base policy forks everything fork-safe.  The cost-based
        :class:`repro.plan.PlanExecutor` overrides this to keep
        measured-cheap nodes in-parent, where the fork round-trip would
        cost more than the node itself.
        """
        operator = state.graph.nodes[name]
        return operator.isolated and bool(operator.outputs)

    def drive(self, state: _RunState) -> None:
        while state.pending and not state.halted:
            wave = [n for n in state.ready_nodes() if not state.try_cache(n)]
            if not wave:
                continue  # the whole wave was cache hits
            forked = [n for n in wave if self.should_fork(state, n)]
            for name in wave:
                if name not in forked:
                    state.execute_in_parent(name)
                    if state.halted:
                        return
            if not forked:
                continue
            if state.before_node is not None:
                for name in forked:
                    state.before_node(name)
            for name in forked:
                state._rows_in[name] = state._slot_rows(
                    state._dep_output_slots(state.graph.nodes[name])
                )
                state.events.emit(
                    RunEvent(ev.NODE_START, state.graph.name, name, sim_at=state.sim_at)
                )

            def worker(name: str) -> _Outcome:
                outcome = _attempt(state.graph.nodes[name], state.store)
                if outcome.error is None:
                    # Ship only the declared output slots across the
                    # process boundary (plus any explicit dict updates,
                    # which _attempt already captured).
                    operator = state.graph.nodes[name]
                    if outcome.updates:
                        state.store.update(outcome.updates)
                    outcome.updates = {
                        slot: state.store[slot]
                        for slot in operator.outputs
                        if slot in state.store
                    }
                outcome.error = None  # exceptions may not pickle; repr travels
                return outcome

            outcomes = run_sharded(forked, worker, n_jobs=self.n_jobs)
            for name, outcome in zip(forked, outcomes):
                for _ in range(outcome.attempts - 1):
                    state.events.emit(
                        RunEvent(ev.NODE_RETRY, state.graph.name, name, sim_at=state.sim_at)
                    )
                if outcome.error_repr is not None:
                    outcome.error = WorkflowError(
                        f"operator {name!r} failed in a forked worker: "
                        f"{outcome.error_repr}"
                    )
                # Record every result of the wave before raising, so the
                # event stream reflects work that actually happened.
                state._finish(name, outcome, raise_on_error=False)
            if state.on_error == "raise" and state.first_error is not None:
                raise state.first_error


Executor = SerialExecutor | ParallelExecutor


def run_graph(
    graph: OperatorGraph,
    store: ArtifactStore | None = None,
    *,
    executor: Executor | None = None,
    events: EventStream | None = None,
    memo: NodeMemo | None = None,
    checkpoint: GraphCheckpoint | None = None,
    on_error: str = "raise",
    sim_at: float = 0.0,
    before_node: Callable[[str], None] | None = None,
) -> RunResult:
    """Execute a runtime graph; returns the run result.

    ``store`` is the shared artifact dict (created empty when omitted and
    mutated in place otherwise).  ``events`` collects the structured run
    stream; ``memo`` adds in-process fingerprint memoization; ``checkpoint``
    adds DAG-level crash recovery (see :mod:`repro.runtime.checkpoint`).
    ``on_error`` is ``"raise"`` (default: first failure propagates after
    being recorded), ``"continue"`` (failures are recorded, dependents
    still run — the captured-script semantics), or ``"halt"`` (the first
    failure stops scheduling, the run returns normally, and the exception
    is available as ``RunResult.first_error`` for the caller to re-raise
    after inspecting the records).  ``before_node`` is a
    testing/fault-injection hook called with each node name immediately
    before it executes; exceptions it raises simulate a crash and
    propagate unrecorded.
    """
    if on_error not in ("raise", "continue", "halt"):
        raise ConfigurationError(
            f"on_error must be 'raise', 'continue', or 'halt', got {on_error!r}"
        )
    state = _RunState(
        graph=graph,
        store={} if store is None else store,
        events=events if events is not None else EventStream(),
        memo=memo,
        checkpoint=checkpoint,
        on_error=on_error,
        sim_at=sim_at,
        before_node=before_node,
    )
    # Node timings/counters land in the metrics registry automatically;
    # the sink lives only for this run so shared streams (the metamanager
    # reuses one across fragments) are never double-subscribed.  Imported
    # here because repro.obs itself builds on repro.runtime.events.
    from repro.obs.sinks import metrics_sink

    sink = state.events.subscribe(metrics_sink())
    state.events.emit(RunEvent(ev.RUN_START, graph.name, sim_at=sim_at))
    try:
        (executor or SerialExecutor()).drive(state)
    finally:
        state.events.emit(
            RunEvent(
                ev.RUN_FINISH, graph.name, sim_at=sim_at,
                wall_seconds=sum(r.seconds for r in state.records.values()),
                sim_seconds=sum(r.sim_seconds for r in state.records.values()),
            )
        )
        state.events.unsubscribe(sink)
    return RunResult(
        graph=graph,
        store=state.store,
        records=state.records,
        events=state.events,
        ok=all(record.ok for record in state.records.values()),
        first_error=state.first_error,
    )
