"""Token dictionary encoding: strings to dense, frequency-ranked int ids.

A :class:`TokenUniverse` assigns every distinct token of a corpus a dense
integer id, ranked by ascending corpus frequency (ties broken lexically).
Because rare tokens get small ids, a record encoded as a *sorted* tuple of
ids is already in the canonical prefix-filter order: its most selective
tokens come first, and taking a prefix is a slice instead of a keyed sort.

This subsumes ``TokenOrder`` in :mod:`repro.simjoin.filters`, which is now
a thin wrapper kept for its public string-level API.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


class TokenUniverse:
    """Dense integer ids for tokens, ranked by ascending global frequency.

    The corpus is an iterable of token iterables (one per record); each
    record contributes each of its distinct tokens once to the frequency
    count, exactly as a sim join's prefix ordering requires.
    """

    __slots__ = ("_ids", "_tokens")

    def __init__(self, corpus: Iterable[Iterable[str]] = ()):
        frequency: Counter[str] = Counter()
        for record in corpus:
            frequency.update(set(record))
        ranked = sorted(frequency.items(), key=lambda item: (item[1], item[0]))
        self._tokens = [token for token, _ in ranked]
        self._ids = {token: i for i, token in enumerate(self._tokens)}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def token_id(self, token: str) -> int:
        """The dense id of a known token (raises ``KeyError`` if unknown)."""
        return self._ids[token]

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Map ids back to tokens (debugging / explain output)."""
        return [self._tokens[i] for i in ids]

    def encode(self, tokens: Iterable[str]) -> tuple[int, ...]:
        """Distinct tokens as a sorted tuple of ids (rarest first).

        Every token must be known to the universe; joins build the
        universe over both sides first, so an unknown token here is a
        programming error and raises ``KeyError``.
        """
        ids = self._ids
        return tuple(sorted({ids[token] for token in tokens}))

    def encode_known(self, tokens: Iterable[str]) -> tuple[int, ...]:
        """Like :meth:`encode`, but silently drops unknown tokens.

        The online serving path encodes ad-hoc queries against a corpus
        universe built before the query existed; out-of-vocabulary tokens
        can never overlap a corpus record, so dropping them from the
        probe is lossless — callers must still score with the query's
        *true* token count (see ``probe_encoded``'s ``left_size``).
        """
        ids = self._ids
        return tuple(sorted({ids[token] for token in tokens if token in ids}))

    # ------------------------------------------------------------------
    # String-level ordering API (TokenOrder compatibility)
    # ------------------------------------------------------------------
    def rank(self, token: str) -> tuple[int, str]:
        """Sort key for a token; unknown tokens sort first (rarest)."""
        return (self._ids.get(token, -1) + 1, token)

    def order(self, tokens: Iterable[str]) -> list[str]:
        """Distinct tokens sorted by the global ordering."""
        return sorted(set(tokens), key=self.rank)
