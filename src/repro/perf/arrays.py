"""Columnar CSR kernels: the batched "array" backend of the hot paths.

Every per-pair loop in the substrate — :func:`probe_encoded`'s
candidate collection and verification, the sparse-dict cosine in
:mod:`repro.text.vectorize`, banded-LSH signatures in
:mod:`repro.index.ann` — has a columnar twin here that processes a
*batch* of probes as a handful of ``numpy``/``scipy`` matrix operations
instead of millions of interpreter steps:

* encoded corpora become CSR token-incidence matrices (``indptr``/
  ``indices`` postings, int64 counts as data), registered in
  :class:`repro.index.IndexStore` as fingerprinted artifacts beside the
  dict/tuple chain;
* overlap counts for a whole probe batch are one sparse matmul
  (``probe @ corpus.T``) producing **exact ints**, so the scalar score
  formulas reproduce bit-identical floats;
* size-window and prefix bounds are vectorized replicas of
  :mod:`repro.simjoin.filters` — same operations, in the same order, on
  the same values, so every bound decision matches the scalar kernel
  decision-for-decision;
* cosine scoring against a vector corpus accumulates shared buckets in
  ascending bucket order, matching the canonicalized scalar
  :func:`repro.text.vectorize.sparse_dot`.

**Byte-identity is the contract**, not an aspiration: for any corpus
and any probe batch, the array backend emits the same survivors with
the same float scores in the same order as the dict backend
(property-tested in ``tests/test_kernel_arrays.py``).  Two deliberate
consequences: vector data stays ``float64`` (a ``float32`` CSR would
save half the memory but break identity with the scalar ``float``
kernels), and sparse products are re-sorted (``sort_indices``) before
ordered emission because scipy does not guarantee sorted indices on
matmul results.

The backend is optional at runtime: without ``numpy``/``scipy`` the
module imports cleanly, ``HAVE_ARRAYS`` is ``False``, ``kernel="auto"``
always resolves to the dict backend, and ``kernel="array"`` raises
:class:`~repro.exceptions.ConfigurationError`.

Observability: callers report batched kernel calls through
:func:`observe_kernel_batch` (``kernel_batch_calls_total{op}``,
``kernel_batch_rows_total{op}``, ``kernel_batch_candidates_total{op}``,
``kernel_batch_seconds{op}``).  Forked join shards return their stats
to the parent, which emits — a counter bumped inside a forked worker
would die with the fork.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.obs import get_registry
from repro.perf.kernels import BOUND_EPS, ceil_bound

try:  # pragma: no cover - exercised implicitly by every array test
    import numpy as np
    from scipy import sparse as _sparse

    HAVE_ARRAYS = True
except ImportError:  # pragma: no cover - the container bakes both in
    np = None
    _sparse = None
    HAVE_ARRAYS = False

#: The concrete backends a kernel request can resolve to.
ARRAY_BACKENDS = ("dict", "array")

#: Upper bound on sparse-product entries materialized per probe chunk.
#: Chunking the probe side bounds the worst case where many rows share
#: hot tokens and the overlap matmul densifies.
CHUNK_TARGET_NNZ = 1 << 22


def require_arrays() -> None:
    """Raise when the array backend was requested but cannot run."""
    if not HAVE_ARRAYS:
        raise ConfigurationError(
            "kernel='array' requires numpy and scipy; neither is importable "
            "in this environment (use kernel='dict' or kernel='auto')"
        )


# ----------------------------------------------------------------------
# Kernel selection: policy, plan override, resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelPolicy:
    """When ``kernel="auto"`` picks the array backend.

    Batching has fixed costs (CSR construction or slicing, one pass of
    chunk bookkeeping) that a single point probe against a small corpus
    never amortizes; the thresholds are the measured break-even
    neighbourhood on this substrate (see ``docs/PERFORMANCE.md``).
    """

    min_probe_rows: int = 8
    min_index_rows: int = 64


DEFAULT_KERNEL_POLICY = KernelPolicy()

# Process-global kernel override, set by the plan executor around nodes
# whose observed stats favour one backend.  Both backends are
# byte-identical, so the override is a pure performance hint: reading a
# racy value can never change a result, only its speed.
_KERNEL_OVERRIDE: str | None = None


def kernel_override() -> str | None:
    """The active process-global backend override (``None`` when unset)."""
    return _KERNEL_OVERRIDE


def set_kernel_override(backend: str | None) -> str | None:
    """Force ``kernel="auto"`` call sites onto one backend; returns previous.

    ``None`` restores policy-based resolution.  This is the hook
    :mod:`repro.plan` uses to apply per-node kernel decisions without
    threading a parameter through every operator closure.
    """
    global _KERNEL_OVERRIDE
    if backend is not None and backend not in ARRAY_BACKENDS:
        raise ConfigurationError(
            f"kernel override must be one of {ARRAY_BACKENDS} or None, got {backend!r}"
        )
    previous = _KERNEL_OVERRIDE
    _KERNEL_OVERRIDE = backend
    return previous


@contextmanager
def use_kernel(backend: str | None) -> Iterator[None]:
    """Scope a kernel override (see :func:`set_kernel_override`)."""
    previous = set_kernel_override(backend)
    try:
        yield
    finally:
        set_kernel_override(previous)


def choose_backend(
    kernel: str,
    n_probe_rows: int,
    n_index_rows: int,
    policy: KernelPolicy = DEFAULT_KERNEL_POLICY,
) -> str:
    """Resolve a public ``kernel=`` knob to ``"dict"`` or ``"array"``.

    ``"mask"``/``"merge"`` (the legacy dict-kernel variants) and
    ``"dict"`` pin the dict backend; ``"array"`` requires the array
    stack; ``"auto"`` follows the plan override when set, otherwise the
    policy thresholds.
    """
    if kernel in ("dict", "mask", "merge"):
        return "dict"
    if kernel == "array":
        require_arrays()
        return "array"
    override = _KERNEL_OVERRIDE
    if override == "dict":
        return "dict"
    if override == "array" and HAVE_ARRAYS:
        return "array"
    if (
        HAVE_ARRAYS
        and n_probe_rows >= policy.min_probe_rows
        and n_index_rows >= policy.min_index_rows
    ):
        return "array"
    return "dict"


def observe_kernel_batch(op: str, rows: int, candidates: int, seconds: float) -> None:
    """Account one batched kernel call on the process registry."""
    registry = get_registry()
    registry.counter("kernel_batch_calls_total", op=op).inc()
    registry.counter("kernel_batch_rows_total", op=op).inc(rows)
    registry.counter("kernel_batch_candidates_total", op=op).inc(candidates)
    registry.histogram("kernel_batch_seconds", op=op).observe(seconds)


# ----------------------------------------------------------------------
# Vectorized bound replicas of repro.simjoin.filters
#
# Each function performs the *same floating-point operations in the same
# order* as its scalar twin (coefficients precomputed in Python floats,
# int sums before float conversion, np.sqrt == math.sqrt, np.ceil ==
# math.ceil), so the int bounds are equal element-for-element.
# ----------------------------------------------------------------------
def _ceil_bound(values):
    """Vector twin of :func:`repro.perf.kernels.ceil_bound`."""
    return np.ceil(values - BOUND_EPS).astype(np.int64)


def size_bounds_arrays(measure: str, threshold: float, sizes):
    """Per-row (lower, widened upper) partner-size window.

    Mirrors :func:`repro.simjoin.filters.size_bounds` with the caller's
    ``upper += BOUND_EPS`` widening already applied, matching the
    comparison the dict probe performs.
    """
    sizes_f = sizes.astype(np.float64)
    if measure == "jaccard":
        lower = _ceil_bound(threshold * sizes_f)
        upper = sizes_f / threshold
    elif measure == "cosine":
        squared = threshold * threshold
        lower = _ceil_bound(squared * sizes_f)
        upper = sizes_f / squared
    elif measure == "dice":
        lower = _ceil_bound(threshold / (2.0 - threshold) * sizes_f)
        upper = (2.0 - threshold) / threshold * sizes_f
    else:  # overlap
        lower = np.full(len(sizes), ceil_bound(threshold), dtype=np.int64)
        upper = np.full(len(sizes), math.inf, dtype=np.float64)
    return lower, upper + BOUND_EPS


def overlap_bounds_arrays(measure: str, threshold: float, left_sizes, right_sizes):
    """Vector twin of :func:`repro.simjoin.filters.overlap_lower_bound`."""
    if measure == "jaccard":
        coefficient = threshold / (1.0 + threshold)
        return _ceil_bound(coefficient * (left_sizes + right_sizes).astype(np.float64))
    if measure == "cosine":
        return _ceil_bound(
            threshold * np.sqrt((left_sizes * right_sizes).astype(np.float64))
        )
    if measure == "dice":
        coefficient = threshold / 2.0
        return _ceil_bound(coefficient * (left_sizes + right_sizes).astype(np.float64))
    return np.full(len(left_sizes), ceil_bound(threshold), dtype=np.int64)


def prefix_lengths_arrays(measure: str, threshold: float, sizes):
    """Vector twin of :func:`repro.simjoin.filters.prefix_length`."""
    if measure == "overlap":
        lengths = np.maximum(sizes - ceil_bound(threshold) + 1, 0)
    else:
        lower, _ = size_bounds_arrays(measure, threshold, sizes)
        lower = np.maximum(lower, 1)
        bound = overlap_bounds_arrays(measure, threshold, sizes, lower)
        lengths = np.maximum(sizes - bound + 1, 0)
    return np.where(sizes == 0, 0, lengths)


def scores_arrays(measure: str, overlap, left_sizes, right_sizes):
    """Vector twin of :func:`repro.perf.kernels.make_scorer`.

    All inputs are exact int64; int64 true division, ``np.sqrt``, and
    float64 elementwise products are IEEE-correctly-rounded, so each
    element equals the scalar formula's float bit-for-bit.
    """
    if measure == "jaccard":
        return overlap / (left_sizes + right_sizes - overlap)
    if measure == "cosine":
        return overlap / np.sqrt((left_sizes * right_sizes).astype(np.float64))
    if measure == "dice":
        return (2.0 * overlap) / (left_sizes + right_sizes)
    return overlap.astype(np.float64)


# ----------------------------------------------------------------------
# CSR corpus structures
# ----------------------------------------------------------------------
class ArrayRecords:
    """One side's encoded records as a CSR token-incidence matrix.

    Row *i* holds record *i*'s sorted token ids as CSR indices with
    int64 ones as data; ``sizes[i]`` is the record's distinct-token
    count.  A picklable :class:`~repro.index.IndexStore` artifact.
    """

    __slots__ = ("key", "keys", "sizes", "matrix", "dim")

    def __init__(self, key: str, keys: list, sizes, matrix, dim: int):
        self.key = key
        self.keys = keys
        self.sizes = sizes
        self.matrix = matrix
        self.dim = dim


class ArrayIndex:
    """The corpus (right) side prepared for batched probing.

    Pre-transposed full and prefix incidence matrices (``dim x n_rows``)
    so a probe batch hits scipy's ``csr @ csr`` fast path, plus the
    per-record sizes the size filter windows over.  Keyed like the dict
    :class:`~repro.index.store.PrefixIndex` by (encoding, measure,
    threshold, use_prefix_filter).
    """

    __slots__ = ("key", "keys", "sizes", "full_t", "prefix_t", "n_rows", "dim")

    def __init__(self, key: str, keys: list, sizes, full_t, prefix_t, dim: int):
        self.key = key
        self.keys = keys
        self.sizes = sizes
        self.full_t = full_t
        self.prefix_t = prefix_t
        self.n_rows = len(keys)
        self.dim = dim


def build_array_records(
    key: str, records: Sequence[tuple[Any, tuple[int, ...]]], dim: int
) -> ArrayRecords:
    """Materialize ``[(row_key, sorted ids)]`` as an :class:`ArrayRecords`."""
    require_arrays()
    n_rows = len(records)
    width = max(dim, 1)
    keys = [row_key for row_key, _ in records]
    sizes = np.fromiter(
        (len(ids) for _, ids in records), dtype=np.int64, count=n_rows
    )
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.fromiter(
        (token for _, ids in records for token in ids), dtype=np.int64, count=total
    )
    matrix = _sparse.csr_matrix(
        (np.ones(total, dtype=np.int64), indices, indptr), shape=(n_rows, width)
    )
    return ArrayRecords(key, keys, sizes, matrix, width)


def csr_prefix_slice(matrix, lengths):
    """Per-row head slice of a CSR matrix (row *i* keeps ``lengths[i]``).

    Token ids are stored sorted, so the head of a row *is* its prefix
    under the global frequency ordering — the same slice the dict
    backend takes of the encoded tuple.
    """
    indptr = matrix.indptr.astype(np.int64)
    counts = np.minimum(np.asarray(lengths, dtype=np.int64), np.diff(indptr))
    new_indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    total = int(new_indptr[-1])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(new_indptr[:-1], counts)
    take = np.repeat(indptr[:-1], counts) + offsets
    return _sparse.csr_matrix(
        (np.ones(total, dtype=matrix.data.dtype), matrix.indices[take], new_indptr),
        shape=matrix.shape,
    )


def build_array_index(
    key: str,
    arrays: ArrayRecords,
    measure: str,
    threshold: float,
    use_prefix_filter: bool = True,
) -> ArrayIndex:
    """Prepare one side's :class:`ArrayRecords` as the probed corpus."""
    require_arrays()
    full_t = arrays.matrix.T.tocsr()
    full_t.sort_indices()
    if use_prefix_filter:
        lengths = prefix_lengths_arrays(measure, threshold, arrays.sizes)
        prefix_t = csr_prefix_slice(arrays.matrix, lengths).T.tocsr()
        prefix_t.sort_indices()
    else:
        prefix_t = full_t
    return ArrayIndex(key, arrays.keys, arrays.sizes, full_t, prefix_t, arrays.dim)


def build_probe_matrix(rows: Sequence[Sequence[int]], dim: int):
    """A CSR probe matrix from encoded query rows (serving batches).

    Token ids at or past ``dim`` — a live index's extension ids, which
    cannot occur in the base corpus — are dropped; they are sorted to
    the tail of each row, so the surviving head is exactly the ids the
    dict probe could match, and prefix slicing over it matches the dict
    prefix minus its no-op tail.
    """
    require_arrays()
    width = max(dim, 1)
    kept = [ids[: bisect_left(ids, width)] for ids in rows]
    counts = np.fromiter((len(ids) for ids in kept), dtype=np.int64, count=len(kept))
    indptr = np.zeros(len(kept) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.fromiter(
        (token for ids in kept for token in ids), dtype=np.int64, count=total
    )
    return _sparse.csr_matrix(
        (np.ones(total, dtype=np.int64), indices, indptr), shape=(len(kept), width)
    )


def skip_mask(skip, n_rows: int):
    """A boolean tombstone mask over corpus positions (``None`` passthrough)."""
    if not skip:
        return None
    mask = np.zeros(n_rows, dtype=bool)
    mask[list(skip)] = True
    return mask


# ----------------------------------------------------------------------
# The batched filter-verify probe
# ----------------------------------------------------------------------
def batch_set_sim_probe(
    probe_matrix,
    true_sizes,
    index: ArrayIndex,
    measure: str,
    threshold: float,
    use_prefix_filter: bool = True,
    skip=None,
):
    """Filter-verify a probe batch against an :class:`ArrayIndex`.

    The columnar twin of :func:`repro.simjoin.joins.probe_encoded`, row
    for row: per probe row the candidate set (size window over rows
    sharing a prefix token, minus tombstones), candidate count, survivor
    set, scores, and right-position emission order all equal the scalar
    kernel's exactly.

    ``true_sizes`` are the probes' true distinct-token counts (which can
    exceed row nnz when queries carry out-of-universe tokens).  ``skip``
    is an optional boolean mask over corpus positions (tombstones).

    Returns ``(result_indptr, positions, scores, candidate_counts)``:
    flat survivor arrays sorted by (probe row, corpus position), sliced
    per probe row by ``result_indptr``, plus the per-row post-window
    post-skip candidate counts.
    """
    n_probe = probe_matrix.shape[0]
    n_rows = index.n_rows
    lower, upper = size_bounds_arrays(measure, threshold, true_sizes)
    if use_prefix_filter:
        lengths = prefix_lengths_arrays(measure, threshold, true_sizes)
        prefix_matrix = csr_prefix_slice(probe_matrix, lengths)
    else:
        prefix_matrix = probe_matrix
    # Prefix == full on both sides means the candidate product already
    # holds exact overlaps; skip the second matmul.
    counts_from_candidates = (
        prefix_matrix is probe_matrix and index.prefix_t is index.full_t
    )

    out_rows: list = []
    out_cols: list = []
    out_scores: list = []
    candidate_counts = np.zeros(n_probe, dtype=np.int64)

    # Chunk the probe side so a hot shared token cannot densify the
    # sparse products beyond a bounded working set.
    chunk = max(16, min(4096, CHUNK_TARGET_NNZ // max(n_rows, 1)))
    for start in range(0, n_probe, chunk):
        stop = min(start + chunk, n_probe)
        span = stop - start
        cand = prefix_matrix[start:stop] @ index.prefix_t
        cand.sort_indices()
        rows = np.repeat(
            np.arange(span, dtype=np.int64), np.diff(cand.indptr)
        )
        cols = cand.indices.astype(np.int64)
        right_sizes = index.sizes[cols]
        keep = (right_sizes >= lower[start:stop][rows]) & (
            right_sizes <= upper[start:stop][rows]
        )
        if skip is not None:
            keep &= ~skip[cols]
        if counts_from_candidates:
            overlap_all = cand.data.astype(np.int64)
        rows = rows[keep]
        cols = cols[keep]
        if len(rows) == 0:
            continue
        candidate_counts[start:stop] = np.bincount(rows, minlength=span)
        if counts_from_candidates:
            overlap = overlap_all[keep]
        else:
            counts = probe_matrix[start:stop] @ index.full_t
            counts.sort_indices()
            count_rows = np.repeat(
                np.arange(span, dtype=np.int64), np.diff(counts.indptr)
            )
            count_keys = count_rows * n_rows + counts.indices.astype(np.int64)
            # Every candidate shares a prefix token, hence at least one
            # full token: its (row, col) is guaranteed present.
            at = np.searchsorted(count_keys, rows * n_rows + cols)
            overlap = counts.data[at].astype(np.int64)
        left_sizes = true_sizes[start:stop][rows]
        scores = scores_arrays(measure, overlap, left_sizes, index.sizes[cols])
        survived = scores >= threshold
        out_rows.append(rows[survived] + start)
        out_cols.append(cols[survived])
        out_scores.append(scores[survived])

    if out_rows:
        rows = np.concatenate(out_rows)
        positions = np.concatenate(out_cols)
        scores = np.concatenate(out_scores)
    else:
        rows = np.zeros(0, dtype=np.int64)
        positions = np.zeros(0, dtype=np.int64)
        scores = np.zeros(0, dtype=np.float64)
    result_indptr = np.zeros(n_probe + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n_probe), out=result_indptr[1:])
    return result_indptr, positions, scores, candidate_counts


def emit_matches(
    result_indptr, positions, scores, keys: Sequence[Any]
) -> list[list[tuple[Any, float]]]:
    """Per-probe-row ``[(corpus key, score)]`` lists from flat survivor arrays.

    ``.tolist()`` converts ``float64`` to the identical Python float, so
    emitted scores match the scalar kernel's bit-for-bit.
    """
    position_list = positions.tolist()
    score_list = scores.tolist()
    boundaries = result_indptr.tolist()
    return [
        [
            (keys[position_list[i]], score_list[i])
            for i in range(boundaries[row], boundaries[row + 1])
        ]
        for row in range(len(boundaries) - 1)
    ]


# ----------------------------------------------------------------------
# Batched cosine over sparse-dict vector corpora
# ----------------------------------------------------------------------
class SparseColumns:
    """A vector corpus flipped to bucket-major (CSC-style) numpy columns.

    ``columns[bucket] = (positions, weights)``; scoring one query
    against many corpus rows walks the query's buckets in ascending
    order and accumulates each column with one vectorized add —
    bit-identical to the canonical scalar :func:`sparse_dot` per pair
    (shared buckets accumulate in the same ascending order; absent
    buckets add exact zeros, which cannot perturb a sum of nonnegative
    products).
    """

    __slots__ = ("n_rows", "columns")

    def __init__(self, vectors: Sequence[dict]):
        require_arrays()
        self.n_rows = len(vectors)
        staged: dict[int, tuple[list, list]] = {}
        for position, vector in enumerate(vectors):
            for bucket, weight in vector.items():
                entry = staged.get(bucket)
                if entry is None:
                    entry = staged[bucket] = ([], [])
                entry[0].append(position)
                entry[1].append(weight)
        self.columns = {
            bucket: (
                np.asarray(positions, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )
            for bucket, (positions, weights) in staged.items()
        }


def batch_cosine(query: dict, corpus: SparseColumns):
    """Cosine of one query vector against every corpus row (dense out).

    Rows sharing no bucket with the query score exactly ``0.0``.
    """
    scores = np.zeros(corpus.n_rows, dtype=np.float64)
    columns = corpus.columns
    for bucket in sorted(query):
        entry = columns.get(bucket)
        if entry is not None:
            positions, weights = entry
            scores[positions] += query[bucket] * weights
    return scores
