"""Integer-set overlap kernels and per-measure scorers.

Records are encoded by :class:`repro.perf.tokens.TokenUniverse` as sorted
tuples of int ids.  Overlap between two records is computed by one of two
kernels:

* :func:`bounded_overlap` — a merge scan over the two sorted arrays with
  ppjoin-style early exit: as soon as the overlap accumulated so far plus
  the remaining length of the advanced side cannot reach the required
  bound, the pair is abandoned;
* :func:`mask_overlap` — each record is also materialized as an int
  bitmask (bit *i* set iff token id *i* is present), so overlap is a
  single C-level ``&`` plus ``int.bit_count``.  This is the fastest path
  in CPython but costs ``len(universe)`` bits per record, so callers only
  use it while the universe is small (:data:`MASK_UNIVERSE_MAX`).

The scorers avoid the per-pair ``validate_measure`` + ``math.ceil`` calls
of :mod:`repro.simjoin.filters` by binding the measure once; the formulas
are bit-for-bit identical to :func:`repro.simjoin.filters.similarity` so
filtered and naive joins produce identical floats.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.exceptions import ConfigurationError

# Above this universe size the bitmask kernel's per-record masks get wide
# enough (> 1 KiB) that the merge-scan kernel wins; chosen empirically.
MASK_UNIVERSE_MAX = 8192

# Float-rounding guard for filter bounds.  The bound formulas are exact in
# real arithmetic but float products can land epsilon *above* an integer
# (0.4/1.4 * 7 == 2.0000000000000004), and ceiling that overstates the
# requirement — an unsound filter that drops true matches.  Bounds must
# only ever err toward admitting a pair (verification is exact), so lower
# bounds ceil ``value - BOUND_EPS`` and upper bounds widen by ``BOUND_EPS``.
BOUND_EPS = 1e-9


def ceil_bound(value: float) -> int:
    """``math.ceil`` that forgives float error just above an integer."""
    return math.ceil(value - BOUND_EPS)


def bounded_overlap(a: Sequence[int], b: Sequence[int], needed: int) -> int:
    """Overlap of two sorted int arrays, or ``-1`` on early exit.

    Returns the exact intersection size when it is at least ``needed``;
    returns ``-1`` as soon as the remaining elements of either array can
    no longer lift the overlap to ``needed``.
    """
    la, lb = len(a), len(b)
    i = j = overlap = 0
    while i < la and j < lb:
        ai = a[i]
        bj = b[j]
        if ai == bj:
            overlap += 1
            i += 1
            j += 1
        elif ai < bj:
            i += 1
            if overlap + (la - i) < needed:
                return -1
        else:
            j += 1
            if overlap + (lb - j) < needed:
                return -1
    return overlap


def token_mask(encoded: Sequence[int]) -> int:
    """Bitmask of an encoded record (bit ``i`` set iff id ``i`` present)."""
    mask = 0
    for token_id in encoded:
        mask |= 1 << token_id
    return mask


def mask_overlap(left_mask: int, right_mask: int) -> int:
    """Exact overlap of two records from their bitmasks."""
    return (left_mask & right_mask).bit_count()


def make_scorer(measure: str) -> Callable[[int, int, int], float]:
    """A ``(overlap, left_size, right_size) -> score`` function.

    The formulas mirror :func:`repro.simjoin.filters.similarity` exactly
    (same operations on the same ints) so scores are identical floats.
    Callers guarantee both sizes are positive.
    """
    if measure == "jaccard":
        return lambda overlap, la, lb: overlap / (la + lb - overlap)
    if measure == "cosine":
        return lambda overlap, la, lb: overlap / math.sqrt(la * lb)
    if measure == "dice":
        return lambda overlap, la, lb: 2.0 * overlap / (la + lb)
    if measure == "overlap":
        return lambda overlap, la, lb: float(overlap)
    raise ConfigurationError(f"no scorer for measure {measure!r}")


def make_overlap_bound(measure: str, threshold: float) -> Callable[[int, int], int]:
    """A ``(left_size, right_size) -> minimum required overlap`` function.

    Same bounds as :func:`repro.simjoin.filters.overlap_lower_bound`, with
    the measure and threshold bound once instead of validated per pair.
    """
    ceil = math.ceil
    eps = BOUND_EPS
    if measure == "jaccard":
        coefficient = threshold / (1.0 + threshold)
        return lambda la, lb: ceil(coefficient * (la + lb) - eps)
    if measure == "cosine":
        sqrt = math.sqrt
        return lambda la, lb: ceil(threshold * sqrt(la * lb) - eps)
    if measure == "dice":
        coefficient = threshold / 2.0
        return lambda la, lb: ceil(coefficient * (la + lb) - eps)
    if measure == "overlap":
        required = ceil_bound(threshold)
        return lambda la, lb: required
    raise ConfigurationError(f"no overlap bound for measure {measure!r}")
