"""One multicore executor for every candidate-generation hot path.

PyMatcher's production story (Section 4.1) is partition parallelism on a
multi-core machine.  The seed repo had that capability buried in
``pipeline/production.py``; this module generalizes it so the sim joins,
the blockers, and feature extraction all fan out through the same
primitives:

* :func:`split_evenly` / :func:`partition_table` — contiguous, ordered
  partitioning of work lists and tables;
* :func:`run_sharded` — map a worker over shards on a fork process pool.
  The worker and any state it closes over are inherited by the children
  through ``fork`` rather than pickled, so closures over indexes, feature
  tables, and tokenizer caches all work;
* :func:`concat_tables` — single-pass merge of partition outputs;
* :func:`parallel_map_partitions` — the production-stage entry point,
  kept with its original signature.

Because shards are contiguous and results are concatenated in shard
order, every parallel entry point built on this module produces output
byte-identical to its serial run.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.exceptions import ConfigurationError, SchemaError
from repro.table.table import Table

T = TypeVar("T")


def effective_n_jobs(n_jobs: int | None) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; positive values are taken as-is;
    negative values count back from the machine size in the joblib
    convention (``-1`` = all cores).  ``0`` is rejected.
    """
    if n_jobs is None:
        return 1
    if n_jobs == 0:
        raise ConfigurationError("n_jobs must be a non-zero int (got 0)")
    if n_jobs < 0:
        return max(multiprocessing.cpu_count() + 1 + n_jobs, 1)
    return n_jobs


def split_evenly(items: Sequence[T], n_shards: int) -> list[Sequence[T]]:
    """Split a sequence into at most ``n_shards`` contiguous, ordered runs."""
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    n_items = len(items)
    n_shards = min(n_shards, max(n_items, 1))
    size, extra = divmod(n_items, n_shards)
    shards = []
    start = 0
    for shard_index in range(n_shards):
        stop = start + size + (1 if shard_index < extra else 0)
        shards.append(items[start:stop])
        start = stop
    return shards


# Worker state inherited by forked pool children.  ``run_sharded`` sets it
# immediately before forking and restores it after, so the children see a
# consistent snapshot without pickling the worker or its closure.
_FORKED_WORKER: Callable[[Any], Any] | None = None

#: Minimum total sized work (sum of shard lengths) worth forking for.
#: Pool startup costs a few milliseconds per worker; below this many
#: items the serial loop finishes before the pool would even spin up
#: (measured break-even is in the hundreds of rows for the join probes;
#: 64 is conservative in the fork direction).  Shards without ``len``
#: are assumed large.
MIN_FORK_ITEMS = 64

# The fork context is a stdlib singleton, but resolve it once and keep a
# module-level handle so every run_sharded call shares one context
# object instead of re-resolving the start-method table per call.
_FORK_CONTEXT: multiprocessing.context.BaseContext | None = None


def _fork_context() -> multiprocessing.context.BaseContext | None:
    global _FORK_CONTEXT
    if _FORK_CONTEXT is None:
        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        _FORK_CONTEXT = multiprocessing.get_context("fork")
    return _FORK_CONTEXT


def _total_items(shards: Sequence[Any]) -> int | None:
    """Sum of shard lengths, or ``None`` when any shard is unsized."""
    total = 0
    for shard in shards:
        try:
            total += len(shard)
        except TypeError:
            return None
    return total


def _call_forked_worker(shard: Any) -> Any:
    return _FORKED_WORKER(shard)


def run_sharded(
    shards: Sequence[Any],
    worker: Callable[[Any], Any],
    n_jobs: int | None = 1,
) -> list[Any]:
    """Apply ``worker`` to each shard, in order; fan out when ``n_jobs > 1``.

    Results come back in shard order, so callers that concatenate them get
    exactly the serial output.  ``worker`` may be any callable, including
    a closure over large read-only state: children receive it via fork,
    not pickle.  Only the shards and the results cross process
    boundaries.  Falls back to serial execution on platforms without the
    ``fork`` start method — and skips the pool entirely when the total
    sized work is under :data:`MIN_FORK_ITEMS`, where pool startup would
    dominate the work itself (two 3-row shards run inline, not forked).
    """
    n_jobs = effective_n_jobs(n_jobs)
    if n_jobs <= 1 or len(shards) <= 1:
        return [worker(shard) for shard in shards]
    context = _fork_context()
    if context is None:
        return [worker(shard) for shard in shards]
    total = _total_items(shards)
    if total is not None and total < MIN_FORK_ITEMS:
        return [worker(shard) for shard in shards]
    global _FORKED_WORKER
    previous = _FORKED_WORKER
    _FORKED_WORKER = worker
    try:
        with context.Pool(processes=min(n_jobs, len(shards))) as pool:
            return pool.map(_call_forked_worker, shards)
    finally:
        _FORKED_WORKER = previous


def partition_table(table: Table, n_partitions: int) -> list[Table]:
    """Split a table into ``n_partitions`` contiguous row blocks."""
    if n_partitions < 1:
        raise ConfigurationError(f"n_partitions must be >= 1, got {n_partitions}")
    if table.num_rows == 0:
        return [table.copy()]
    n_partitions = min(n_partitions, table.num_rows)
    size = -(-table.num_rows // n_partitions)  # ceil division
    return [
        table.take(range(start, min(start + size, table.num_rows)))
        for start in range(0, max(table.num_rows, 1), size)
    ]


def concat_tables(parts: Sequence[Table]) -> Table:
    """Stack tables with identical columns in one pass.

    Unlike folding ``Table.concat`` pairwise (which copies O(P^2) rows
    across P partitions), this extends each output column exactly once.
    """
    if not parts:
        raise ConfigurationError("concat_tables needs at least one table")
    first = parts[0]
    if len(parts) == 1:
        return first.copy()
    columns: dict[str, list[Any]] = {name: list(first.column(name)) for name in first.columns}
    for part in parts[1:]:
        if set(part.columns) != set(columns):
            raise SchemaError(
                f"cannot concat tables with different columns: "
                f"{first.columns} vs {part.columns}"
            )
        for name, values in columns.items():
            values.extend(part.column(name))
    return Table(columns)


def parallel_map_partitions(
    table: Table,
    fn: Callable[[Table], Table],
    n_workers: int = 2,
    n_partitions: int | None = None,
) -> Table:
    """Apply ``fn`` to each partition on a process pool; concat results.

    With ``n_workers=1`` the map runs in-process (no pool).  ``fn`` does
    not need to be picklable: workers inherit it through fork.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    partitions = partition_table(table, n_partitions or n_workers)
    return concat_tables(run_sharded(partitions, fn, n_jobs=n_workers))
