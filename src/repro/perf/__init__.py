"""Shared performance kernels for the candidate-generation hot paths.

The paper's efficiency principle (Section 4.1) is that the packages must
"run as fast as the hardware allows".  This package concentrates the two
mechanisms every hot path shares:

* :mod:`repro.perf.tokens` — a :class:`TokenUniverse` mapping tokens to
  dense integer ids ranked by global frequency, so token sets become
  sorted int arrays and the prefix filter becomes a slice;
* :mod:`repro.perf.kernels` — integer-set overlap kernels (merge-scan
  with ppjoin-style early exit, and a bitmask popcount fast path) plus
  per-measure scorers that avoid per-pair validation;
* :mod:`repro.perf.parallel` — one process-pool executor shared by the
  sim joins, the blockers, feature extraction, and the production stage;
* :mod:`repro.perf.arrays` — the columnar (NumPy/CSR) kernel backend:
  batched filter-verify probes, batched cosine, and the ``kernel=``
  resolution policy, byte-identical to the dict kernels above.
"""

from repro.perf.arrays import (
    HAVE_ARRAYS,
    ArrayIndex,
    ArrayRecords,
    KernelPolicy,
    SparseColumns,
    batch_cosine,
    batch_set_sim_probe,
    choose_backend,
    kernel_override,
    observe_kernel_batch,
    set_kernel_override,
    use_kernel,
)
from repro.perf.kernels import (
    MASK_UNIVERSE_MAX,
    bounded_overlap,
    make_overlap_bound,
    make_scorer,
    mask_overlap,
    token_mask,
)
from repro.perf.parallel import (
    concat_tables,
    effective_n_jobs,
    parallel_map_partitions,
    partition_table,
    run_sharded,
    split_evenly,
)
from repro.perf.tokens import TokenUniverse

__all__ = [
    "HAVE_ARRAYS",
    "MASK_UNIVERSE_MAX",
    "ArrayIndex",
    "ArrayRecords",
    "KernelPolicy",
    "SparseColumns",
    "TokenUniverse",
    "batch_cosine",
    "batch_set_sim_probe",
    "bounded_overlap",
    "choose_backend",
    "concat_tables",
    "effective_n_jobs",
    "kernel_override",
    "make_overlap_bound",
    "make_scorer",
    "mask_overlap",
    "observe_kernel_batch",
    "parallel_map_partitions",
    "partition_table",
    "run_sharded",
    "set_kernel_override",
    "split_evenly",
    "token_mask",
    "use_kernel",
]
