"""Allow ``python -m repro`` as the CLI entry point."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
