"""Exception hierarchy for the repro (Magellan reproduction) ecosystem.

Every package in the ecosystem raises errors from this hierarchy so that
callers can catch ``ReproError`` to handle any ecosystem failure, or a
narrower class for targeted handling.  This mirrors the Magellan design
principle that tools are *self-contained*: a tool validates its own inputs
and metadata and fails with a precise, typed error instead of propagating a
confusing downstream failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro ecosystem."""


class SchemaError(ReproError):
    """A table does not have the expected column(s) or column types."""


class KeyConstraintError(ReproError):
    """A declared key column contains duplicates or missing values."""


class ForeignKeyConstraintError(ReproError):
    """A declared key-foreign-key relationship no longer holds.

    This is the error behind the paper's self-containment discussion: a
    command that needs the FK constraint between a candidate set C and its
    base tables A, B first *checks* the constraint and raises (or warns)
    when another tool has invalidated it.
    """


class CatalogError(ReproError):
    """Metadata was requested from the catalog but is absent or invalid."""


class NotFittedError(ReproError):
    """A model or transformer was used before being fitted."""


class LabelingError(ReproError):
    """A labeling session was used incorrectly (e.g. undo with no labels)."""


class BudgetExhaustedError(LabelingError):
    """A labeling session ran out of its label budget."""


class WorkflowError(ReproError):
    """An EM workflow definition or execution is invalid."""


class ServiceError(ReproError):
    """A CloudMatcher service invocation failed or was misconfigured."""


class BackpressureError(ServiceError):
    """A serving request was rejected because the queue is at capacity.

    Raised at admission, never after queuing: a rejected caller knows
    immediately that no work was done and can retry with backoff.
    """


class QuotaExceededError(ServiceError):
    """A serving request was rejected by its tenant's in-flight quota."""


class ConfigurationError(ReproError):
    """A tool was configured with invalid parameters."""
