"""Command-line interface: the ecosystem's tools on plain CSV files.

Subcommands
-----------
``repro profile A.csv``
    Schema inference + missingness + generic-value report per column.
``repro match A.csv B.csv --key id [--gold gold.csv] [--budget N]``
    The PyMatcher guide workflow: block, label (interactively, or against
    a gold pair file), train, predict; writes ``matches.csv``.
``repro falcon A.csv B.csv --key id [--gold gold.csv] [--budget N]``
    Self-service EM: the end-to-end Falcon workflow.
``repro dedupe A.csv --column name [--gold gold.csv]``
    Single-table deduplication; writes the deduplicated table.
``repro schema-match A.csv B.csv``
    Propose attribute correspondences between differently-named schemas.
``repro index build A.csv --key id [--column name] --cache-dir DIR``
    Pre-build the reusable index artifacts (tokenizations, q-gram bags;
    with ``--vectors``, hashed n-gram embeddings for the vector blocker)
    for a table's string columns and persist them, so later matching
    runs pointed at the same cache start warm.
``repro index inspect --cache-dir DIR``
    List the persisted index artifacts in a cache directory, plus the
    delta state (generation, delta rows, tombstones, bytes since the
    last compaction) of any persisted live indexes.
``repro index compact [--name NAME] --cache-dir DIR``
    Fold persisted live indexes' delta segments into fresh base
    segments and re-save them.
``repro serve A.csv --key id --column name --threshold 0.4``
    Resident match server: load the corpus index once, then answer
    point queries from stdin (or ``--queries FILE``) as JSON lines,
    with a qps/p50/p99 summary on exit.
``repro plan explain A.csv B.csv --key id [--execute]``
    Show the cost-based plan for the multi-blocker pipeline over the two
    tables: node order (with any most-selective-first reorders), each
    node's estimated cost and observed selectivity from the stats store,
    and the chosen execution mode.  ``--execute`` runs the plan, prints
    estimated vs. actual seconds, and records fresh statistics.
``repro plan clear``
    Drop the persisted planner statistics (after data or code changes
    that make the recorded costs stale).

The workflow subcommands take ``--index-cache DIR``: the process-default
:class:`repro.index.IndexStore` then persists every index artifact it
builds under DIR and serves repeated runs from it (the
``REPRO_INDEX_CACHE`` environment variable does the same).

A gold file is a two-column CSV ``l_id,r_id`` of known matching pairs;
when given, labeling questions are answered by an oracle (useful for
scripted runs and benchmarks).  Without it, questions come to the
terminal.

The workflow subcommands take ``--metrics PATH``: after the run — even a
failed one — the process-wide metrics registry is written as JSONL at
PATH and as Prometheus text format at ``PATH.prom``.
"""

from __future__ import annotations

import argparse
import sys

from repro.blocking import OverlapBlocker
from repro.catalog import get_catalog
from repro.cleaning import detect_generic_values, profile_missingness
from repro.datasets.generator import EMDataset
from repro.features import extract_feature_vecs, get_features_for_matching
from repro.labeling import LabelingSession, OracleLabeler
from repro.labeling.console import ConsoleLabeler
from repro.matchers import RFMatcher
from repro.sampling import weighted_sample_candset
from repro.table import Table, infer_schema, read_csv, write_csv
from repro.table.schema import ColumnType


def _load_gold(path: str | None) -> set | None:
    if path is None:
        return None
    table = read_csv(path)
    l_col, r_col = table.columns[:2]
    return set(zip(table.column(l_col), table.column(r_col)))


def _labeler(args, ltable: Table, rtable: Table):
    gold = _load_gold(getattr(args, "gold", None))
    if gold is not None:
        return OracleLabeler(gold)
    return ConsoleLabeler(ltable, rtable, args.key, args.key)


def _first_string_column(table: Table, key: str) -> str:
    schema = infer_schema(table)
    for name in table.columns:
        if name == key:
            continue
        if schema[name] in (
            ColumnType.SHORT_STRING,
            ColumnType.MEDIUM_STRING,
            ColumnType.LONG_STRING,
        ):
            return name
    raise SystemExit("no string column found to block on; pass --block-on")


def cmd_profile(args) -> int:
    """Profile one table: schema, missingness, generic values."""
    table = read_csv(args.table)
    schema = infer_schema(table)
    missing = profile_missingness(table)
    print(f"{table.num_rows} rows, {len(table.columns)} columns\n")
    print(f"{'column':<20} {'type':<14} {'missing':<8} generic values")
    for name in table.columns:
        report = detect_generic_values(table, name, distinctiveness=0.05)
        generic = ", ".join(map(str, report.generic_values[:3])) or "-"
        print(f"{name:<20} {schema[name].value:<14} {missing[name]:<8.1%} {generic}")
    return 0


def _run_guide_workflow(args):
    ltable = read_csv(args.ltable)
    rtable = read_csv(args.rtable)
    block_on = args.block_on or _first_string_column(ltable, args.key)
    print(f"blocking on {block_on!r} (token overlap >= {args.overlap})")
    candset = OverlapBlocker(block_on, overlap_size=args.overlap).block_tables(
        ltable, rtable, args.key, args.key
    )
    print(f"candidate set: {candset.num_rows} pairs")

    sample = weighted_sample_candset(candset, min(args.budget, candset.num_rows), seed=0)
    session = LabelingSession(_labeler(args, ltable, rtable), budget=args.budget)
    session.label_candset(sample)
    print(f"labeled {session.questions_asked} pairs")

    features = get_features_for_matching(ltable, rtable, args.key, args.key)
    fv = extract_feature_vecs(sample, features, label_column="label")
    matcher = RFMatcher(n_estimators=10, random_state=0).fit(fv, features.names())
    fv_all = extract_feature_vecs(candset, features)
    matcher.predict(fv_all)
    meta = get_catalog().get_candset_metadata(candset)
    matches = fv_all.select(lambda row: row["predicted"] == 1).project(
        [meta.fk_ltable, meta.fk_rtable]
    )
    write_csv(matches, args.output)
    print(f"{matches.num_rows} matches written to {args.output}")
    return 0


def cmd_match(args) -> int:
    """The PyMatcher guide workflow over two CSV tables."""
    return _run_guide_workflow(args)


def cmd_falcon(args) -> int:
    """Self-service Falcon EM over two CSV tables."""
    from repro.falcon import FalconConfig, run_falcon
    from repro.runtime import EventStream

    ltable = read_csv(args.ltable)
    rtable = read_csv(args.rtable)
    gold = _load_gold(args.gold) or set()
    dataset = EMDataset("cli", ltable, rtable, gold, args.key, args.key).register()
    session = LabelingSession(_labeler(args, ltable, rtable), budget=args.budget)
    events = EventStream()
    try:
        result = run_falcon(
            dataset,
            session,
            FalconConfig(
                sample_size=min(4 * max(ltable.num_rows, rtable.num_rows), 3000),
                blocking_budget=args.budget // 3,
                matching_budget=args.budget,
                random_state=0,
            ),
            events=events,
        )
    finally:
        # Written even when the run dies mid-way: the partial event log
        # of a failed run is exactly what is needed to diagnose it.
        if args.events:
            events.write_jsonl(args.events)
            print(f"{len(events)} run events written to {args.events}")
    print(f"blocking rules retained: {len(result.rules)}")
    for rule in result.rules:
        print(f"   {rule}")
    print(f"candidate set: {result.candset.num_rows} pairs")
    print(f"questions asked: {result.questions}")
    meta = get_catalog().get_candset_metadata(result.matches)
    matches = result.matches.project([meta.fk_ltable, meta.fk_rtable])
    write_csv(matches, args.output)
    print(f"{matches.num_rows} matches written to {args.output}")
    if gold:
        predicted = result.match_pairs
        tp = len(predicted & gold)
        precision = tp / len(predicted) if predicted else 0.0
        recall = tp / len(gold)
        print(f"against gold: precision={precision:.3f} recall={recall:.3f}")
    return 0


def cmd_dedupe(args) -> int:
    """Deduplicate one CSV table via self-matching."""
    from repro.postprocess import dedupe_table, self_block_table

    table = read_csv(args.table)
    column = args.column or _first_string_column(table, args.key)
    candset = self_block_table(
        table, OverlapBlocker(column, overlap_size=args.overlap), args.key
    )
    print(f"candidate duplicate pairs: {candset.num_rows}")
    gold = _load_gold(args.gold)
    if gold is not None:
        labeler = OracleLabeler({tuple(sorted(p, key=str)) for p in gold})
    else:
        labeler = ConsoleLabeler(table, table, args.key, args.key)
    session = LabelingSession(labeler, budget=args.budget)
    session.label_candset(candset)
    duplicates = {
        (l_id, r_id)
        for l_id, r_id, label in zip(
            candset["ltable_" + args.key], candset["rtable_" + args.key],
            candset["label"],
        )
        if label == 1
    }
    deduped = dedupe_table(table, duplicates, key=args.key)
    write_csv(deduped, args.output)
    print(
        f"{table.num_rows - deduped.num_rows} duplicates collapsed; "
        f"{deduped.num_rows} rows written to {args.output}"
    )
    return 0


def _string_columns(table: Table, key: str) -> list[str]:
    schema = infer_schema(table)
    return [
        name
        for name in table.columns
        if name != key
        and schema[name]
        in (ColumnType.SHORT_STRING, ColumnType.MEDIUM_STRING, ColumnType.LONG_STRING)
    ]


def cmd_index_build(args) -> int:
    """Pre-build and persist the index artifacts for a table's columns."""
    import time

    from repro.index import IndexStore
    from repro.table.schema import is_missing
    from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer
    from repro.text.vectorize import HashedNgramVectorizer

    table = read_csv(args.table)
    columns = args.column or _string_columns(table, args.key)
    if not columns:
        raise SystemExit("no string columns to index; pass --column")
    store = IndexStore(cache_dir=args.cache_dir)
    tokenizers = [
        WhitespaceTokenizer(return_set=True),
        QgramTokenizer(q=args.q, return_set=True),
    ]
    vectorizer = (
        HashedNgramVectorizer(q=args.q, dim=args.vector_dim)
        if args.vectors
        else None
    )
    rows = []
    for column in columns:
        started = time.perf_counter()
        # The blockers and rule executors probe lowercased projections,
        # so artifacts are built for both the raw column and its
        # lowered view — either form of a later probe starts warm.
        lowered = Table(
            {
                args.key: table.column(args.key),
                column: [
                    None if is_missing(v) else str(v).lower()
                    for v in table.column(column)
                ],
            }
        )
        for view in (table, lowered):
            for tokenizer in tokenizers:
                store.tokenized_column(view, args.key, column, tokenizer)
            store.gram_bags(view, args.key, column, args.q)
        if vectorizer is not None:
            # The vector blocker embeds the raw column (its vectorizer
            # lowercases internally), so only the raw view needs vectors.
            store.hashed_column(table, args.key, column, vectorizer)
        rows.append((column, time.perf_counter() - started))
    for column, seconds in rows:
        print(f"indexed {column!r} in {seconds:.2f}s")
    artifacts = store.disk_artifacts()
    total = sum(row["bytes"] for row in artifacts)
    print(f"{len(artifacts)} artifacts ({total} bytes) in {args.cache_dir}")
    return 0


def cmd_index_inspect(args) -> int:
    """List persisted index artifacts and live-index delta state."""
    from repro.index import IndexStore, list_live_indexes

    artifacts = IndexStore(cache_dir=args.cache_dir).disk_artifacts()
    live = list_live_indexes(args.cache_dir)
    if not artifacts and not live:
        print(f"no index artifacts under {args.cache_dir}")
        return 1
    if artifacts:
        print(f"{'kind':<12} {'bytes':>10}  digest")
        for row in artifacts:
            print(f"{row['kind']:<12} {row['bytes']:>10}  {row['digest']}")
        print(
            f"{len(artifacts)} artifacts, "
            f"{sum(r['bytes'] for r in artifacts)} bytes total"
        )
    if live:
        if artifacts:
            print()
        header = (
            f"{'live index':<20} {'gen':>6} {'rows':>8} {'delta':>7} "
            f"{'tombstones':>11} {'delta bytes':>12} {'compactions':>12}"
        )
        print(header)
        for manifest in live:
            print(
                f"{manifest.get('name', '?'):<20} "
                f"{manifest.get('generation', 0):>6} "
                f"{manifest.get('live_rows', 0):>8} "
                f"{manifest.get('delta_rows', 0):>7} "
                f"{manifest.get('tombstones', 0):>11} "
                f"{manifest.get('delta_bytes', 0):>12} "
                f"{manifest.get('compactions', 0):>12}"
            )
        print(f"{len(live)} live index(es)")
    return 0


def cmd_index_compact(args) -> int:
    """Compact persisted live indexes: fold each delta into a new base."""
    from repro.index import IndexStore, LiveIndex, list_live_indexes

    store = IndexStore(cache_dir=args.cache_dir)
    names = args.name or [m["name"] for m in list_live_indexes(args.cache_dir)]
    if not names:
        print(f"no live indexes under {args.cache_dir}")
        return 1
    for name in names:
        live = LiveIndex.load(name, store=store)
        before = live.stats()
        after = live.compact()
        live.save()
        print(
            f"compacted {name!r}: {before['delta_rows']} delta rows + "
            f"{before['tombstones']} tombstones folded into a "
            f"{after['base_rows']}-row base (generation {after['generation']})"
        )
    return 0


def cmd_serve(args) -> int:
    """Resident match server: answer point queries against one corpus.

    Queries come one per line from ``--queries FILE`` or stdin, either
    ``value`` or ``tenant<TAB>value``; each answer is one JSON line with
    the ranked ``(corpus key, score)`` candidates.  On EOF a summary
    line reports served queries, sustained qps, and p50/p99 latency.
    """
    import json
    import time

    from repro.serve import MatchServer, ServeConfig
    from repro.text.tokenizers import QgramTokenizer, WhitespaceTokenizer

    corpus = read_csv(args.corpus)
    column = args.column or _first_string_column(corpus, args.key)
    tokenizer = (
        QgramTokenizer(q=args.q, return_set=True)
        if args.tokenizer == "qgram"
        else WhitespaceTokenizer(return_set=True)
    )
    config = ServeConfig(
        measure=args.measure,
        threshold=args.threshold,
        top_k=args.top_k,
        max_batch=args.max_batch,
        kernel=args.kernel,
    )
    server = MatchServer(corpus, args.key, column, tokenizer=tokenizer, config=config)
    if args.queries:
        source = open(args.queries, encoding="utf-8")
    else:
        source = sys.stdin
        print(
            f"serving {corpus.num_rows} rows on {column!r} "
            f"({args.measure} >= {args.threshold}); one query per line:",
            file=sys.stderr,
        )
    served = 0
    started = time.perf_counter()
    try:
        with server:
            for line in source:
                line = line.rstrip("\n")
                if not line:
                    continue
                tenant, sep, value = line.partition("\t")
                if not sep:
                    tenant, value = "default", line
                result = server.match(value, tenant=tenant)
                served += 1
                print(
                    json.dumps(
                        {
                            "query": value,
                            "tenant": tenant,
                            "candidates": [[r_id, score] for r_id, score in result.candidates],
                        }
                    )
                )
            elapsed = time.perf_counter() - started
            stats = server.stats()
    finally:
        if source is not sys.stdin:
            source.close()
    qps = served / elapsed if elapsed > 0 else 0.0
    print(
        f"served {served} queries in {elapsed:.2f}s ({qps:.0f} qps), "
        f"p50={stats['latency_p50_s'] * 1000:.2f}ms p99={stats['latency_p99_s'] * 1000:.2f}ms",
        file=sys.stderr,
    )
    return 0


def _resolve_stats_path(args):
    from repro.plan import default_stats_path

    if getattr(args, "stats", None):
        from pathlib import Path

        return Path(args.stats)
    return default_stats_path()


def cmd_plan_explain(args) -> int:
    """Plan (and optionally run) the multi-blocker pipeline over two tables."""
    from repro.blocking import AttrEquivalenceBlocker
    from repro.plan import StatsStore, execute_plan, multi_blocker_graph, plan_graph

    ltable = read_csv(args.ltable)
    rtable = read_csv(args.rtable)
    block_on = args.block_on or _first_string_column(ltable, args.key)
    shared = set(ltable.columns) & set(rtable.columns)
    filter_columns = [
        c for c in _string_columns(ltable, args.key) if c != block_on and c in shared
    ]
    filters = [
        (f"filter_eq_{column}", AttrEquivalenceBlocker(column))
        for column in filter_columns
    ]
    graph = multi_blocker_graph(
        "plan_cli",
        ltable,
        rtable,
        OverlapBlocker(block_on, overlap_size=args.overlap),
        filters,
        l_key=args.key,
        r_key=args.key,
        key_salt=f"{args.ltable}|{args.rtable}|{block_on}|{args.overlap}",
    )
    stats_path = _resolve_stats_path(args)
    stats = StatsStore(path=stats_path)
    if stats_path is None:
        print(
            "note: no stats location configured (use --stats, --index-cache, "
            "or REPRO_PLAN_STATS); planning from this process's runs only"
        )
    plan = plan_graph(graph, stats=stats)
    print(plan.explain())
    if not args.execute:
        if not plan.optimized:
            print("run with --execute to record statistics for future plans")
        return 0
    result = execute_plan(plan, stats=stats, record=True)
    print(f"\n{'node':<28} {'est s':>9} {'actual s':>9}")
    for name in plan.graph.topological_order():
        decision = plan.decisions.get(name)
        record = result.records.get(name)
        est = (
            f"{decision.est_seconds:.4f}"
            if decision is not None and decision.est_seconds is not None
            else "-"
        )
        actual = f"{record.seconds:.4f}" if record is not None else "-"
        print(f"{name:<28} {est:>9} {actual:>9}")
    candset = result.store["candset"]
    print(f"\nsurviving candidate pairs: {candset.num_rows}")
    print(f"total wall seconds: {result.total_seconds():.4f}")
    if stats_path is not None:
        print(f"statistics recorded in {stats_path}")
    return 0


def cmd_plan_clear(args) -> int:
    """Delete the persisted planner statistics."""
    from repro.plan import StatsStore

    stats_path = _resolve_stats_path(args)
    if stats_path is None or not stats_path.exists():
        print("no persisted planner statistics found")
        return 1
    StatsStore(path=stats_path).clear(disk=True)
    print(f"cleared planner statistics at {stats_path}")
    return 0


def cmd_schema_match(args) -> int:
    """Propose attribute correspondences between two CSV tables."""
    from repro.schema_matching import match_schemas

    ltable = read_csv(args.ltable)
    rtable = read_csv(args.rtable)
    correspondences = match_schemas(ltable, rtable, args.key, args.key,
                                    threshold=args.threshold)
    if not correspondences:
        print("no correspondences above threshold")
        return 1
    print(f"{'A column':<20} {'B column':<20} {'score':<7} name   value")
    for c in correspondences:
        print(
            f"{c.l_column:<20} {c.r_column:<20} {c.score:<7.3f} "
            f"{c.name_score:<6.3f} {c.value_score:.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Magellan-style entity matching on CSV files"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="profile one table")
    p.add_argument("table")
    p.set_defaults(fn=cmd_profile)

    for name, fn, help_text in (
        ("match", cmd_match, "PyMatcher guide workflow over two tables"),
        ("falcon", cmd_falcon, "self-service Falcon workflow over two tables"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("ltable")
        p.add_argument("rtable")
        p.add_argument("--key", default="id", help="key column in both tables")
        p.add_argument("--gold", default=None, help="CSV of known matching pairs")
        p.add_argument("--budget", type=int, default=500, help="max labels")
        p.add_argument("--block-on", default=None, help="blocking attribute")
        p.add_argument("--overlap", type=int, default=1, help="token overlap size")
        p.add_argument("--output", default="matches.csv")
        p.add_argument(
            "--metrics", default=None, metavar="PATH",
            help="write the metrics registry here (JSONL + PATH.prom)",
        )
        p.add_argument(
            "--index-cache", default=None, metavar="DIR",
            help="persist/reuse index artifacts under DIR across runs",
        )
        if name == "falcon":
            p.add_argument(
                "--events", default=None, metavar="PATH",
                help="write the structured run-event log (JSONL) here",
            )
        p.set_defaults(fn=fn)

    p = sub.add_parser("dedupe", help="deduplicate one table")
    p.add_argument("table")
    p.add_argument("--key", default="id")
    p.add_argument("--column", default=None, help="blocking attribute")
    p.add_argument("--overlap", type=int, default=2)
    p.add_argument("--gold", default=None, help="CSV of known duplicate pairs")
    p.add_argument("--budget", type=int, default=1000)
    p.add_argument("--output", default="deduped.csv")
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the metrics registry here (JSONL + PATH.prom)",
    )
    p.add_argument(
        "--index-cache", default=None, metavar="DIR",
        help="persist/reuse index artifacts under DIR across runs",
    )
    p.set_defaults(fn=cmd_dedupe)

    p = sub.add_parser("index", help="build or inspect reusable index artifacts")
    index_sub = p.add_subparsers(dest="index_command", required=True)
    p = index_sub.add_parser("build", help="pre-build index artifacts for a table")
    p.add_argument("table")
    p.add_argument("--key", default="id")
    p.add_argument(
        "--column", action="append", default=None,
        help="column to index (repeatable; default: every string column)",
    )
    p.add_argument("--q", type=int, default=3, help="q-gram size")
    p.add_argument(
        "--vectors", action="store_true",
        help="also build hashed n-gram embedding artifacts (vector blocking)",
    )
    p.add_argument(
        "--vector-dim", type=int, default=2**18, metavar="DIM",
        help="hashing-trick bucket count for --vectors (default: 2^18)",
    )
    p.add_argument("--cache-dir", default=".repro-index", metavar="DIR")
    p.set_defaults(fn=cmd_index_build)
    p = index_sub.add_parser("inspect", help="list persisted index artifacts")
    p.add_argument("--cache-dir", default=".repro-index", metavar="DIR")
    p.set_defaults(fn=cmd_index_inspect)
    p = index_sub.add_parser(
        "compact", help="fold live-index deltas into fresh base segments"
    )
    p.add_argument(
        "--name", action="append", default=None, metavar="NAME",
        help="live index to compact (repeatable; default: all persisted)",
    )
    p.add_argument("--cache-dir", default=".repro-index", metavar="DIR")
    p.set_defaults(fn=cmd_index_compact)

    p = sub.add_parser("serve", help="resident match server over one corpus table")
    p.add_argument("corpus")
    p.add_argument("--key", default="id")
    p.add_argument("--column", default=None, help="corpus column to match against")
    p.add_argument("--measure", default="jaccard", help="jaccard|cosine|dice|overlap")
    p.add_argument("--threshold", type=float, default=0.5)
    p.add_argument(
        "--tokenizer", choices=["whitespace", "qgram"], default="whitespace"
    )
    p.add_argument("--q", type=int, default=3, help="q-gram size (qgram tokenizer)")
    p.add_argument("--top-k", type=int, default=10, help="candidates per query")
    p.add_argument("--max-batch", type=int, default=64, help="micro-batch size cap")
    p.add_argument(
        "--kernel",
        choices=["auto", "dict", "array", "mask", "merge"],
        default="auto",
        help="probe backend: columnar batched kernels (array) vs scalar (dict)",
    )
    p.add_argument(
        "--queries", default=None, metavar="FILE",
        help="query file, one per line ('tenant<TAB>value' or 'value'); default stdin",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the metrics registry here (JSONL + PATH.prom)",
    )
    p.add_argument(
        "--index-cache", default=None, metavar="DIR",
        help="persist/reuse index artifacts under DIR across runs",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("plan", help="explain or reset the cost-based plan optimizer")
    plan_sub = p.add_subparsers(dest="plan_command", required=True)
    p = plan_sub.add_parser(
        "explain", help="show (and optionally run) the optimized blocking plan"
    )
    p.add_argument("ltable")
    p.add_argument("rtable")
    p.add_argument("--key", default="id", help="key column in both tables")
    p.add_argument("--block-on", default=None, help="base blocking attribute")
    p.add_argument("--overlap", type=int, default=1, help="token overlap size")
    p.add_argument(
        "--stats", default=None, metavar="PATH",
        help="planner statistics file (default: <index cache>/plan-stats.json)",
    )
    p.add_argument(
        "--execute", action="store_true",
        help="run the plan, print est vs. actual seconds, record statistics",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the metrics registry here (JSONL + PATH.prom)",
    )
    p.add_argument(
        "--index-cache", default=None, metavar="DIR",
        help="persist/reuse index artifacts (and plan stats) under DIR",
    )
    p.set_defaults(fn=cmd_plan_explain)
    p = plan_sub.add_parser("clear", help="drop the persisted planner statistics")
    p.add_argument(
        "--stats", default=None, metavar="PATH",
        help="planner statistics file (default: <index cache>/plan-stats.json)",
    )
    p.add_argument(
        "--index-cache", default=None, metavar="DIR",
        help="cache directory whose plan stats to clear",
    )
    p.set_defaults(fn=cmd_plan_clear)

    p = sub.add_parser("schema-match", help="propose attribute correspondences")
    p.add_argument("ltable")
    p.add_argument("rtable")
    p.add_argument("--key", default="id")
    p.add_argument("--threshold", type=float, default=0.5)
    p.set_defaults(fn=cmd_schema_match)

    return parser


def _write_metrics(path: str) -> None:
    from repro.obs import get_registry, write_metrics_jsonl, write_prometheus_text

    registry = get_registry()
    write_metrics_jsonl(registry, path)
    write_prometheus_text(registry, f"{path}.prom")
    print(f"{len(registry)} metric series written to {path} (+ {path}.prom)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    index_cache = getattr(args, "index_cache", None)
    if index_cache:
        from repro.index import IndexStore, set_index_store

        set_index_store(IndexStore(cache_dir=index_cache))
    metrics_path = getattr(args, "metrics", None)
    if not metrics_path:
        return args.fn(args)
    try:
        return args.fn(args)
    finally:
        # Snapshots survive a failed run, same as --events.
        _write_metrics(metrics_path)


if __name__ == "__main__":
    sys.exit(main())
