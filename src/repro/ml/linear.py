"""Linear classifiers: logistic regression and a linear SVM.

Both are trained with full-batch gradient descent on standardized inputs,
which is robust for the small-to-medium feature-vector tables EM produces
(hundreds to tens of thousands of rows, dozens of features).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    as_float_array,
    as_label_array,
    check_consistent,
)


def _standardize_fit(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std == 0.0] = 1.0
    return mean, std


class LogisticRegression(Estimator, ClassifierMixin):
    """Binary logistic regression with L2 regularization.

    Parameters
    ----------
    learning_rate, max_iter, tol:
        Gradient-descent controls; training stops early once the gradient
        norm falls below ``tol``.
    l2:
        L2 penalty strength (0 disables regularization).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 500,
        tol: float = 1e-6,
        l2: float = 1e-3,
    ):
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.l2 = l2
        self.classes_: np.ndarray = np.array([], dtype=np.int64)

    def fit(self, X, y, feature_names: list[str] | None = None) -> "LogisticRegression":
        """Full-batch gradient descent on standardized inputs."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) > 2:
            raise ConfigurationError("LogisticRegression is binary-only")
        self._mean, self._std = _standardize_fit(X)
        Xs = (X - self._mean) / self._std
        target = (y == self.classes_[-1]).astype(np.float64)
        n_samples, n_features = Xs.shape
        self.coef_ = np.zeros(n_features)
        self.intercept_ = 0.0
        for _ in range(self.max_iter):
            logits = Xs @ self.coef_ + self.intercept_
            proba = 1.0 / (1.0 + np.exp(-logits))
            error = proba - target
            grad_w = Xs.T @ error / n_samples + self.l2 * self.coef_
            grad_b = float(error.mean())
            self.coef_ -= self.learning_rate * grad_w
            self.intercept_ -= self.learning_rate * grad_b
            if np.sqrt(np.sum(grad_w**2) + grad_b**2) < self.tol:
                break
        self._mark_fitted()
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the decision boundary (standardized space)."""
        self.check_fitted()
        X = as_float_array(X)
        Xs = (X - self._mean) / self._std
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Columns ordered as ``classes_``; single-class fits are certain."""
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-scores))
        if len(self.classes_) == 1:
            return np.ones((len(scores), 1))
        return np.column_stack([1.0 - positive, positive])


class LinearSVM(Estimator, ClassifierMixin):
    """Linear SVM trained by subgradient descent on the hinge loss."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        max_iter: int = 500,
        l2: float = 1e-2,
    ):
        if max_iter < 1:
            raise ConfigurationError("max_iter must be >= 1")
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.classes_: np.ndarray = np.array([], dtype=np.int64)

    def fit(self, X, y, feature_names: list[str] | None = None) -> "LinearSVM":
        """Subgradient descent on the L2-regularized hinge loss."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) > 2:
            raise ConfigurationError("LinearSVM is binary-only")
        self._mean, self._std = _standardize_fit(X)
        Xs = (X - self._mean) / self._std
        target = np.where(y == self.classes_[-1], 1.0, -1.0)
        n_samples, n_features = Xs.shape
        self.coef_ = np.zeros(n_features)
        self.intercept_ = 0.0
        for iteration in range(1, self.max_iter + 1):
            step = self.learning_rate / np.sqrt(iteration)
            margins = target * (Xs @ self.coef_ + self.intercept_)
            violating = margins < 1.0
            grad_w = self.l2 * self.coef_ - (
                Xs[violating].T @ target[violating] / n_samples
            )
            grad_b = -float(target[violating].sum()) / n_samples
            self.coef_ -= step * grad_w
            self.intercept_ -= step * grad_b
        self._mark_fitted()
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed margin of each sample (standardized space)."""
        self.check_fitted()
        X = as_float_array(X)
        Xs = (X - self._mean) / self._std
        return Xs @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Platt-style squashing of the margin (not calibrated)."""
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-scores))
        if len(self.classes_) == 1:
            return np.ones((len(scores), 1))
        return np.column_stack([1.0 - positive, positive])
