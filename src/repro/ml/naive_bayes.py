"""Naive Bayes classifiers over feature vectors."""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    as_float_array,
    as_label_array,
    check_consistent,
)


class GaussianNB(Estimator, ClassifierMixin):
    """Gaussian naive Bayes with per-class feature means and variances."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray = np.array([], dtype=np.int64)

    def fit(self, X, y, feature_names: list[str] | None = None) -> "GaussianNB":
        """Estimate per-class feature means/variances and priors."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        self.theta_ = np.vstack([X[y == c].mean(axis=0) for c in self.classes_])
        self.var_ = np.vstack([X[y == c].var(axis=0) for c in self.classes_])
        self.var_ += self.var_smoothing * X.var(axis=0).max() + self.var_smoothing
        counts = np.array([np.sum(y == c) for c in self.classes_], dtype=np.float64)
        self.class_log_prior_ = np.log(counts / counts.sum())
        self._mark_fitted()
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_likelihood = []
        for i in range(len(self.classes_)):
            log_prob = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[i]))
            log_prob = log_prob - 0.5 * np.sum(
                ((X - self.theta_[i]) ** 2) / self.var_[i], axis=1
            )
            log_likelihood.append(self.class_log_prior_[i] + log_prob)
        return np.column_stack(log_likelihood)

    def predict_proba(self, X) -> np.ndarray:
        """Normalized class posteriors, columns ordered as ``classes_``."""
        self.check_fitted()
        X = as_float_array(X)
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        proba = np.exp(joint)
        return proba / proba.sum(axis=1, keepdims=True)


class BernoulliNB(Estimator, ClassifierMixin):
    """Bernoulli naive Bayes; features are binarized at ``binarize``."""

    def __init__(self, alpha: float = 1.0, binarize: float = 0.5):
        self.alpha = alpha
        self.binarize = binarize
        self.classes_: np.ndarray = np.array([], dtype=np.int64)

    def fit(self, X, y, feature_names: list[str] | None = None) -> "BernoulliNB":
        """Estimate smoothed per-class feature activation rates."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        binary = (X > self.binarize).astype(np.float64)
        self.classes_ = np.unique(y)
        counts = np.array([np.sum(y == c) for c in self.classes_], dtype=np.float64)
        self.class_log_prior_ = np.log(counts / counts.sum())
        self.feature_log_prob_ = np.vstack(
            [
                np.log(
                    (binary[y == c].sum(axis=0) + self.alpha)
                    / (np.sum(y == c) + 2.0 * self.alpha)
                )
                for c in self.classes_
            ]
        )
        self.feature_log_neg_prob_ = np.log1p(-np.exp(self.feature_log_prob_))
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Normalized class posteriors, columns ordered as ``classes_``."""
        self.check_fitted()
        X = as_float_array(X)
        binary = (X > self.binarize).astype(np.float64)
        joint = (
            binary @ self.feature_log_prob_.T
            + (1.0 - binary) @ self.feature_log_neg_prob_.T
            + self.class_log_prior_
        )
        joint -= joint.max(axis=1, keepdims=True)
        proba = np.exp(joint)
        return proba / proba.sum(axis=1, keepdims=True)
