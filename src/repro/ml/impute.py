"""Missing-value imputation for feature matrices.

Similarity functions return NaN when either attribute value is missing
(see :mod:`repro.text.sim.generic`); learners require finite inputs, so
feature extraction runs matrices through an imputer first.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import Estimator, as_float_array

_STRATEGIES = ("mean", "median", "constant")


class SimpleImputer(Estimator):
    """Column-wise imputation of NaNs with mean, median, or a constant."""

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X) -> "SimpleImputer":
        """Learn per-column fill statistics."""
        X = as_float_array(X)
        if self.strategy == "constant":
            self.statistics_ = np.full(X.shape[1], self.fill_value)
        else:
            reducer = np.nanmean if self.strategy == "mean" else np.nanmedian
            import warnings

            with warnings.catch_warnings():
                # All-NaN columns legitimately occur (a feature undefined on
                # the whole sample); they fall back to fill_value below.
                warnings.simplefilter("ignore", category=RuntimeWarning)
                self.statistics_ = reducer(X, axis=0)
            # Columns that are entirely NaN fall back to the constant.
            self.statistics_ = np.where(
                np.isnan(self.statistics_), self.fill_value, self.statistics_
            )
        self._mark_fitted()
        return self

    def transform(self, X) -> np.ndarray:
        """Fill NaNs using the fitted statistics."""
        self.check_fitted()
        X = as_float_array(X).copy()
        if X.shape[1] != len(self.statistics_):
            raise ValueError(
                f"X has {X.shape[1]} columns, imputer was fit on {len(self.statistics_)}"
            )
        for column in range(X.shape[1]):
            mask = np.isnan(X[:, column])
            X[mask, column] = self.statistics_[column]
        return X

    def fit_transform(self, X) -> np.ndarray:
        """Fit on X and immediately transform it."""
        return self.fit(X).transform(X)
