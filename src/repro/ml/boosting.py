"""Gradient-boosted trees: the ecosystem's XGBoost substitute.

Table 3 of the paper lists XGBoost among the matching-step tools.  This is
a from-scratch gradient-boosting classifier for binary logistic loss:
each round fits a small regression tree to the loss's negative gradient
(the residual ``y - p``) and replaces each leaf's value with a Newton
step ``sum(residual) / sum(p * (1 - p))``, scaled by the learning rate —
the same second-order update XGBoost popularized.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    as_float_array,
    as_label_array,
    check_consistent,
)
from repro.ml.regression_tree import DecisionTreeRegressor


class GradientBoostingClassifier(Estimator, ClassifierMixin):
    """Binary gradient boosting with logistic loss and Newton leaf values."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []
        self.classes_: np.ndarray = np.array([], dtype=np.int64)
        self.init_score_ = 0.0

    def fit(self, X, y, feature_names: list[str] | None = None) -> "GradientBoostingClassifier":
        """Boost ``n_estimators`` regression trees on the logistic loss."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) > 2:
            raise ConfigurationError("GradientBoostingClassifier is binary-only")
        target = (y == self.classes_[-1]).astype(np.float64)
        rng = np.random.default_rng(self.random_state)

        # Initial score: log-odds of the positive rate (clipped).
        rate = float(np.clip(target.mean(), 1e-6, 1.0 - 1e-6))
        self.init_score_ = float(np.log(rate / (1.0 - rate)))
        scores = np.full(len(target), self.init_score_)

        self.trees_ = []
        n_samples = X.shape[0]
        for _ in range(self.n_estimators):
            proba = 1.0 / (1.0 + np.exp(-scores))
            residual = target - proba
            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n_samples)))
                rows = rng.choice(n_samples, size=size, replace=False)
            else:
                rows = np.arange(n_samples)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[rows], residual[rows])
            # Newton step per leaf, over the rows used to grow the tree.
            leaf_of = tree.apply(X[rows])
            hessian = proba[rows] * (1.0 - proba[rows])
            new_values: dict[int, float] = {}
            for leaf in np.unique(leaf_of):
                mask = leaf_of == leaf
                denominator = float(hessian[mask].sum())
                numerator = float(residual[rows][mask].sum())
                new_values[int(leaf)] = (
                    numerator / denominator if denominator > 1e-12 else 0.0
                )
            tree.set_leaf_values(new_values)
            self.trees_.append(tree)
            scores = scores + self.learning_rate * tree.predict(X)
        self._mark_fitted()
        return self

    def decision_function(self, X) -> np.ndarray:
        """Additive log-odds score of each sample."""
        self.check_fitted()
        X = as_float_array(X)
        scores = np.full(X.shape[0], self.init_score_)
        for tree in self.trees_:
            scores = scores + self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities via the logistic link."""
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-scores))
        if len(self.classes_) == 1:
            return np.ones((len(scores), 1))
        return np.column_stack([1.0 - positive, positive])

    def staged_scores(self, X) -> np.ndarray:
        """Decision scores after each boosting round (for ablation plots)."""
        self.check_fitted()
        X = as_float_array(X)
        scores = np.full(X.shape[0], self.init_score_)
        stages = []
        for tree in self.trees_:
            scores = scores + self.learning_rate * tree.predict(X)
            stages.append(scores.copy())
        return np.array(stages)
