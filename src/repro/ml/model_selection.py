"""Model-selection utilities: splits, k-fold CV, and cross-validation.

The PyMatcher guide (Figure 2) selects its matcher by cross-validating
candidate learners on the labeled sample G and picking the one with the
best F1 — :func:`cross_validate` and ``repro.matchers.select_matcher``
implement exactly that loop.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import as_float_array, as_label_array
from repro.ml.metrics import precision_recall_f1


def train_test_split(
    X, y, test_size: float = 0.25, random_state: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_size < 1.0:
        raise ConfigurationError(f"test_size must be in (0, 1), got {test_size}")
    X = as_float_array(X)
    y = as_label_array(y)
    n_samples = X.shape[0]
    rng = np.random.default_rng(random_state)
    order = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_size)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Plain k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ConfigurationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        if n_samples < self.n_splits:
            raise ConfigurationError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class StratifiedKFold:
    """K-fold preserving class proportions — important for the skewed
    match/no-match label distributions EM produces."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None):
        if n_splits < 2:
            raise ConfigurationError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices), stratified on ``y``."""
        y = as_label_array(y)
        rng = np.random.default_rng(self.random_state)
        per_class_folds: list[list[np.ndarray]] = []
        for cls in np.unique(y):
            indices = np.nonzero(y == cls)[0]
            if self.shuffle:
                rng.shuffle(indices)
            per_class_folds.append(np.array_split(indices, self.n_splits))
        for i in range(self.n_splits):
            test = np.concatenate([folds[i] for folds in per_class_folds])
            test.sort()
            mask = np.ones(len(y), dtype=bool)
            mask[test] = False
            yield np.nonzero(mask)[0], test


def cross_validate(
    estimator,
    X,
    y,
    n_splits: int = 5,
    random_state: int | None = None,
    feature_names: list[str] | None = None,
) -> dict[str, list[float]]:
    """Stratified k-fold CV returning per-fold precision, recall, and F1.

    The estimator is cloned per fold, so the passed instance is untouched.
    """
    X = as_float_array(X)
    y = as_label_array(y)
    scores: dict[str, list[float]] = {"precision": [], "recall": [], "f1": []}
    splitter = StratifiedKFold(n_splits=n_splits, random_state=random_state)
    for train_idx, test_idx in splitter.split(y):
        model = estimator.clone()
        try:
            model.fit(X[train_idx], y[train_idx], feature_names=feature_names)
        except TypeError:
            model.fit(X[train_idx], y[train_idx])
        predictions = model.predict(X[test_idx])
        precision, recall, f1 = precision_recall_f1(y[test_idx], predictions)
        scores["precision"].append(precision)
        scores["recall"].append(recall)
        scores["f1"].append(f1)
    return scores


def mean_cv_score(scores: dict[str, list[float]], metric: str = "f1") -> float:
    """Average a metric across CV folds."""
    values = scores[metric]
    return sum(values) / len(values) if values else 0.0
