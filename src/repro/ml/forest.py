"""Random-forest classifier built on the CART trees.

Falcon (Section 5.1) learns a random forest F of n trees and declares a
pair a match when at least ``alpha * n`` trees vote match; that voting rule
is exposed here as ``predict_with_alpha``.  The individual trees stay
accessible through ``trees_`` because blocking rules are extracted from
their branches.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    as_float_array,
    as_label_array,
    check_consistent,
)
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(Estimator, ClassifierMixin):
    """Bagged ensemble of decorrelated CART trees.

    Parameters mirror sklearn where the paper relies on them:
    ``n_estimators`` trees, each fit on a bootstrap sample with ``"sqrt"``
    feature subsampling by default.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ConfigurationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray = np.array([], dtype=np.int64)

    def fit(self, X, y, feature_names: list[str] | None = None) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of (X, y)."""
        X = as_float_array(X)
        y = as_label_array(y)
        check_consistent(X, y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        n_samples = X.shape[0]
        for _ in range(self.n_estimators):
            if self.bootstrap:
                indices = rng.integers(0, n_samples, size=n_samples)
                # A degenerate bootstrap (single class) would produce a
                # tree blind to one class; resample until both appear when
                # the training data itself has both.
                if len(np.unique(y)) > 1:
                    attempts = 0
                    while len(np.unique(y[indices])) < 2 and attempts < 10:
                        indices = rng.integers(0, n_samples, size=n_samples)
                        attempts += 1
            else:
                indices = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[indices], y[indices], feature_names=feature_names)
            self.trees_.append(tree)
        self._mark_fitted()
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Average of per-tree class distributions."""
        self.check_fitted()
        X = as_float_array(X)
        total = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            # Trees may have seen a subset of classes; align columns.
            for column, cls in enumerate(tree.classes_):
                target = int(np.searchsorted(self.classes_, cls))
                total[:, target] += proba[:, column]
        return total / len(self.trees_)

    def vote_fraction(self, X, positive: int = 1) -> np.ndarray:
        """Fraction of trees whose majority prediction is ``positive``."""
        self.check_fitted()
        X = as_float_array(X)
        votes = np.zeros(X.shape[0])
        for tree in self.trees_:
            votes += (tree.predict(X) == positive).astype(np.float64)
        return votes / len(self.trees_)

    def predict_with_alpha(self, X, alpha: float = 0.5, positive: int = 1) -> np.ndarray:
        """Falcon's voting rule: match iff >= alpha * n trees say match."""
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        fraction = self.vote_fraction(X, positive=positive)
        negative = (
            self.classes_[self.classes_ != positive][0]
            if np.any(self.classes_ != positive)
            else positive
        )
        return np.where(fraction >= alpha, positive, negative)

    def vote_entropy(self, X, positive: int = 1) -> np.ndarray:
        """Disagreement of the trees, used for active-learning selection.

        Binary vote entropy in bits: 0 when the forest is unanimous, 1 when
        it is split evenly.
        """
        fraction = self.vote_fraction(X, positive=positive)
        entropy = np.zeros_like(fraction)
        mask = (fraction > 0.0) & (fraction < 1.0)
        p = fraction[mask]
        entropy[mask] = -(p * np.log2(p) + (1 - p) * np.log2(1 - p))
        return entropy
