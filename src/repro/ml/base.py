"""Shared machinery for the from-scratch ML substrate.

The ecosystem's matchers (``repro.matchers``) wrap these estimators the way
PyMatcher wraps scikit-learn.  The estimator API intentionally mirrors
sklearn: ``fit(X, y)``, ``predict(X)``, ``predict_proba(X)``, and
``get_params()`` for cloning during cross-validation.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

from repro.exceptions import NotFittedError


def as_float_array(X: Any) -> np.ndarray:
    """Coerce a feature matrix to a 2-D float64 array, validating shape."""
    array = np.asarray(X, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got ndim={array.ndim}")
    return array


def as_label_array(y: Any) -> np.ndarray:
    """Coerce labels to a 1-D int array."""
    array = np.asarray(y)
    if array.ndim != 1:
        raise ValueError(f"expected 1-D labels, got ndim={array.ndim}")
    return array.astype(np.int64)


def check_consistent(X: np.ndarray, y: np.ndarray) -> None:
    """Validate that X and y agree on the number of samples."""
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} labels")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")


class Estimator:
    """Base class providing params introspection, cloning, and fit checks."""

    def get_params(self) -> dict[str, Any]:
        """Return constructor parameters (sklearn-style)."""
        signature = inspect.signature(type(self).__init__)
        return {
            name: getattr(self, name)
            for name in signature.parameters
            if name != "self" and hasattr(self, name)
        }

    def clone(self) -> "Estimator":
        """A fresh unfitted copy with the same hyperparameters."""
        return type(self)(**self.get_params())

    @property
    def is_fitted(self) -> bool:
        return getattr(self, "_fitted", False)

    def _mark_fitted(self) -> None:
        self._fitted = True

    def check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before prediction"
            )

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Adds binary ``predict`` via argmax over ``predict_proba``."""

    classes_: np.ndarray

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)  # type: ignore[attr-defined]
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy on the given test data."""
        y = as_label_array(y)
        return float(np.mean(self.predict(X) == y))
